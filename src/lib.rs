#![warn(missing_docs)]

//! # dcqcn-repro
//!
//! A full reproduction of *"Congestion Control for Large-Scale RDMA
//! Deployments"* (Zhu et al., SIGCOMM 2015) — the DCQCN congestion
//! control protocol for RoCEv2 — as a Rust workspace:
//!
//! * [`netsim`] — deterministic packet-level fabric simulator (PFC,
//!   shared-buffer switches, RED/ECN, ECMP, go-back-N RoCE transport),
//! * [`dcqcn`] — the protocol itself (CP/NP/RP state machines, §4 buffer
//!   threshold engineering, Figure 14 parameters),
//! * [`baselines`] — DCTCP, QCN, PFC-only, and the TCP-vs-RDMA host model,
//! * [`fluid`] — the §5 fluid model (DDE integrator, fixed point, sweeps),
//! * [`workloads`] — trace-like synthetic traffic,
//! * [`experiments`] — one runnable module per paper figure/table.
//!
//! This facade crate re-exports everything and hosts the runnable
//! examples (`cargo run --example quickstart`) and the cross-crate
//! integration test suite.

pub use baselines;
pub use dcqcn;
pub use experiments;
pub use fluid;
pub use netsim;
pub use roce;
pub use workloads;
