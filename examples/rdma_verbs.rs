//! A verbs-style application: reading remote memory during a disk
//! rebuild, using the `roce` queue-pair API (the interface the paper's
//! applications actually program against).
//!
//! One "repair" host issues RDMA READs to eight replica servers to
//! reconstruct a failed disk's chunks, while a latency-sensitive client
//! does small WRITEs to one of those servers. DCQCN keeps the reads from
//! destroying the client's latency.
//!
//! ```text
//! cargo run --release --example rdma_verbs
//! ```

use netsim::units::Time;
use roce::{CcMode, Rdma, RdmaConfig, WcStatus};

fn run(cc: CcMode) -> (f64, f64) {
    let mut rdma = Rdma::star(
        11,
        netsim::topology::LinkParams::default(),
        RdmaConfig {
            cc,
            ..RdmaConfig::default()
        },
        99,
    );
    let hosts = rdma.hosts().to_vec();
    let repair = hosts[0];
    let client = hosts[10];

    // Rebuild: READ 16 × 4 MB chunks from each of 8 replicas.
    let mut rebuild_qps = Vec::new();
    for &replica in &hosts[1..9] {
        let qp = rdma.create_qp(repair, replica);
        for _ in 0..16 {
            rdma.post_read(qp, 4_000_000, Time::ZERO);
        }
        rebuild_qps.push(qp);
    }
    // Client: a 64 KB WRITE every 500 µs to the repair host — sharing
    // the incast bottleneck, like the paper's user traffic.
    let client_qp = rdma.create_qp(client, repair);
    for i in 0..200u64 {
        rdma.post_write(client_qp, 65_536, Time::from_micros(i * 500));
    }

    rdma.net.run_until(Time::from_millis(120));

    // Client-visible latency: mean transfer time of the small writes.
    let wcs = rdma.poll_cq(client_qp);
    let lat_us: f64 = wcs
        .iter()
        .filter(|w| w.status == WcStatus::Success)
        .map(|w| (w.completed - w.posted).as_micros_f64())
        .sum::<f64>()
        / wcs.len().max(1) as f64;
    // Rebuild progress: completed chunks.
    let chunks: usize = rebuild_qps.iter().map(|&qp| rdma.poll_cq(qp).len()).sum();
    (lat_us, chunks as f64 / (8.0 * 16.0) * 100.0)
}

fn main() {
    println!("disk rebuild (8 replicas × 16 × 4MB READs) + small client WRITEs\n");
    for (name, cc) in [
        ("PFC only", CcMode::None),
        ("DCQCN", CcMode::Dcqcn(dcqcn::params::DcqcnParams::paper())),
    ] {
        let (lat, done) = run(cc);
        println!("{name:>9}: client 64KB write latency {lat:9.1} µs | rebuild {done:5.1}% done");
    }
    println!("\nDCQCN holds client latency down during the rebuild storm while the");
    println!("rebuild still gets the remaining bandwidth.");
}
