//! The paper's tuning methodology as a workflow: evaluate a candidate
//! DCQCN parameter set on the fluid model first (seconds), then validate
//! the winner on the packet simulator (minutes on hardware, still fast
//! here).
//!
//! ```text
//! cargo run --release --example tune_parameters
//! ```

use dcqcn::prelude::*;
use fluid::prelude::*;
use netsim::prelude::*;
use netsim::topology::{star, LinkParams};
use netsim::units::Bandwidth;

/// Candidate parameter sets to screen.
fn candidates() -> Vec<(&'static str, DcqcnParams)> {
    vec![
        ("QCN-recommended (strawman)", DcqcnParams::strawman()),
        (
            "fast timer only",
            DcqcnParams::strawman()
                .with_byte_counter(10_000_000)
                .with_timer(Duration::from_micros(55)),
        ),
        ("paper (Figure 14)", DcqcnParams::paper()),
    ]
}

fn main() {
    // Step 1: screen on the fluid model — two flows starting maximally
    // unfair; a good configuration drives |R1 - R2| to zero quickly.
    println!("step 1: fluid-model screening (two-flow convergence)\n");
    let red = red_deployed();
    let mut best: Option<(&str, DcqcnParams, f64)> = None;
    for (name, params) in candidates() {
        let (_, tail_diff) = two_flow_convergence(&params, &red, Bandwidth::gbps(40), 0.3);
        println!("  {name:<28} tail |R1-R2| = {tail_diff:6.2} Gbps");
        if best.as_ref().is_none_or(|(_, _, d)| tail_diff < *d) {
            best = Some((name, params, tail_diff));
        }
    }
    let (name, params, _) = best.expect("candidates nonempty");
    println!("\nwinner: {name}\n");

    // Step 2: confirm the fixed point is healthy (p* below P_max, queue
    // comfortably under K_max).
    let fp = solve(
        &FluidParams::from_protocol(&params, &red, Bandwidth::gbps(40), 1500),
        2,
    );
    println!(
        "step 2: fixed point at 2 flows: p* = {:.4}%, queue = {:.1} KB",
        fp.p * 100.0,
        fp.queue_pkts * 1.5
    );

    // Step 3: validate on the packet simulator.
    println!("\nstep 3: packet-level validation (2:1 incast, 100 ms)");
    let mut fabric = star(
        3,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default().with_red(red),
        1,
    );
    let r = fabric.hosts[2];
    let flows = [
        fabric
            .net
            .add_flow(fabric.hosts[0], r, DATA_PRIORITY, dcqcn(params)),
        fabric
            .net
            .add_flow(fabric.hosts[1], r, DATA_PRIORITY, dcqcn(params)),
    ];
    for f in flows {
        fabric.net.send_message(f, u64::MAX, Time::ZERO);
    }
    fabric.net.run_until(Time::from_millis(100));
    for (i, f) in flows.iter().enumerate() {
        println!(
            "  flow {}: {:.2} Gbps",
            i + 1,
            fabric.net.flow_stats(*f).delivered_bytes as f64 * 8.0 / 0.1 / 1e9
        );
    }
}
