//! Quickstart: run DCQCN on a simulated 40 Gbps fabric in ~30 lines.
//!
//! Two senders incast into one receiver through a shared-buffer switch;
//! DCQCN converges both flows to their fair share with a short queue.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcqcn::prelude::*;
use netsim::prelude::*;
use netsim::topology::{star, LinkParams};

fn main() {
    // The deployed protocol parameters (paper, Figure 14) and the matching
    // switch RED configuration (K_min 5 KB, K_max 200 KB, P_max 1%).
    let params = DcqcnParams::paper();

    // Three hosts on one Trident II-style switch, 40 Gbps everywhere.
    let mut fabric = star(
        3,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default().with_red(red_deployed()),
        42, // seed: runs are fully deterministic
    );
    let [a, b, r] = [fabric.hosts[0], fabric.hosts[1], fabric.hosts[2]];

    // Two greedy flows into the same receiver.
    let f1 = fabric.net.add_flow(a, r, DATA_PRIORITY, dcqcn(params));
    let f2 = fabric.net.add_flow(b, r, DATA_PRIORITY, dcqcn(params));
    fabric.net.send_message(f1, u64::MAX, Time::ZERO);
    fabric.net.send_message(f2, u64::MAX, Time::from_millis(10));

    fabric.net.run_until(Time::from_millis(100));

    for (name, f) in [("flow 1", f1), ("flow 2", f2)] {
        let st = fabric.net.flow_stats(f);
        println!(
            "{name}: {:.2} Gbps goodput, {} CNPs, current rate {}",
            st.delivered_bytes as f64 * 8.0 / 0.1 / 1e9,
            st.cnps_received,
            fabric.net.flow_rate(f),
        );
    }
    let sw = fabric.net.switch_stats(fabric.switch);
    println!(
        "switch: {} packets forwarded, {} ECN-marked, {} PAUSE frames, {} drops",
        sw.forwarded,
        sw.ecn_marks,
        sw.pause_tx,
        sw.drops_pool + sw.drops_lossy
    );
}
