//! Replaying your own trace and watching the fabric with the tracer.
//!
//! The paper drives its benchmark from a production trace's flow-size
//! distribution. This example shows the same workflow with a user-supplied
//! table (`bytes,weight` CSV — here inline), plus the packet tracer for
//! observability: how often did switches mark, pause, or drop, and what
//! did the NP actually emit?
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use dcqcn::prelude::*;
use netsim::prelude::*;
use netsim::topology::{clos_testbed, LinkParams};
use netsim::trace::TraceKind;
use workloads::prelude::*;
use workloads::traffic::setup_user_traffic;

/// A toy trace summary: mostly 8 KB RPCs, some 256 KB reads, a heavy
/// 8 MB tail. Swap in `EmpiricalDist::from_file` for a real one.
const TRACE: &str = "\
# bytes,weight
8192,60
262144,30
8388608,10
";

fn main() {
    let params = DcqcnParams::paper();
    let mut tb = clos_testbed(
        5,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default().with_red(red_deployed()),
        2026,
    );
    tb.net.enable_trace(2_000_000);

    let hosts: Vec<NodeId> = tb.hosts.iter().flatten().copied().collect();
    let dist = EmpiricalDist::from_csv_str(TRACE).expect("valid trace table");
    println!(
        "replaying trace-derived sizes (mean {:.0} KB) on the Figure 2 Clos",
        dist.mean_bytes() / 1000.0
    );

    let cfg = UserTrafficConfig {
        pairs: 24,
        duration: Duration::from_millis(200),
        mean_interarrival: Duration::from_micros(1500),
        priority: DATA_PRIORITY,
        sizes: SizeDist::Empirical(dist),
    };
    let cc = dcqcn::rp::dcqcn(params);
    let pairs = setup_user_traffic(&mut tb.net, &hosts, &cfg, &cc, 11);
    tb.net.run_until(Time::from_millis(250));

    // Application view.
    let flows: Vec<FlowId> = pairs.iter().map(|p| p.flow).collect();
    let goodputs = workloads::traffic::transfer_goodputs(&tb.net, &flows, 1_000_000);
    println!(
        "large transfers: {} completed, median {:.2} Gbps, p10 {:.2} Gbps",
        goodputs.len(),
        median(&goodputs),
        percentile(&goodputs, 10.0)
    );

    // Fabric view, from the tracer.
    let t = tb.net.trace();
    println!("fabric events (last {} retained):", t.len());
    for kind in [
        TraceKind::Delivered,
        TraceKind::Marked,
        TraceKind::CnpSent,
        TraceKind::PauseSent,
        TraceKind::Dropped,
        TraceKind::Timeout,
    ] {
        println!("  {:?}: {}", kind, t.of_kind(kind).len());
    }
    // Which flow attracted the most marks?
    let marks = t.of_kind(TraceKind::Marked);
    if let Some(busiest) = flows
        .iter()
        .max_by_key(|f| marks.iter().filter(|e| e.flow == **f).count())
    {
        let n = marks.iter().filter(|e| e.flow == *busiest).count();
        println!("  most-marked flow: {busiest:?} with {n} marks");
    }
}
