//! Building your own topology and mixing congestion controls.
//!
//! A two-switch leaf pair with a 100 Gbps interconnect, four hosts, and
//! one DCQCN flow competing with one DCTCP flow across the interconnect —
//! demonstrating the `NetworkBuilder` API and the pluggable
//! `CongestionControl` trait.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use baselines::dctcp::{dctcp, DctcpParams};
use dcqcn::prelude::*;
use netsim::prelude::*;
use netsim::stats::SamplerConfig;

fn main() {
    let mut b = NetworkBuilder::new(7);
    // Hosts get the DCQCN host profile (NP enabled); the DCTCP flow's
    // receiver simply echoes marks on ACKs as well.
    let host_cfg = dcqcn_host_config(DcqcnParams::paper());
    let sw_cfg = SwitchConfig::paper_default().with_red(red_deployed());

    let s1 = b.switch(sw_cfg.clone());
    let s2 = b.switch(sw_cfg);
    let hosts: Vec<NodeId> = (0..4).map(|_| b.host(host_cfg)).collect();

    // 100G interconnect, 40G host links, 1 µs per hop.
    b.connect(s1, s2, Bandwidth::gbps(100), Duration::from_micros(1));
    for (i, &h) in hosts.iter().enumerate() {
        let sw = if i < 2 { s1 } else { s2 };
        b.connect(h, sw, Bandwidth::gbps(40), Duration::from_micros(1));
    }
    let mut net = b.build();

    // h0 -> h2 runs DCQCN; h1 -> h3 runs DCTCP. They share only the
    // (uncongested) interconnect; each is bottlenecked by its receiver.
    let f_dcqcn = net.add_flow(
        hosts[0],
        hosts[2],
        DATA_PRIORITY,
        dcqcn(DcqcnParams::paper()),
    );
    let f_dctcp = net.add_flow(
        hosts[1],
        hosts[3],
        DATA_PRIORITY,
        dctcp(DctcpParams::default_40g()),
    );
    net.send_message(f_dcqcn, u64::MAX, Time::ZERO);
    net.send_message(f_dctcp, u64::MAX, Time::ZERO);

    net.enable_sampling(
        Duration::from_millis(1),
        SamplerConfig {
            all_flows: true,
            ..SamplerConfig::default()
        },
    );
    net.run_until(Time::from_millis(50));

    for (name, f) in [("DCQCN", f_dcqcn), ("DCTCP", f_dctcp)] {
        println!(
            "{name}: {:.2} Gbps over 50 ms",
            net.flow_stats(f).delivered_bytes as f64 * 8.0 / 0.05 / 1e9
        );
    }
    println!(
        "events executed: {} (deterministic for seed 7)",
        net.events_executed()
    );
}
