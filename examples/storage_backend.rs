//! The paper's motivating scenario: a cloud-storage backend network.
//!
//! A 3-tier Clos (Figure 2) carries user request traffic from 20
//! communicating pairs while a failed disk is rebuilt by fetching backup
//! chunks from 8 other servers (an 8:1 incast). We run the same workload
//! with PFC only ("No DCQCN") and with DCQCN, and print what each does to
//! user-visible performance — the paper's §6.2 story.
//!
//! ```text
//! cargo run --release --example storage_backend
//! ```

use experiments::common::CcChoice;
use experiments::scenarios::{benchmark_run, BenchmarkConfig};
use netsim::stats::percentile;
use netsim::units::Duration;

fn main() {
    println!("cloud-storage backend: 20 user pairs + one 8:1 disk rebuild\n");
    for cc in [CcChoice::None, CcChoice::dcqcn_paper()] {
        let result = benchmark_run(&BenchmarkConfig {
            cc,
            pairs: 20,
            incast_degree: 8,
            duration: Duration::from_millis(400),
            pfc: true,
            misconfigured: false,
            nack_enabled: true,
            seed: 2024,
        });
        println!("--- {} ---", cc.label());
        println!(
            "  user transfers (>=1MB): median {:.2} Gbps, 10th pct {:.2} Gbps ({} transfers)",
            percentile(&result.user_goodputs, 50.0),
            percentile(&result.user_goodputs, 10.0),
            result.user_goodputs.len()
        );
        println!(
            "  rebuild flows: median {:.2} Gbps, 10th pct {:.2} Gbps (fair share 5.0)",
            percentile(&result.incast_goodputs, 50.0),
            percentile(&result.incast_goodputs, 10.0)
        );
        println!(
            "  fabric health: {} PAUSE frames reached the spines, {} drops\n",
            result.spine_pause_rx, result.drops
        );
    }
    println!("the rebuild's PAUSE cascades wreck unrelated user traffic unless");
    println!("DCQCN keeps per-flow rates below the point where PFC triggers.");
}
