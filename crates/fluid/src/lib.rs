#![warn(missing_docs)]

//! # fluid — the paper's fluid model of DCQCN (§5)
//!
//! A delay-differential-equation model of N DCQCN flows sharing one
//! bottleneck, used exactly as the paper uses it: to pick protocol
//! parameters (byte counter, timer, K_max, P_max, g) before touching
//! the packet simulator.
//!
//! * [`params`] — Table 2 constants, derived from protocol parameters,
//! * [`model`] — Equations 5–9 (+ the per-flow extension, Eq. 11),
//!   integrated by explicit Euler with a delayed-term history buffer,
//! * [`fixedpoint`] — the unique fixed point (Eq. 10) via bisection,
//! * [`sweep`] — the Figure 11/12 parameter sweeps,
//! * [`stability`] — perturbation-based stability probing around the
//!   fixed point (the paper's stated future work).

pub mod fixedpoint;
pub mod model;
pub mod params;
pub mod stability;
pub mod sweep;

/// Common imports.
pub mod prelude {
    pub use crate::fixedpoint::{solve, FixedPoint};
    pub use crate::model::{FlowState, FluidSim, FluidTrace};
    pub use crate::params::FluidParams;
    pub use crate::stability::{probe, stability_map, StabilityReport, Verdict};
    pub use crate::sweep::{
        g_queue_trace, queue_stats, sweep_byte_counter, sweep_kmax, sweep_pmax, sweep_timer,
        two_flow_convergence, SweepPoint,
    };
}
