//! The DCQCN fluid model (Equations 5–9 and the two-flow extension,
//! Equation 11), integrated as a delay differential equation system.
//!
//! Per flow `i` the state is `(R_C, R_T, α)`; the flows couple through the
//! bottleneck queue `q`:
//!
//! ```text
//! dq/dt  = Σ R_Ci − C                                               (6, 11)
//! dα/dt  = g/τ' [(1 − (1−p̂)^{τ R̂c}) − α]                              (7)
//! dR_T/dt = −(R_T − R_C)/τ (1 − (1−p̂)^{τ R̂c})
//!           + R_AI (1−p̂)^{F·B}      · ν_B
//!           + R_AI (1−p̂)^{F·T·R̂c} · ν_T                               (8)
//! dR_C/dt = −(R_C α)/(2τ) (1 − (1−p̂)^{τ R̂c})
//!           + (R_T − R_C)/2 · ν_B + (R_T − R_C)/2 · ν_T                (9)
//! ```
//!
//! where hats denote values delayed by the control-loop delay `τ*`,
//! `ν_B = R̂c p̂ / ((1−p̂)^{−B} − 1)` is the byte-counter event rate and
//! `ν_T = R̂c p̂ / ((1−p̂)^{−T·R̂c} − 1)` the timer event rate. As `p̂ → 0`
//! these limits are `R̂c/B` and `1/T` — the deterministic counter rates —
//! which the implementation handles in closed form. Like the paper, the
//! hyper-increase phase and PFC are not modelled.

use crate::params::FluidParams;
use std::collections::VecDeque;

/// State of one fluid flow, rates in packets/second.
#[derive(Debug, Clone, Copy)]
pub struct FlowState {
    /// Current rate `R_C`.
    pub rc: f64,
    /// Target rate `R_T`.
    pub rt: f64,
    /// Rate-reduction factor α.
    pub alpha: f64,
    /// When the flow becomes active (seconds).
    pub start: f64,
    /// Initial rate at start (packets/second).
    pub initial_rate: f64,
}

impl FlowState {
    /// A flow joining at `start` seconds with `initial_rate` pps.
    pub fn new(start: f64, initial_rate: f64) -> FlowState {
        FlowState {
            rc: initial_rate,
            rt: initial_rate,
            alpha: 1.0,
            start,
            initial_rate,
        }
    }
}

/// A sampled trajectory of the model.
#[derive(Debug, Clone, Default)]
pub struct FluidTrace {
    /// Sample times in seconds.
    pub times: Vec<f64>,
    /// Per-flow rate in Gbps: `rates_gbps[flow][sample]`.
    pub rates_gbps: Vec<Vec<f64>>,
    /// Queue length in (decimal) KB.
    pub queue_kb: Vec<f64>,
    /// Per-flow α.
    pub alphas: Vec<Vec<f64>>,
}

impl FluidTrace {
    /// |rate₀ − rate₁| at each sample (two-flow convergence metric).
    pub fn rate_diff_gbps(&self) -> Vec<f64> {
        assert!(self.rates_gbps.len() >= 2);
        self.rates_gbps[0]
            .iter()
            .zip(&self.rates_gbps[1])
            .map(|(a, b)| (a - b).abs())
            .collect()
    }

    /// Mean of a value series over samples with `t >= from`.
    pub fn tail_mean(&self, values: &[f64], from: f64) -> f64 {
        let pairs: Vec<f64> = self
            .times
            .iter()
            .zip(values)
            .filter(|(t, _)| **t >= from)
            .map(|(_, v)| *v)
            .collect();
        if pairs.is_empty() {
            0.0
        } else {
            pairs.iter().sum::<f64>() / pairs.len() as f64
        }
    }
}

/// Byte-counter / timer event rate `R̂ p̂ / ((1−p̂)^{−w} − 1)` with stable
/// limits at `p → 0` (→ `R̂/w`) and `p → 1` (→ 0).
fn event_rate(r_hat: f64, p_hat: f64, window_pkts: f64) -> f64 {
    if window_pkts <= 0.0 || r_hat <= 0.0 {
        return 0.0;
    }
    if p_hat < 1e-12 {
        return r_hat / window_pkts;
    }
    if p_hat >= 1.0 - 1e-12 {
        return 0.0;
    }
    // (1−p)^{−w} − 1 = expm1(−w·ln(1−p))
    let denom = (-window_pkts * (1.0 - p_hat).ln()).exp_m1();
    if denom.is_finite() && denom > 0.0 {
        r_hat * p_hat / denom
    } else {
        0.0
    }
}

/// `(1−p)^{n}` computed stably.
fn pow1p(p: f64, n: f64) -> f64 {
    if p <= 0.0 {
        1.0
    } else if p >= 1.0 {
        0.0
    } else {
        (n * (1.0 - p).ln()).exp()
    }
}

/// The fluid simulator: explicit Euler with a history ring buffer serving
/// the delayed terms.
pub struct FluidSim {
    /// Model constants.
    pub params: FluidParams,
    /// Per-flow state.
    pub flows: Vec<FlowState>,
    /// Queue in packets.
    pub q: f64,
    /// Current time in seconds.
    pub t: f64,
    dt: f64,
    /// History of (p, per-flow R_C), one entry per step, oldest first.
    hist: VecDeque<(f64, Vec<f64>)>,
    delay_steps: usize,
}

impl FluidSim {
    /// Creates a simulator with integration step `dt` seconds.
    pub fn new(params: FluidParams, flows: Vec<FlowState>, dt: f64) -> FluidSim {
        let delay_steps = (params.tau_delay / dt).round().max(1.0) as usize;
        FluidSim {
            params,
            flows,
            q: 0.0,
            t: 0.0,
            dt,
            hist: VecDeque::with_capacity(delay_steps + 1),
            delay_steps,
        }
    }

    /// Convenience: `n` identical flows all starting at `t = 0` at line
    /// rate (the paper's N-flow incast analysis).
    pub fn incast(params: FluidParams, n: usize, dt: f64) -> FluidSim {
        let c = params.capacity_pps;
        FluidSim::new(params, vec![FlowState::new(0.0, c); n], dt)
    }

    fn delayed(&self) -> (f64, Option<&Vec<f64>>) {
        match self.hist.front() {
            Some((p, rcs)) if self.hist.len() >= self.delay_steps => (*p, Some(rcs)),
            _ => (0.0, None),
        }
    }

    /// Advances one Euler step.
    pub fn step(&mut self) {
        let pr = &self.params;
        let p_now = pr.mark_probability(self.q);
        let (p_hat, rc_hats) = self.delayed();

        let mut sum_rc = 0.0;
        let mut new_flows = self.flows.clone();
        for (i, f) in self.flows.iter().enumerate() {
            if self.t < f.start {
                continue;
            }
            if self.t - self.dt < f.start {
                // Flow just became active: line-rate start.
                new_flows[i].rc = f.initial_rate;
                new_flows[i].rt = f.initial_rate;
                new_flows[i].alpha = 1.0;
                sum_rc += f.initial_rate;
                continue;
            }
            sum_rc += f.rc;
            // Delayed own-rate: before history exists use current.
            let rc_hat = rc_hats.map_or(f.rc, |v| v[i]);
            let cutw = 1.0 - pow1p(p_hat, pr.tau_cnp * rc_hat);
            let nu_b = event_rate(rc_hat, p_hat, pr.byte_counter_pkts);
            let nu_t = event_rate(rc_hat, p_hat, pr.timer * rc_hat);

            let d_alpha = pr.g / pr.tau_alpha * (cutw - f.alpha);
            let d_rt = -(f.rt - f.rc) / pr.tau_cnp * cutw
                + pr.rai_pps * pow1p(p_hat, pr.f_steps * pr.byte_counter_pkts) * nu_b
                + pr.rai_pps * pow1p(p_hat, pr.f_steps * pr.timer * rc_hat) * nu_t;
            let d_rc = -(f.rc * f.alpha) / (2.0 * pr.tau_cnp) * cutw
                + (f.rt - f.rc) / 2.0 * nu_b
                + (f.rt - f.rc) / 2.0 * nu_t;

            let nf = &mut new_flows[i];
            nf.alpha = (f.alpha + d_alpha * self.dt).clamp(0.0, 1.0);
            nf.rt = (f.rt + d_rt * self.dt).clamp(pr.min_rate_pps, pr.capacity_pps);
            nf.rc = (f.rc + d_rc * self.dt).clamp(pr.min_rate_pps, pr.capacity_pps);
        }
        // Queue evolution (Equations 6 / 11), clamped at empty.
        self.q = (self.q + (sum_rc - pr.capacity_pps) * self.dt).max(0.0);
        self.flows = new_flows;

        // Record history for the delayed terms.
        self.hist
            .push_back((p_now, self.flows.iter().map(|f| f.rc).collect()));
        if self.hist.len() > self.delay_steps {
            self.hist.pop_front();
        }
        self.t += self.dt;
    }

    /// Runs until `t_end` seconds, sampling every `sample_every` seconds.
    pub fn run(&mut self, t_end: f64, sample_every: f64) -> FluidTrace {
        let mut trace = FluidTrace {
            rates_gbps: vec![Vec::new(); self.flows.len()],
            alphas: vec![Vec::new(); self.flows.len()],
            ..FluidTrace::default()
        };
        let mut next_sample = 0.0;
        while self.t < t_end {
            if self.t >= next_sample {
                trace.times.push(self.t);
                trace.queue_kb.push(self.params.pkts_to_kb(self.q));
                for (i, f) in self.flows.iter().enumerate() {
                    let active = self.t >= f.start;
                    trace.rates_gbps[i].push(if active {
                        self.params.pps_to_gbps(f.rc)
                    } else {
                        0.0
                    });
                    trace.alphas[i].push(f.alpha);
                }
                next_sample += sample_every;
            }
            self.step();
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1e-6;

    #[test]
    fn event_rate_limits() {
        // p → 0: deterministic counter rate R/w.
        let r = event_rate(1e6, 0.0, 100.0);
        assert!((r - 1e4).abs() < 1.0);
        // p → 1: counters never complete.
        assert_eq!(event_rate(1e6, 1.0, 100.0), 0.0);
        // Monotone decreasing in p.
        let a = event_rate(1e6, 1e-4, 1000.0);
        let b = event_rate(1e6, 1e-2, 1000.0);
        assert!(a > b);
    }

    #[test]
    fn pow1p_edges() {
        assert_eq!(pow1p(0.0, 100.0), 1.0);
        assert_eq!(pow1p(1.0, 100.0), 0.0);
        assert!((pow1p(0.01, 2.0) - 0.9801).abs() < 1e-12);
    }

    #[test]
    fn single_flow_stays_at_line_rate() {
        // One flow at capacity: the queue never builds, p stays 0, no cuts.
        let mut sim = FluidSim::incast(FluidParams::paper_40g(), 1, DT);
        let trace = sim.run(0.05, 1e-3);
        let last = *trace.rates_gbps[0].last().unwrap();
        assert!((last - 40.0).abs() < 0.5, "rate {last}");
        assert!(trace.queue_kb.iter().all(|&q| q < 1.0));
    }

    #[test]
    fn two_flows_converge_to_fair_share() {
        let p = FluidParams::paper_40g();
        let mut sim = FluidSim::incast(p, 2, DT);
        let trace = sim.run(1.0, 1e-2);
        let r0 = trace.tail_mean(&trace.rates_gbps[0], 0.8);
        let r1 = trace.tail_mean(&trace.rates_gbps[1], 0.8);
        assert!((r0 - 20.0).abs() < 2.0, "flow0 {r0}");
        assert!((r1 - 20.0).abs() < 2.0, "flow1 {r1}");
    }

    #[test]
    fn total_rate_tracks_capacity() {
        let p = FluidParams::paper_40g();
        let mut sim = FluidSim::incast(p, 4, DT);
        let trace = sim.run(1.0, 1e-2);
        let total: f64 = (0..4)
            .map(|i| trace.tail_mean(&trace.rates_gbps[i], 0.8))
            .sum();
        assert!((total - 40.0).abs() < 2.0, "total {total}");
    }

    #[test]
    fn queue_settles_above_kmin_and_below_kmax() {
        // The paper: the stable queue sits near (an order of magnitude
        // above) K_min = 5 KB because p* is small.
        let p = FluidParams::paper_40g();
        let mut sim = FluidSim::incast(p, 16, DT);
        let trace = sim.run(1.0, 1e-2);
        let q = trace.tail_mean(&trace.queue_kb, 0.8);
        assert!(q > 5.0, "queue {q} KB should exceed K_min");
        assert!(q < 200.0, "queue {q} KB should stay below K_max");
    }

    #[test]
    fn staggered_start_flow_joins_later() {
        let p = FluidParams::paper_40g();
        let c = p.capacity_pps;
        let mut sim = FluidSim::new(p, vec![FlowState::new(0.0, c), FlowState::new(0.1, c)], DT);
        let trace = sim.run(0.2, 1e-3);
        // Before 0.1 s flow 1 reports zero.
        let idx_before = trace.times.iter().position(|&t| t >= 0.05).unwrap();
        assert_eq!(trace.rates_gbps[1][idx_before], 0.0);
        assert!((trace.rates_gbps[0][idx_before] - 40.0).abs() < 0.5);
        // After joining, both are active and under control.
        let idx_after = trace.times.len() - 1;
        assert!(trace.rates_gbps[1][idx_after] > 1.0);
        assert!(trace.rates_gbps[0][idx_after] < 40.0);
    }

    #[test]
    fn unfair_initial_rates_converge() {
        // Figure 11's setting: one flow at 40 Gbps, one at ~0.
        let p = FluidParams::paper_40g();
        let c = p.capacity_pps;
        let mut sim = FluidSim::new(
            p,
            vec![FlowState::new(0.0, c), FlowState::new(0.0, p.min_rate_pps)],
            DT,
        );
        let trace = sim.run(1.5, 1e-2);
        let diff = trace.rate_diff_gbps();
        let tail = trace.tail_mean(&diff, 1.2);
        assert!(tail < 4.0, "converged diff {tail} Gbps");
    }

    #[test]
    fn queue_is_never_negative() {
        let p = FluidParams::paper_40g();
        let mut sim = FluidSim::incast(p, 2, DT);
        for _ in 0..200_000 {
            sim.step();
            assert!(sim.q >= 0.0);
        }
    }

    #[test]
    fn rates_respect_bounds() {
        let p = FluidParams::paper_40g();
        let cap = p.capacity_pps;
        let min = p.min_rate_pps;
        let mut sim = FluidSim::incast(p, 16, DT);
        for _ in 0..100_000 {
            sim.step();
            for f in &sim.flows {
                assert!(f.rc <= cap * (1.0 + 1e-9) && f.rc >= min * (1.0 - 1e-9));
                assert!(f.alpha >= 0.0 && f.alpha <= 1.0);
            }
        }
    }
}
