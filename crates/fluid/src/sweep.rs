//! Parameter sweeps over the two-flow fluid model — the machinery behind
//! Figures 11 (convergence surfaces) and 12 (g vs queue stability).
//!
//! Following §5.2, every sweep solves a two-flow system where one flow
//! starts at the 40 Gbps line rate and the other at ~0, and reports the
//! throughput difference |R₁ − R₂| over the first 200 ms (lower is better
//! convergence). Figure 12 instead integrates the N-flow incast model and
//! reports queue-length statistics for different g.

use crate::model::{FlowState, FluidSim, FluidTrace};
use crate::params::FluidParams;
use dcqcn::params::DcqcnParams;
use netsim::ecn::RedConfig;
use netsim::units::{Bandwidth, Duration};

/// Integration step for sweeps (1 µs resolves the 50 µs loop delay).
pub const SWEEP_DT: f64 = 1e-6;

/// One sweep point: the parameter value and the |R₁−R₂| series.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter's value (units depend on the sweep).
    pub value: f64,
    /// Sample times (seconds).
    pub times: Vec<f64>,
    /// |R₁ − R₂| in Gbps at each sample.
    pub diff_gbps: Vec<f64>,
    /// Mean |R₁ − R₂| over the last quarter of the horizon — the scalar
    /// convergence score (lower is better).
    pub tail_diff_gbps: f64,
}

/// Runs the two-flow convergence experiment for one configuration.
pub fn two_flow_convergence(
    proto: &DcqcnParams,
    red: &RedConfig,
    bottleneck: Bandwidth,
    horizon_s: f64,
) -> (FluidTrace, f64) {
    let params = FluidParams::from_protocol(proto, red, bottleneck, 1500);
    let c = params.capacity_pps;
    let min = params.min_rate_pps;
    let mut sim = FluidSim::new(
        params,
        vec![FlowState::new(0.0, c), FlowState::new(0.0, min)],
        SWEEP_DT,
    );
    let trace = sim.run(horizon_s, 1e-3);
    let diff = trace.rate_diff_gbps();
    let tail = trace.tail_mean(&diff, horizon_s * 0.75);
    (trace, tail)
}

fn point(proto: &DcqcnParams, red: &RedConfig, value: f64, horizon_s: f64) -> SweepPoint {
    let (trace, tail) = two_flow_convergence(proto, red, Bandwidth::gbps(40), horizon_s);
    SweepPoint {
        value,
        diff_gbps: trace.rate_diff_gbps(),
        times: trace.times,
        tail_diff_gbps: tail,
    }
}

/// Figure 11(a): sweep the byte counter (in KB) with strawman parameters.
pub fn sweep_byte_counter(values_kb: &[u64], horizon_s: f64) -> Vec<SweepPoint> {
    let red = dcqcn::params::red_cutoff_strawman();
    values_kb
        .iter()
        .map(|&kb| {
            let proto = DcqcnParams::strawman().with_byte_counter(kb * 1000);
            point(&proto, &red, kb as f64, horizon_s)
        })
        .collect()
}

/// Figure 11(b): sweep the rate-increase timer (µs) with a 10 MB byte
/// counter (so the timer dominates).
pub fn sweep_timer(values_us: &[u64], horizon_s: f64) -> Vec<SweepPoint> {
    let red = dcqcn::params::red_cutoff_strawman();
    values_us
        .iter()
        .map(|&us| {
            let proto = DcqcnParams::strawman()
                .with_byte_counter(10_000_000)
                .with_timer(Duration::from_micros(us));
            point(&proto, &red, us as f64, horizon_s)
        })
        .collect()
}

/// Figure 11(c): sweep K_max (KB) with strawman rate parameters and
/// P_max = 1%.
pub fn sweep_kmax(values_kb: &[u64], horizon_s: f64) -> Vec<SweepPoint> {
    values_kb
        .iter()
        .map(|&kb| {
            let proto = DcqcnParams::strawman();
            let red = RedConfig {
                kmin_bytes: 5_000,
                kmax_bytes: kb * 1000,
                pmax: 0.01,
            };
            point(&proto, &red, kb as f64, horizon_s)
        })
        .collect()
}

/// Figure 11(d): sweep P_max with K_max = 200 KB.
pub fn sweep_pmax(values: &[f64], horizon_s: f64) -> Vec<SweepPoint> {
    values
        .iter()
        .map(|&pmax| {
            let proto = DcqcnParams::strawman();
            let red = RedConfig {
                kmin_bytes: 5_000,
                kmax_bytes: 200_000,
                pmax,
            };
            point(&proto, &red, pmax, horizon_s)
        })
        .collect()
}

/// Figure 12: queue trace of an `n`:1 incast under gain `g`.
pub fn g_queue_trace(g: f64, n: usize, horizon_s: f64) -> FluidTrace {
    let proto = DcqcnParams::paper().with_g(g);
    let params = FluidParams::from_protocol(
        &proto,
        &dcqcn::params::red_deployed(),
        Bandwidth::gbps(40),
        1500,
    );
    let mut sim = FluidSim::incast(params, n, SWEEP_DT);
    sim.run(horizon_s, 1e-3)
}

/// Queue stability summary for Figure 12: (mean, standard deviation) of
/// the queue in KB over the settled tail.
pub fn queue_stats(trace: &FluidTrace, from: f64) -> (f64, f64) {
    let vals: Vec<f64> = trace
        .times
        .iter()
        .zip(&trace.queue_kb)
        .filter(|(t, _)| **t >= from)
        .map(|(_, q)| *q)
        .collect();
    if vals.is_empty() {
        return (0.0, 0.0);
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §5.2's headline: with strawman parameters the flows do NOT
    /// converge; speeding up the timer fixes it.
    #[test]
    fn strawman_diverges_fast_timer_converges() {
        let red = dcqcn::params::red_cutoff_strawman();
        let (_, strawman_diff) =
            two_flow_convergence(&DcqcnParams::strawman(), &red, Bandwidth::gbps(40), 0.2);
        let fast = DcqcnParams::strawman()
            .with_byte_counter(10_000_000)
            .with_timer(Duration::from_micros(55));
        let (_, fast_diff) = two_flow_convergence(&fast, &red, Bandwidth::gbps(40), 0.2);
        assert!(
            strawman_diff > 2.0 * fast_diff,
            "strawman {strawman_diff:.1} vs fast timer {fast_diff:.1} Gbps"
        );
        assert!(fast_diff < 8.0, "fast timer converges: {fast_diff:.1}");
    }

    /// Figure 11(c)/(d)'s intuition: RED-like probabilistic marking with a
    /// small P_max converges where DCTCP-style cut-off marking does not,
    /// even with the slow strawman timer ("we increase the likelihood that
    /// the larger flow will get more CNPs, and hence back off faster").
    #[test]
    fn red_like_marking_improves_convergence() {
        let cutoff = dcqcn::params::red_cutoff_strawman();
        let red = RedConfig {
            kmin_bytes: 5_000,
            kmax_bytes: 200_000,
            pmax: 0.01,
        };
        let proto = DcqcnParams::strawman();
        let (_, cutoff_diff) = two_flow_convergence(&proto, &cutoff, Bandwidth::gbps(40), 0.4);
        let (_, red_diff) = two_flow_convergence(&proto, &red, Bandwidth::gbps(40), 0.4);
        assert!(
            cutoff_diff > 20.0,
            "cut-off marking never converges: diff {cutoff_diff:.1} Gbps"
        );
        assert!(
            red_diff < 5.0,
            "RED-like marking converges: diff {red_diff:.1} Gbps"
        );
    }

    /// Figure 11(a): slowing the byte counter down helps convergence.
    #[test]
    fn slower_byte_counter_converges_better() {
        let pts = sweep_byte_counter(&[150, 10_000], 0.2);
        assert!(
            pts[1].tail_diff_gbps <= pts[0].tail_diff_gbps + 0.5,
            "150KB: {:.2}, 10MB: {:.2}",
            pts[0].tail_diff_gbps,
            pts[1].tail_diff_gbps
        );
    }

    /// Figure 12: smaller g gives lower queue variance (and the paper
    /// accepts slightly slower convergence for it).
    #[test]
    fn smaller_g_stabilizes_queue() {
        let t16 = g_queue_trace(1.0 / 16.0, 16, 0.4);
        let t256 = g_queue_trace(1.0 / 256.0, 16, 0.4);
        let (_, sd16) = queue_stats(&t16, 0.2);
        let (m256, sd256) = queue_stats(&t256, 0.2);
        assert!(
            sd256 < sd16,
            "g=1/256 sd {sd256:.1} KB vs g=1/16 sd {sd16:.1} KB"
        );
        assert!(m256 > 0.0);
    }

    #[test]
    fn sweep_points_carry_series() {
        let pts = sweep_timer(&[55], 0.05);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].value, 55.0);
        assert!(!pts[0].times.is_empty());
        assert_eq!(pts[0].times.len(), pts[0].diff_gbps.len());
    }
}
