//! Empirical stability analysis of the DCQCN fluid model — the paper's
//! stated future work (§5.2: "In future, we plan to analyze the stability
//! of DCQCN following techniques in \[4\]").
//!
//! Rather than linearizing the delay differential equations analytically,
//! we probe stability the way control engineers validate a linearization:
//! initialize the system *at* its fixed point, apply a small perturbation,
//! and classify the response by comparing the queue-error envelope early
//! vs. late in the horizon:
//!
//! * decaying envelope → **stable** (perturbations die out),
//! * roughly constant envelope → **limit cycle** (sustained oscillation),
//! * growing envelope → **unstable**.

use crate::fixedpoint::solve;
use crate::model::{FlowState, FluidSim};
use crate::params::FluidParams;

/// Verdict of a perturbation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Perturbations decay: the fixed point is attracting.
    Stable,
    /// Perturbations neither decay nor grow: sustained oscillation.
    LimitCycle,
    /// Perturbations grow.
    Unstable,
}

/// Outcome of a stability probe.
#[derive(Debug, Clone, Copy)]
pub struct StabilityReport {
    /// The classification.
    pub verdict: Verdict,
    /// Peak |q − q*| in the first third of the horizon (packets).
    pub early_amplitude: f64,
    /// Peak |q − q*| in the last third of the horizon (packets).
    pub late_amplitude: f64,
    /// The fixed-point queue the probe oscillates around (packets).
    pub q_star: f64,
}

/// Probes the `n`-flow system's stability around its fixed point with a
/// `perturbation` (fractional rate offset on one flow, e.g. 0.1 = +10%)
/// over `horizon_s` seconds.
pub fn probe(params: &FluidParams, n: usize, perturbation: f64, horizon_s: f64) -> StabilityReport {
    let fp = solve(params, n);
    let r = fp.rate_pps;
    // Build the system at the fixed point: every flow at C/N with the
    // fixed-point α and target gap; queue at q*. Negative start times
    // suppress the line-rate (re)start logic.
    let mut flows = vec![
        FlowState {
            rc: r,
            rt: r + fp.rt_gap_pps,
            alpha: fp.alpha,
            start: -1.0,
            initial_rate: r,
        };
        n
    ];
    flows[0].rc = r * (1.0 + perturbation);
    let mut sim = FluidSim::new(*params, flows, 1e-6);
    sim.q = fp.queue_pkts;
    let trace = sim.run(horizon_s, horizon_s / 3000.0);

    let err: Vec<(f64, f64)> = trace
        .times
        .iter()
        .zip(&trace.queue_kb)
        .map(|(t, q)| (*t, (q * 1000.0 / params.pkt_bytes - fp.queue_pkts).abs()))
        .collect();
    let third = horizon_s / 3.0;
    let peak = |lo: f64, hi: f64| -> f64 {
        err.iter()
            .filter(|(t, _)| *t >= lo && *t < hi)
            .map(|(_, e)| *e)
            .fold(0.0f64, f64::max)
    };
    let early = peak(0.0, third);
    let late = peak(2.0 * third, horizon_s);

    // Classify. An envelope below one packet is noise: stable.
    let verdict = if late < 1.0 || late < 0.33 * early {
        Verdict::Stable
    } else if late <= 2.0 * early {
        Verdict::LimitCycle
    } else {
        Verdict::Unstable
    };
    StabilityReport {
        verdict,
        early_amplitude: early,
        late_amplitude: late,
        q_star: fp.queue_pkts,
    }
}

/// A (g, N) stability map with the deployed RED/rate parameters —
/// the grid the `ext-stability` experiment prints.
pub fn stability_map(
    gs: &[f64],
    ns: &[usize],
    horizon_s: f64,
) -> Vec<(f64, usize, StabilityReport)> {
    let mut out = Vec::new();
    for &g in gs {
        for &n in ns {
            let proto = dcqcn::params::DcqcnParams::paper().with_g(g);
            let params = FluidParams::from_protocol(
                &proto,
                &dcqcn::params::red_deployed(),
                netsim::units::Bandwidth::gbps(40),
                1500,
            );
            out.push((g, n, probe(&params, n, 0.1, horizon_s)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_flow_deployed_config_is_stable() {
        // The deployed parameters at 2:1 settle to a steady queue (as the
        // packet simulator and Figure 13(d) show).
        let params = FluidParams::paper_40g();
        let rep = probe(&params, 2, 0.1, 0.3);
        assert_eq!(rep.verdict, Verdict::Stable, "{rep:?}");
        assert!(rep.q_star > 0.0);
    }

    #[test]
    fn deep_incast_is_a_limit_cycle() {
        // At 16:1 the operating point rides the K_max cliff: perturbations
        // do not die out (consistent with fig12's oscillation).
        let params = FluidParams::paper_40g();
        let rep = probe(&params, 16, 0.1, 0.3);
        assert_ne!(rep.verdict, Verdict::Stable, "{rep:?}");
        assert!(rep.late_amplitude > 1.0);
    }

    #[test]
    fn perturbation_size_does_not_flip_the_two_flow_verdict() {
        let params = FluidParams::paper_40g();
        for pert in [0.02, 0.1, 0.3] {
            let rep = probe(&params, 2, pert, 0.3);
            assert_eq!(rep.verdict, Verdict::Stable, "pert {pert}: {rep:?}");
        }
    }

    #[test]
    fn map_covers_the_grid() {
        let map = stability_map(&[1.0 / 16.0, 1.0 / 256.0], &[2, 8], 0.1);
        assert_eq!(map.len(), 4);
        for (g, n, rep) in &map {
            assert!(*g > 0.0 && *n >= 2);
            assert!(rep.early_amplitude.is_finite());
        }
    }
}
