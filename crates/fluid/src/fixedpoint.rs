//! The fluid model's unique fixed point (§5.1, Equation 10).
//!
//! Setting the left-hand sides of Equations 6–9 to zero gives
//! `R_C = C/N` (fair share) and a single scalar equation in the marking
//! probability `p*`, which this module solves by bisection:
//!
//! * from `dα/dt = 0`:  `α* = 1 − (1−p)^{τ R}`
//! * from `dR_T/dt = 0`: `R_T − R_C = τ·R_AI·[(1−p)^{F·B} ν_B + (1−p)^{F·T·R} ν_T] / w(p)`
//! * substitute both into `dR_C/dt = 0` and solve for `p`.
//!
//! The paper verifies `p*` is unique and "less than 1% for reasonable
//! settings", and that the fixed-point queue sits roughly an order of
//! magnitude above K_min — both asserted in the tests.

use crate::params::FluidParams;

/// The fixed point of the model for `n` flows.
#[derive(Debug, Clone, Copy)]
pub struct FixedPoint {
    /// Marking probability `p*`.
    pub p: f64,
    /// α at the fixed point.
    pub alpha: f64,
    /// Gap `R_T − R_C` in packets/second.
    pub rt_gap_pps: f64,
    /// Fair-share rate `C/N` in packets/second.
    pub rate_pps: f64,
    /// Queue at the fixed point, in packets (inverse of Equation 5).
    pub queue_pkts: f64,
}

impl FixedPoint {
    /// Queue at the fixed point in (decimal) KB.
    pub fn queue_kb(&self, params: &FluidParams) -> f64 {
        params.pkts_to_kb(self.queue_pkts)
    }
}

fn pow1p(p: f64, n: f64) -> f64 {
    if p <= 0.0 {
        1.0
    } else if p >= 1.0 {
        0.0
    } else {
        (n * (1.0 - p).ln()).exp()
    }
}

fn event_rate(r: f64, p: f64, w: f64) -> f64 {
    if p < 1e-14 {
        return r / w;
    }
    let denom = (-w * (1.0 - p).ln()).exp_m1();
    if denom.is_finite() && denom > 0.0 {
        r * p / denom
    } else {
        0.0
    }
}

/// `dR_C/dt` at the candidate fixed point, as a function of `p` only
/// (positive means the rate would still grow).
fn drc_at(params: &FluidParams, n: usize, p: f64) -> f64 {
    let r = params.capacity_pps / n as f64;
    let tau = params.tau_cnp;
    let w = 1.0 - pow1p(p, tau * r);
    let alpha = w; // dα/dt = 0
    let nu_b = event_rate(r, p, params.byte_counter_pkts);
    let nu_t = event_rate(r, p, params.timer * r);
    let ai = params.rai_pps
        * (pow1p(p, params.f_steps * params.byte_counter_pkts) * nu_b
            + pow1p(p, params.f_steps * params.timer * r) * nu_t);
    // dR_T/dt = 0  ⇒  R_T − R_C = τ·ai / w.
    let rt_gap = if w > 0.0 { tau * ai / w } else { f64::INFINITY };
    // dR_C/dt with the substitutions.
    -(r * alpha) / (2.0 * tau) * w + rt_gap / 2.0 * (nu_b + nu_t)
}

/// Solves for the fixed point of the `n`-flow model by bisection on `p`.
pub fn solve(params: &FluidParams, n: usize) -> FixedPoint {
    let mut lo = 1e-9;
    let mut hi = 1.0 - 1e-9;
    // drc is positive for tiny p (pure increase) and negative for large p
    // (pure decrease); bisect on the sign change.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if drc_at(params, n, mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let p = 0.5 * (lo + hi);
    let r = params.capacity_pps / n as f64;
    let tau = params.tau_cnp;
    let w = 1.0 - pow1p(p, tau * r);
    let nu_b = event_rate(r, p, params.byte_counter_pkts);
    let nu_t = event_rate(r, p, params.timer * r);
    let ai = params.rai_pps
        * (pow1p(p, params.f_steps * params.byte_counter_pkts) * nu_b
            + pow1p(p, params.f_steps * params.timer * r) * nu_t);
    let rt_gap = if w > 0.0 { tau * ai / w } else { 0.0 };
    // Invert Equation 5 for the queue.
    let queue_pkts = if params.kmax_pkts > params.kmin_pkts {
        params.kmin_pkts + p / params.pmax * (params.kmax_pkts - params.kmin_pkts)
    } else {
        params.kmin_pkts
    };
    FixedPoint {
        p,
        alpha: w,
        rt_gap_pps: rt_gap,
        rate_pps: r,
        queue_pkts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FluidSim;

    #[test]
    fn p_star_is_below_one_percent() {
        // §5.1: "We verified that for reasonable settings, p is less than
        // 1%." Holds through 8:1 incast; deeper incasts pin the queue at
        // the K_max cliff (see `deep_incast_pins_at_kmax`).
        let params = FluidParams::paper_40g();
        for n in [2usize, 4, 8] {
            let fp = solve(&params, n);
            assert!(fp.p < 0.01, "N={n}: p* = {}", fp.p);
            assert!(fp.p > 0.0);
        }
    }

    #[test]
    fn deep_incast_pins_at_kmax() {
        // At 16:1 the unconstrained fixed point wants p* > P_max, which
        // the RED curve cannot deliver below K_max — the operating point
        // sits at the K_max discontinuity. (This is why the paper halves
        // R_AI for 32:1 incasts: less increase pressure lowers p*.)
        let params = FluidParams::paper_40g();
        let fp = solve(&params, 16);
        assert!(fp.p > params.pmax, "p* {} exceeds P_max", fp.p);
        let mut halved_rai = params;
        halved_rai.rai_pps /= 16.0;
        let fp2 = solve(&halved_rai, 16);
        assert!(fp2.p < fp.p, "less increase pressure lowers p*");
    }

    #[test]
    fn fixed_point_queue_is_order_of_magnitude_above_kmin() {
        // §5.2: "Fluid model predicts that the stable queue length is
        // usually one order of magnitude larger than 5KB K_min."
        let params = FluidParams::paper_40g();
        let q2 = solve(&params, 2).queue_kb(&params);
        let q8 = solve(&params, 8).queue_kb(&params);
        assert!(q2 > 4.0 * 5.0, "N=2 queue {q2} KB well above K_min");
        assert!(q8 > 10.0 * 5.0, "N=8 queue {q8} KB an order above K_min");
        assert!(q8 < 200.0, "N=8 queue {q8} KB below K_max");
        assert!(q8 > q2, "queue grows with incast degree");
    }

    #[test]
    fn more_flows_more_marking() {
        let params = FluidParams::paper_40g();
        let p2 = solve(&params, 2).p;
        let p16 = solve(&params, 16).p;
        assert!(p16 > p2, "deeper incast needs more marking: {p2} vs {p16}");
    }

    #[test]
    fn drc_brackets_the_root() {
        let params = FluidParams::paper_40g();
        assert!(drc_at(&params, 2, 1e-9) > 0.0, "tiny p: rate grows");
        assert!(drc_at(&params, 2, 0.5) < 0.0, "huge p: rate shrinks");
    }

    #[test]
    fn simulation_converges_to_the_fixed_point_queue() {
        // Integrate the 2-flow model and compare the settled queue with
        // the analytic fixed point (coarse agreement: same decade).
        let params = FluidParams::paper_40g();
        let fp = solve(&params, 2);
        let mut sim = FluidSim::incast(params, 2, 1e-6);
        let trace = sim.run(1.5, 1e-2);
        let q = trace.tail_mean(&trace.queue_kb, 1.0);
        let predicted = fp.queue_kb(&params);
        assert!(
            q > predicted * 0.3 && q < predicted * 3.0,
            "sim {q} KB vs fixed point {predicted} KB"
        );
    }

    #[test]
    fn fair_share_rate() {
        let params = FluidParams::paper_40g();
        let fp = solve(&params, 4);
        assert!((params.pps_to_gbps(fp.rate_pps) - 10.0).abs() < 1e-9);
    }
}
