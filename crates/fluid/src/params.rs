//! Fluid-model parameters (Table 2 of the paper), derived from the
//! protocol parameters plus the bottleneck description.
//!
//! The model works in **packets**: rates in packets/second, queue in
//! packets, the byte counter converted to packets. `p` is the per-packet
//! marking probability of Equation 5.

use dcqcn::params::DcqcnParams;
use netsim::ecn::RedConfig;
use netsim::units::Bandwidth;

/// All constants of the fluid model (Table 2).
#[derive(Debug, Clone, Copy)]
pub struct FluidParams {
    /// α gain `g`.
    pub g: f64,
    /// Control-loop delay `τ*` in seconds (RTT + CNP generation interval;
    /// the paper uses the 50 µs CNP interval as the maximum).
    pub tau_delay: f64,
    /// CNP pacing window in seconds (equals `tau_delay` in the paper's
    /// simplification — the exponent windows of Eqs 7–9).
    pub tau_cnp: f64,
    /// α-update interval `τ'` in seconds (55 µs).
    pub tau_alpha: f64,
    /// Rate-increase timer `T` in seconds.
    pub timer: f64,
    /// Byte counter `B` in packets.
    pub byte_counter_pkts: f64,
    /// Fast-recovery steps `F`.
    pub f_steps: f64,
    /// Additive-increase step `R_AI` in packets/second.
    pub rai_pps: f64,
    /// RED `K_min` in packets.
    pub kmin_pkts: f64,
    /// RED `K_max` in packets.
    pub kmax_pkts: f64,
    /// RED `P_max`.
    pub pmax: f64,
    /// Bottleneck capacity `C` in packets/second.
    pub capacity_pps: f64,
    /// Packet size in bytes (for unit conversion).
    pub pkt_bytes: f64,
    /// Rate floor in packets/second.
    pub min_rate_pps: f64,
}

impl FluidParams {
    /// Builds fluid parameters from protocol parameters, the switch RED
    /// configuration, the bottleneck rate, and the packet (MTU) size.
    pub fn from_protocol(
        p: &DcqcnParams,
        red: &RedConfig,
        bottleneck: Bandwidth,
        pkt_bytes: u64,
    ) -> FluidParams {
        let pkt = pkt_bytes as f64;
        let capacity_pps = bottleneck.0 as f64 / 8.0 / pkt;
        FluidParams {
            g: p.g,
            tau_delay: p.cnp_interval.as_secs_f64(),
            tau_cnp: p.cnp_interval.as_secs_f64(),
            tau_alpha: p.alpha_timer.as_secs_f64(),
            timer: p.rate_timer.as_secs_f64(),
            byte_counter_pkts: p.byte_counter as f64 / pkt,
            f_steps: p.fast_recovery_steps as f64,
            rai_pps: p.rai.0 as f64 / 8.0 / pkt,
            kmin_pkts: red.kmin_bytes as f64 / pkt,
            kmax_pkts: red.kmax_bytes as f64 / pkt,
            pmax: red.pmax,
            capacity_pps,
            pkt_bytes: pkt,
            min_rate_pps: p.min_rate.0 as f64 / 8.0 / pkt,
        }
    }

    /// The deployed configuration at a 40 Gbps bottleneck with 1500 B
    /// packets (the paper's Figure 10/12 setting).
    pub fn paper_40g() -> FluidParams {
        FluidParams::from_protocol(
            &DcqcnParams::paper(),
            &dcqcn::params::red_deployed(),
            Bandwidth::gbps(40),
            1500,
        )
    }

    /// Marking probability of Equation 5, `q` in packets.
    pub fn mark_probability(&self, q: f64) -> f64 {
        if q <= self.kmin_pkts {
            0.0
        } else if q <= self.kmax_pkts {
            if self.kmax_pkts > self.kmin_pkts {
                self.pmax * (q - self.kmin_pkts) / (self.kmax_pkts - self.kmin_pkts)
            } else {
                // Cut-off marking with kmin == kmax is handled by the
                // first branch (q <= kmin) returning 0.
                1.0
            }
        } else {
            1.0
        }
    }

    /// Converts packets/second to Gbps.
    pub fn pps_to_gbps(&self, pps: f64) -> f64 {
        pps * self.pkt_bytes * 8.0 / 1e9
    }

    /// Converts a queue in packets to kilobytes (decimal).
    pub fn pkts_to_kb(&self, pkts: f64) -> f64 {
        pkts * self.pkt_bytes / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_conversion_constants() {
        let f = FluidParams::paper_40g();
        // 40 Gbps / (1500 B × 8) = 3.33 M packets/s.
        assert!((f.capacity_pps - 40e9 / 12000.0).abs() < 1.0);
        // B = 10 MB / 1500 B ≈ 6667 packets.
        assert!((f.byte_counter_pkts - 6666.7).abs() < 1.0);
        // K_min = 5 KB / 1.5 KB ≈ 3.3 packets.
        assert!((f.kmin_pkts - 10.0 / 3.0).abs() < 0.01);
        assert!((f.timer - 55e-6).abs() < 1e-12);
        assert!((f.g - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn mark_probability_matches_red() {
        let f = FluidParams::paper_40g();
        assert_eq!(f.mark_probability(0.0), 0.0);
        assert_eq!(f.mark_probability(f.kmin_pkts), 0.0);
        assert_eq!(f.mark_probability(f.kmax_pkts + 1.0), 1.0);
        let mid = (f.kmin_pkts + f.kmax_pkts) / 2.0;
        assert!((f.mark_probability(mid) - f.pmax / 2.0).abs() < 1e-12);
    }

    #[test]
    fn cutoff_marking_via_equal_thresholds() {
        let mut f = FluidParams::paper_40g();
        f.kmin_pkts = 100.0;
        f.kmax_pkts = 100.0;
        f.pmax = 1.0;
        assert_eq!(f.mark_probability(99.0), 0.0);
        assert_eq!(f.mark_probability(100.0), 0.0);
        assert_eq!(f.mark_probability(100.1), 1.0);
    }

    #[test]
    fn unit_round_trips() {
        let f = FluidParams::paper_40g();
        assert!((f.pps_to_gbps(f.capacity_pps) - 40.0).abs() < 1e-9);
        assert!((f.pkts_to_kb(10.0) - 15.0).abs() < 1e-12);
    }
}
