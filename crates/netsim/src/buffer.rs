//! Shared-buffer switch memory model with PFC threshold logic (§4 of the
//! paper, Broadcom Trident II-style).
//!
//! The switch has one pool of `total` bytes shared by all ports. For PFC,
//! every arriving packet is attributed to its *ingress* (port, priority)
//! queue; when that queue exceeds the PFC threshold `t_PFC` the switch
//! pauses the upstream device, and resumes it once the queue falls two MTUs
//! below the threshold.
//!
//! `t_PFC` is either **static** or **dynamic**:
//!
//! ```text
//! dynamic:  t_PFC = β · (B − 8·n·t_flight − s) / 8
//! ```
//!
//! where `B` is the pool size, `n` the port count, `t_flight` the reserved
//! per-(port, priority) headroom, `s` the bytes currently occupied, and 8 the
//! number of PFC priorities — exactly the rule the paper configures with
//! β = 8. A large β pauses late (giving ECN room to act first); a small β
//! pauses aggressively.

use crate::packet::NUM_PRIORITIES;
use crate::units::checked::{checked_accum, checked_drain, scale_bytes};

/// PFC threshold policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PfcThreshold {
    /// Fixed byte threshold per ingress (port, priority) queue. The paper's
    /// "misconfigured" experiment uses the static upper bound 24.47 KB.
    Static(u64),
    /// Trident II dynamic threshold with parameter β.
    Dynamic {
        /// The β factor: larger pauses later.
        beta: f64,
    },
}

/// Configuration of a shared buffer.
#[derive(Debug, Clone, Copy)]
pub struct BufferConfig {
    /// Total shared pool in bytes (12 MB on the paper's switches).
    pub total_bytes: u64,
    /// Number of ports (32 on the paper's switches).
    pub num_ports: usize,
    /// Reserved headroom per (port, priority) in bytes (`t_flight`,
    /// 22.4 KB in the paper).
    pub headroom_bytes: u64,
    /// PFC threshold policy.
    pub threshold: PfcThreshold,
    /// MTU in bytes, used for the resume hysteresis (resume at
    /// `t_PFC − 2·MTU`).
    pub mtu_bytes: u64,
    /// Dynamic-alpha factor for the lossy-mode (PFC off) per-egress-queue
    /// drop limit: a queue may hold at most `lossy_alpha · (B − s)` bytes.
    /// Broadcom-style lossy configs default to small fractions; 1/16 of
    /// the free pool approximates a production lossy profile.
    pub lossy_alpha: f64,
}

impl BufferConfig {
    /// The paper's testbed switch: Arista 7050QX32 (Trident II), 32 × 40G
    /// ports, 12 MB shared buffer, 8 PFC priorities, β = 8.
    pub fn trident2() -> BufferConfig {
        BufferConfig {
            total_bytes: 12_000_000,
            num_ports: 32,
            headroom_bytes: 22_400,
            threshold: PfcThreshold::Dynamic { beta: 8.0 },
            mtu_bytes: 1500,
            lossy_alpha: 1.0 / 16.0,
        }
    }

    /// Bytes of pool left after reserving headroom for every (port,
    /// priority): `B − 8·n·t_flight` (saturating).
    pub fn shared_pool(&self) -> u64 {
        self.total_bytes
            .saturating_sub(NUM_PRIORITIES as u64 * self.num_ports as u64 * self.headroom_bytes)
    }
}

/// Runtime shared-buffer state: total occupancy plus per-(port, priority)
/// ingress attribution.
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    config: BufferConfig,
    /// Total bytes currently buffered (`s` in the paper's formula).
    occupied: u64,
    /// Ingress bytes per (port, priority).
    ingress: Vec<[u64; NUM_PRIORITIES]>,
}

impl SharedBuffer {
    /// Creates an empty buffer.
    pub fn new(config: BufferConfig) -> SharedBuffer {
        SharedBuffer {
            ingress: vec![[0; NUM_PRIORITIES]; config.num_ports],
            occupied: 0,
            config,
        }
    }

    /// The configuration this buffer was built with.
    pub fn config(&self) -> &BufferConfig {
        &self.config
    }

    /// Bytes currently occupied (the paper's `s`).
    pub fn occupied(&self) -> u64 {
        self.occupied
    }

    /// Current ingress occupancy of one (port, priority) queue.
    pub fn ingress_bytes(&self, port: usize, prio: usize) -> u64 {
        self.ingress[port][prio]
    }

    /// The `(ingress occupancy, t_PFC)` pair justifying a PAUSE/RESUME
    /// decision on ingress `(port, prio)` right now — recorded on the
    /// causal tracer's pause-propagation edges so a congestion tree can
    /// show *how full* the root port was when it first paused.
    pub fn pause_detail(&self, port: usize, prio: usize) -> (u64, u64) {
        (self.ingress_bytes(port, prio), self.pfc_threshold())
    }

    /// The PFC threshold `t_PFC` under the current occupancy.
    pub fn pfc_threshold(&self) -> u64 {
        match self.config.threshold {
            PfcThreshold::Static(t) => t,
            PfcThreshold::Dynamic { beta } => {
                let per_class = beta / NUM_PRIORITIES as f64;
                let free = self.config.shared_pool().saturating_sub(self.occupied);
                scale_bytes(free, per_class)
            }
        }
    }

    /// Sum of every per-(port, priority) ingress count. Conservation
    /// invariant (checked by the `sanitize` auditor): this always equals
    /// [`SharedBuffer::occupied`].
    pub fn ingress_total(&self) -> u64 {
        let mut total = 0u64;
        for port in &self.ingress {
            for &b in port {
                total = total.saturating_add(b);
            }
        }
        total
    }

    /// Test/audit-only corruption hook: overwrites the global occupancy
    /// without touching the ingress attribution, deliberately breaking the
    /// conservation invariant so auditor tests can prove it is caught.
    #[cfg(feature = "sanitize")]
    pub fn debug_set_occupied(&mut self, bytes: u64) {
        self.occupied = bytes;
    }

    /// Tries to buffer `bytes` arriving on ingress (port, priority).
    /// Returns false (drop) when the pool is exhausted. The addition is
    /// checked: a `bytes` large enough to wrap `u64` is a drop, not a
    /// debug-panic/silent-wrap.
    pub fn admit(&mut self, port: usize, prio: usize, bytes: u64) -> bool {
        match self.occupied.checked_add(bytes) {
            Some(total) if total <= self.config.total_bytes => {
                self.occupied = total;
                // Bounded by `occupied ≤ total_bytes`, so this cannot
                // actually overflow; checked anyway per counter policy.
                let ok = checked_accum(&mut self.ingress[port][prio], bytes);
                debug_assert!(ok, "ingress accumulate overflow");
                true
            }
            _ => false,
        }
    }

    /// Releases `bytes` previously admitted for ingress (port, priority)
    /// (the packet finished transmitting out of the switch, or was dropped
    /// at egress). An unbalanced release (more than was admitted) leaves
    /// the counters untouched rather than wrapping; the `sanitize`
    /// auditor's conservation check then reports the imbalance.
    pub fn release(&mut self, port: usize, prio: usize, bytes: u64) {
        let ing_ok = checked_drain(&mut self.ingress[port][prio], bytes);
        debug_assert!(ing_ok, "release underflow");
        let occ_ok = checked_drain(&mut self.occupied, bytes);
        debug_assert!(occ_ok, "occupancy underflow");
    }

    /// Should the switch send PAUSE for this ingress (port, priority)?
    pub fn should_pause(&self, port: usize, prio: usize) -> bool {
        self.ingress[port][prio] > self.pfc_threshold()
    }

    /// Should the switch send RESUME for a currently paused ingress
    /// (port, priority)? The paper: "the switch sends RESUME when the queue
    /// falls below `t_PFC` by two MTU".
    pub fn should_resume(&self, port: usize, prio: usize) -> bool {
        let t = self.pfc_threshold();
        self.ingress[port][prio].saturating_add(2 * self.config.mtu_bytes) <= t
    }

    /// Per-egress-queue drop limit when PFC is disabled (lossy mode):
    /// a dynamic-alpha style cap of the remaining free pool.
    pub fn lossy_egress_limit(&self) -> u64 {
        let free = self.config.total_bytes.saturating_sub(self.occupied);
        scale_bytes(free, self.config.lossy_alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::bytes::{kb, mb};

    #[test]
    fn trident2_matches_paper_constants() {
        let c = BufferConfig::trident2();
        assert_eq!(c.total_bytes, mb(12));
        assert_eq!(c.num_ports, 32);
        // 8 · 32 · 22.4 KB = 5734.4 KB of headroom; pool = 6265.6 KB.
        assert_eq!(c.shared_pool(), mb(12) - 8 * 32 * 22_400);
        assert_eq!(c.shared_pool(), 6_265_600);
    }

    #[test]
    fn paper_static_upper_bound_is_24_47_kb() {
        // §4: t_PFC ≤ (B − 8·n·t_flight)/(8·n) ≈ 24.47 KB.
        let c = BufferConfig::trident2();
        let bound = c.shared_pool() as f64 / (8.0 * c.num_ports as f64) / 1000.0;
        assert!((bound - 24.47).abs() < 0.01, "bound = {bound:.2} KB");
    }

    #[test]
    fn dynamic_threshold_shrinks_with_occupancy() {
        let mut b = SharedBuffer::new(BufferConfig::trident2());
        let empty = b.pfc_threshold();
        // β = 8: at s = 0, t_PFC = shared_pool (β/8 = 1).
        assert_eq!(empty, b.config().shared_pool());
        assert!(b.admit(0, 3, mb(4)));
        let loaded = b.pfc_threshold();
        assert_eq!(loaded, b.config().shared_pool() - mb(4));
        assert!(loaded < empty);
    }

    #[test]
    fn static_threshold_is_constant() {
        let mut cfg = BufferConfig::trident2();
        cfg.threshold = PfcThreshold::Static(kb(24));
        let mut b = SharedBuffer::new(cfg);
        assert_eq!(b.pfc_threshold(), kb(24));
        b.admit(0, 3, mb(6));
        assert_eq!(b.pfc_threshold(), kb(24));
    }

    #[test]
    fn admit_and_release_are_balanced() {
        let mut b = SharedBuffer::new(BufferConfig::trident2());
        assert!(b.admit(3, 3, 1500));
        assert!(b.admit(3, 3, 1500));
        assert!(b.admit(4, 0, 64));
        assert_eq!(b.occupied(), 3064);
        assert_eq!(b.ingress_bytes(3, 3), 3000);
        assert_eq!(b.ingress_bytes(4, 0), 64);
        b.release(3, 3, 1500);
        b.release(4, 0, 64);
        assert_eq!(b.occupied(), 1500);
        assert_eq!(b.ingress_bytes(3, 3), 1500);
    }

    #[test]
    fn admission_fails_when_pool_full() {
        let mut cfg = BufferConfig::trident2();
        cfg.total_bytes = 3000;
        let mut b = SharedBuffer::new(cfg);
        assert!(b.admit(0, 0, 1500));
        assert!(b.admit(0, 0, 1500));
        assert!(!b.admit(0, 0, 1));
        b.release(0, 0, 1500);
        assert!(b.admit(0, 0, 1500));
    }

    #[test]
    fn pause_and_resume_hysteresis() {
        let mut cfg = BufferConfig::trident2();
        cfg.threshold = PfcThreshold::Static(kb(24));
        let mut b = SharedBuffer::new(cfg);
        assert!(!b.should_pause(0, 3));
        b.admit(0, 3, kb(24) + 1);
        assert!(b.should_pause(0, 3));
        // Resume requires dropping 2 MTU below the threshold.
        b.release(0, 3, 1);
        assert!(!b.should_resume(0, 3)); // exactly at threshold
        b.release(0, 3, 2 * 1500);
        assert!(b.should_resume(0, 3));
    }

    #[test]
    fn dynamic_resume_accounts_for_current_occupancy() {
        let mut b = SharedBuffer::new(BufferConfig::trident2());
        // Fill most of the pool from another port so the threshold is tiny.
        let pool = b.config().shared_pool();
        assert!(b.admit(1, 3, pool - kb(10)));
        assert_eq!(b.pfc_threshold(), kb(10));
        b.admit(0, 3, kb(11));
        assert!(b.should_pause(0, 3));
        assert!(!b.should_resume(0, 3));
        // Draining the *other* port raises the threshold and unblocks us.
        b.release(1, 3, pool - kb(10));
        assert!(!b.should_pause(0, 3));
        assert!(b.should_resume(0, 3));
    }

    #[test]
    fn lossy_limit_shrinks_with_occupancy() {
        let mut b = SharedBuffer::new(BufferConfig::trident2());
        let l0 = b.lossy_egress_limit();
        assert_eq!(l0, mb(12) / 16);
        b.admit(0, 3, mb(8));
        assert_eq!(b.lossy_egress_limit(), mb(4) / 16);
    }

    #[test]
    fn ingress_total_tracks_occupied() {
        let mut b = SharedBuffer::new(BufferConfig::trident2());
        assert_eq!(b.ingress_total(), 0);
        assert!(b.admit(0, 3, 1500));
        assert!(b.admit(5, 1, 64));
        assert!(b.admit(31, 7, kb(20)));
        assert_eq!(b.ingress_total(), b.occupied());
        b.release(5, 1, 64);
        assert_eq!(b.ingress_total(), b.occupied());
    }

    #[test]
    fn unbalanced_release_does_not_wrap() {
        let mut b = SharedBuffer::new(BufferConfig::trident2());
        assert!(b.admit(0, 3, 100));
        // Debug builds assert; release builds must not wrap to ~u64::MAX.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.release(0, 3, 200);
        }));
        if result.is_ok() {
            assert!(b.occupied() <= 100, "no wraparound on bad release");
        }
    }

    #[test]
    fn admit_rejects_sizes_that_would_overflow_u64() {
        // A request near u64::MAX must be a clean drop — not a wrapping
        // add that sneaks past the pool check (or a debug-build panic).
        let mut b = SharedBuffer::new(BufferConfig::trident2());
        assert!(b.admit(0, 3, kb(10)));
        let before = b.occupied();
        assert!(!b.admit(0, 3, u64::MAX));
        assert!(!b.admit(1, 0, u64::MAX - before + 1));
        assert_eq!(b.occupied(), before, "rejected admits must not mutate");
        assert_eq!(b.ingress_bytes(1, 0), 0);
        // A merely-too-large (non-overflowing) request is also rejected.
        assert!(!b.admit(0, 3, b.config().total_bytes));
        assert_eq!(b.occupied(), before);
    }
}
