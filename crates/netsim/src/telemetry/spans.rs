//! Span-based causal tracing: per-flow latency attribution, the
//! pause-propagation graph, and a Chrome trace-event exporter.
//!
//! The paper's headline pathologies — PFC unfairness (Fig. 3), the victim
//! flow (Fig. 4), congestion spreading — are *causal* questions: why was
//! this flow slow, and who paused whom?  The flat trace ring and the
//! metrics registry answer aggregate questions only.  This module keeps,
//! per flow, a timeline of **attributed states** as seen from the
//! sender's NIC:
//!
//! * [`SpanState::Serializing`] — the flow's packet occupies the NIC port.
//! * [`SpanState::Queued`] — the flow has data and is eligible, but the
//!   NIC is busy with another frame (or another flow won arbitration).
//! * [`SpanState::PauseBlocked`] — the flow's priority class is paused at
//!   the NIC; the track remembers the origin port of the PAUSE.
//! * [`SpanState::Throttled`] — the rate limiter (or the go-back-N
//!   window) is holding the flow back; the track remembers how many CNPs
//!   the flow had absorbed when the span opened.
//! * [`SpanState::Retransmitting`] — like `Serializing`, but the frame on
//!   the wire is a go-back-N retransmission.
//! * [`SpanState::TimedOut`] — time re-attributed to an RTO stall when
//!   the retransmission timer fires.
//! * [`SpanState::Idle`] — none of the above: no send-side work, which
//!   for an active flow means the bytes are in flight (their per-hop
//!   residency is itemized separately by [`HopSpan`]s).
//!
//! State transitions only ever happen inside host event handlers, so the
//! timeline is exact: every attributed interval starts and ends on an
//! event boundary.  The accumulators telescope, giving the **FCT
//! decomposition identity**
//!
//! ```text
//! serializing + queued + pause_blocked + throttled
//!             + retransmitting + timed_out + idle  ==  fct
//! ```
//!
//! checked on every message-completion by the sanitize auditor
//! (`ViolationKind::SpanAccounting`).  Two cold folds sit on top:
//! [`Spans::congestion_tree`] collapses PAUSE/RESUME edges into a
//! per-run tree naming root port(s) and victim flows, and
//! [`Spans::chrome_trace`] renders everything as deterministic Chrome
//! trace-event JSON (loadable in Perfetto / `about://tracing`).
//!
//! Disabled (the default), the whole layer is one branch per hook —
//! mirroring `trace::Tracer`.

use crate::event::{NodeId, PortId};
use crate::packet::FlowId;
use crate::telemetry::json::Json;
use crate::units::{Duration, Time};
use std::collections::BTreeMap;

/// What a flow's send side is doing right now, as attributed by the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanState {
    /// No send-side work pending; for an unfinished message this is
    /// in-flight time (itemized per hop by [`HopSpan`]s).
    Idle = 0,
    /// The flow's frame occupies the NIC port (first transmission).
    Serializing = 1,
    /// Data is eligible but waiting for the NIC port or arbitration.
    Queued = 2,
    /// The flow's priority class is PAUSEd at the NIC.
    PauseBlocked = 3,
    /// The rate limiter or the go-back-N window is holding the flow.
    Throttled = 4,
    /// The flow's frame occupies the NIC port (go-back-N resend).
    Retransmitting = 5,
    /// Stall time re-attributed when the retransmission timer fired.
    TimedOut = 6,
}

/// Number of [`SpanState`] variants (length of per-flow accumulators).
pub const NUM_SPAN_STATES: usize = 7;

impl SpanState {
    /// All states, in accumulator-index order.
    pub const ALL: [SpanState; NUM_SPAN_STATES] = [
        SpanState::Idle,
        SpanState::Serializing,
        SpanState::Queued,
        SpanState::PauseBlocked,
        SpanState::Throttled,
        SpanState::Retransmitting,
        SpanState::TimedOut,
    ];

    /// Stable snake_case name (used in reports and trace exports).
    pub fn name(self) -> &'static str {
        match self {
            SpanState::Idle => "idle",
            SpanState::Serializing => "serializing",
            SpanState::Queued => "queued",
            SpanState::PauseBlocked => "pause_blocked",
            SpanState::Throttled => "throttled",
            SpanState::Retransmitting => "retransmitting",
            SpanState::TimedOut => "timed_out",
        }
    }
}

/// One closed attributed interval in a flow's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpan {
    /// The attributed state.
    pub state: SpanState,
    /// Interval start (inclusive).
    pub start: Time,
    /// Interval end (exclusive).
    pub end: Time,
    /// State-specific detail: for [`SpanState::PauseBlocked`] the origin
    /// node id of the blocking PAUSE; for [`SpanState::Throttled`] the
    /// flow's CNP count when the span opened; otherwise 0.
    pub detail: u64,
}

/// One data frame's residency at one hop: queue wait plus serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSpan {
    /// The flow the frame belongs to.
    pub flow: FlowId,
    /// The node (host NIC or switch) that forwarded the frame.
    pub node: NodeId,
    /// The egress port on that node.
    pub port: PortId,
    /// When the frame entered the egress queue.
    pub enqueued: Time,
    /// When serialization onto the wire began.
    pub start: Time,
    /// When the last bit left the port.
    pub end: Time,
}

/// One PAUSE or RESUME frame, as a directed edge of the propagation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseEdge {
    /// When the frame was sent.
    pub at: Time,
    /// The node that sent the PAUSE/RESUME.
    pub from: NodeId,
    /// The ingress port whose occupancy triggered it.
    pub from_port: PortId,
    /// The upstream neighbour being paused/resumed.
    pub to: NodeId,
    /// The neighbour's port on this link.
    pub to_port: PortId,
    /// Priority class.
    pub class: u8,
    /// `true` for PAUSE, `false` for RESUME.
    pub pause: bool,
    /// `true` when injected by the malfunctioning-NIC fault, not by
    /// buffer pressure.
    pub storm: bool,
    /// Ingress occupancy (bytes) at the decision, 0 for storm frames.
    pub depth: u64,
    /// The PFC threshold in force at the decision, 0 for storm frames.
    pub threshold: u64,
}

/// Snapshot taken when a flow finishes a message: the decomposition the
/// sanitize auditor checks against the measured FCT.
#[derive(Debug, Clone, Copy)]
pub struct SpanCompletion {
    /// Completion time (last ACK processed).
    pub at: Time,
    /// When the track activated (first message arrival).
    pub started: Time,
    /// `at - started`: the flow's measured completion time.
    pub fct: Duration,
    /// Per-state attributed time, indexed by `SpanState as usize`.
    pub accum: [Duration; NUM_SPAN_STATES],
}

/// A root of the congestion tree: a port whose PAUSEs started a cascade.
#[derive(Debug, Clone, Copy)]
pub struct TreeRoot {
    /// Node owning the root port.
    pub node: NodeId,
    /// The ingress port that first crossed the PFC threshold.
    pub port: PortId,
    /// When its first PAUSE left.
    pub first_pause: Time,
    /// Total PAUSE frames it sent.
    pub pauses: u64,
    /// Whether any of them were fault-injected storm frames.
    pub storm: bool,
}

/// An aggregated directed edge of the congestion tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeEdge {
    /// Pausing node.
    pub from: NodeId,
    /// Its ingress port.
    pub from_port: PortId,
    /// Paused upstream neighbour.
    pub to: NodeId,
    /// The neighbour's port.
    pub to_port: PortId,
    /// Priority class.
    pub class: u8,
    /// PAUSE frames on this edge.
    pub pauses: u64,
    /// RESUME frames on this edge.
    pub resumes: u64,
    /// First PAUSE timestamp.
    pub first_pause: Time,
    /// Last PAUSE/RESUME timestamp.
    pub last: Time,
    /// Whether any frame was storm-injected.
    pub storm: bool,
    /// Peak ingress occupancy seen on PAUSE decisions.
    pub peak_depth: u64,
}

/// A victim flow: one that spent time pause-blocked, with the last
/// culprit port.
#[derive(Debug, Clone, Copy)]
pub struct TreeVictim {
    /// The blocked flow.
    pub flow: FlowId,
    /// Total time its class was paused at its NIC.
    pub pause_blocked: Duration,
    /// Origin of the last PAUSE that blocked it, when known.
    pub origin: Option<(NodeId, PortId)>,
}

/// The folded pause-propagation graph of one run.
#[derive(Debug, Clone, Default)]
pub struct CongestionTree {
    /// Ports whose first PAUSE preceded any PAUSE *received* by their
    /// node: the places congestion genuinely originated.
    pub roots: Vec<TreeRoot>,
    /// All who-paused-whom edges, aggregated per (from, port, to, port,
    /// class) and sorted.
    pub edges: Vec<TreeEdge>,
    /// Flows with nonzero pause-blocked time, by ascending flow id.
    pub victims: Vec<TreeVictim>,
}

impl CongestionTree {
    /// Deterministic JSON form (keys sorted by the renderer).
    pub fn to_json(&self) -> Json {
        let roots = self
            .roots
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("node", Json::from(r.node.0)),
                    ("port", Json::from(r.port.0)),
                    ("first_pause_us", Json::from(r.first_pause.as_micros_f64())),
                    ("pauses", Json::from(r.pauses)),
                    ("storm", Json::from(r.storm)),
                ])
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("from_node", Json::from(e.from.0)),
                    ("from_port", Json::from(e.from_port.0)),
                    ("to_node", Json::from(e.to.0)),
                    ("to_port", Json::from(e.to_port.0)),
                    ("class", Json::from(e.class as u64)),
                    ("pauses", Json::from(e.pauses)),
                    ("resumes", Json::from(e.resumes)),
                    ("first_pause_us", Json::from(e.first_pause.as_micros_f64())),
                    ("last_us", Json::from(e.last.as_micros_f64())),
                    ("storm", Json::from(e.storm)),
                    ("peak_depth_bytes", Json::from(e.peak_depth)),
                ])
            })
            .collect();
        let victims = self
            .victims
            .iter()
            .map(|v| {
                let mut o = Json::obj(vec![
                    ("flow", Json::from(v.flow.0)),
                    (
                        "pause_blocked_us",
                        Json::from(v.pause_blocked.as_micros_f64()),
                    ),
                ]);
                if let Some((n, p)) = v.origin {
                    o.push("origin_node", Json::from(n.0));
                    o.push("origin_port", Json::from(p.0));
                }
                o
            })
            .collect();
        Json::obj(vec![
            ("roots", Json::Arr(roots)),
            ("edges", Json::Arr(edges)),
            ("victims", Json::Arr(victims)),
        ])
    }
}

/// Per-flow timeline state (one per tracked flow).
#[derive(Debug, Clone)]
struct FlowTrack {
    /// First activation (first non-idle observation): FCT epoch.
    started: Time,
    /// Current attributed state.
    state: SpanState,
    /// When the current open interval began.
    since: Time,
    /// Detail value of the current open interval.
    detail: u64,
    /// Settled per-state time; telescopes to `settle_time - started`.
    accum: [Duration; NUM_SPAN_STATES],
    /// Closed spans (bounded by the configured capacity; contiguous
    /// same-state spans are merged). Drops never affect `accum`.
    log: Vec<FlowSpan>,
    /// Origin of the most recent PAUSE observed blocking this flow.
    pause_origin: Option<(NodeId, PortId)>,
    /// Whether the next serialization is a go-back-N resend.
    retx_pending: bool,
    /// Snapshot of the latest message completion.
    completion: Option<SpanCompletion>,
    /// Messages completed so far.
    completions: u64,
}

impl FlowTrack {
    fn new(now: Time, state: SpanState, detail: u64) -> FlowTrack {
        FlowTrack {
            started: now,
            state,
            since: now,
            detail,
            accum: [Duration::ZERO; NUM_SPAN_STATES],
            log: Vec::new(),
            pause_origin: None,
            retx_pending: false,
            completion: None,
            completions: 0,
        }
    }
}

/// Flow-id indices above this are treated as untrackable (guards
/// sentinel ids like `FlowId(u64::MAX)` on control packets).
const MAX_TRACKED_FLOWS: usize = 1 << 20;

/// The causal-tracing recorder owned by the simulation context.
///
/// Disabled by default; every hot-path hook checks [`Spans::is_enabled`]
/// first, so a run that never calls [`Spans::enable`] pays one branch
/// per hook and nothing else.
#[derive(Debug, Clone, Default)]
pub struct Spans {
    enabled: bool,
    /// Per-flow closed-span log capacity; hop spans and pause edges are
    /// each bounded by 64× this.
    cap: usize,
    flows: Vec<Option<FlowTrack>>,
    hops: Vec<HopSpan>,
    edges: Vec<PauseEdge>,
    dropped: u64,
}

impl Spans {
    /// The inert recorder every network starts with.
    pub fn disabled() -> Spans {
        Spans::default()
    }

    /// Enables causal tracing: up to `capacity` closed spans per flow
    /// and `64 * capacity` hop spans / pause edges overall.  Per-state
    /// accumulators (and therefore the FCT decomposition identity) are
    /// exact regardless of capacity; only itemized timeline entries are
    /// dropped, and [`Spans::dropped_spans`] counts them.
    ///
    /// A `capacity` of 0 means "no tracing": the recorder is reset to
    /// its disabled state (mirroring `Tracer::enable`).
    pub fn enable(&mut self, capacity: usize) {
        if capacity == 0 {
            *self = Spans::disabled();
            return;
        }
        *self = Spans {
            enabled: true,
            cap: capacity,
            ..Spans::disabled()
        };
    }

    /// Whether causal tracing is on. Hot-path hooks gate on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Timeline entries discarded because a capacity bound was hit.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped
    }

    fn index(&mut self, flow: FlowId) -> Option<usize> {
        let Ok(idx) = usize::try_from(flow.0) else {
            self.dropped = self.dropped.saturating_add(1);
            return None;
        };
        if idx >= MAX_TRACKED_FLOWS {
            self.dropped = self.dropped.saturating_add(1);
            return None;
        }
        Some(idx)
    }

    fn push_log(log: &mut Vec<FlowSpan>, cap: usize, dropped: &mut u64, span: FlowSpan) {
        if let Some(last) = log.last_mut() {
            if last.state == span.state && last.end == span.start && last.detail == span.detail {
                last.end = span.end;
                return;
            }
        }
        if log.len() >= cap {
            *dropped = dropped.saturating_add(1);
            return;
        }
        log.push(span);
    }

    /// Records the flow's state as observed at the *end* of a host
    /// event.  `detail` is state-specific (see [`FlowSpan::detail`]);
    /// `origin` names the pausing port for [`SpanState::PauseBlocked`].
    ///
    /// An untracked flow observed `Idle` stays untracked: tracks
    /// activate on the first non-idle observation, which pins the FCT
    /// epoch to the first message arrival.
    #[inline]
    pub fn set_state(
        &mut self,
        flow: FlowId,
        state: SpanState,
        now: Time,
        detail: u64,
        origin: Option<(NodeId, PortId)>,
    ) {
        if !self.enabled {
            return;
        }
        let Some(idx) = self.index(flow) else {
            return;
        };
        if self.flows.len() <= idx || self.flows[idx].is_none() {
            if state == SpanState::Idle {
                return;
            }
            if self.flows.len() <= idx {
                self.flows.resize_with(idx + 1, || None);
            }
            self.flows[idx] = Some(FlowTrack::new(now, SpanState::Idle, 0));
        }
        let Some(t) = self.flows[idx].as_mut() else {
            return;
        };
        // A serialization observed while a resend is pending is the
        // resend itself.
        let state = if state == SpanState::Serializing && t.retx_pending {
            SpanState::Retransmitting
        } else {
            state
        };
        if state == SpanState::PauseBlocked && origin.is_some() {
            t.pause_origin = origin;
        }
        if t.state == state {
            return;
        }
        let held = now.saturating_since(t.since);
        t.accum[t.state as usize] += held;
        if held > Duration::ZERO {
            Spans::push_log(
                &mut t.log,
                self.cap,
                &mut self.dropped,
                FlowSpan {
                    state: t.state,
                    start: t.since,
                    end: now,
                    detail: t.detail,
                },
            );
        }
        t.state = state;
        t.since = now;
        t.detail = detail;
    }

    /// Notes that the NIC just cut a data frame for `flow`
    /// (`retx = true` for a go-back-N resend), ensuring the track
    /// exists before the end-of-event state observation.
    #[inline]
    pub fn on_data_tx(&mut self, flow: FlowId, retx: bool, now: Time) {
        if !self.enabled {
            return;
        }
        let Some(idx) = self.index(flow) else {
            return;
        };
        if self.flows.len() <= idx {
            self.flows.resize_with(idx + 1, || None);
        }
        let t = self.flows[idx].get_or_insert_with(|| FlowTrack::new(now, SpanState::Idle, 0));
        t.retx_pending = retx;
    }

    /// Re-attributes the open interval to [`SpanState::TimedOut`] when
    /// the retransmission timer fires: the stall since the last
    /// transition was RTO wait, whatever label it carried.
    #[inline]
    pub fn on_timeout(&mut self, flow: FlowId, now: Time) {
        if !self.enabled {
            return;
        }
        let Some(idx) = self.index(flow) else {
            return;
        };
        let Some(t) = self.flows.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let held = now.saturating_since(t.since);
        t.accum[SpanState::TimedOut as usize] += held;
        if held > Duration::ZERO {
            Spans::push_log(
                &mut t.log,
                self.cap,
                &mut self.dropped,
                FlowSpan {
                    state: SpanState::TimedOut,
                    start: t.since,
                    end: now,
                    detail: 0,
                },
            );
        }
        t.since = now;
        t.detail = 0;
    }

    /// Settles the timeline at a message completion and snapshots the
    /// decomposition.  Returns `Some((fct, attributed_sum))` when the
    /// identity `Σ accum == at - started` does **not** hold — the
    /// caller routes that to the sanitize auditor.
    #[inline]
    pub fn on_complete(&mut self, flow: FlowId, now: Time) -> Option<(Duration, Duration)> {
        if !self.enabled {
            return None;
        }
        let idx = self.index(flow)?;
        let t = self.flows.get_mut(idx).and_then(Option::as_mut)?;
        let held = now.saturating_since(t.since);
        t.accum[t.state as usize] += held;
        if held > Duration::ZERO {
            Spans::push_log(
                &mut t.log,
                self.cap,
                &mut self.dropped,
                FlowSpan {
                    state: t.state,
                    start: t.since,
                    end: now,
                    detail: t.detail,
                },
            );
        }
        t.since = now;
        let fct = now.saturating_since(t.started);
        let sum: Duration = t.accum.iter().copied().sum();
        t.completions += 1;
        t.completion = Some(SpanCompletion {
            at: now,
            started: t.started,
            fct,
            accum: t.accum,
        });
        if sum == fct {
            None
        } else {
            Some((fct, sum))
        }
    }

    /// Records one data frame's residency at one hop.
    #[inline]
    pub fn record_hop(&mut self, hop: HopSpan) {
        if !self.enabled {
            return;
        }
        if self.hops.len() >= self.cap.saturating_mul(64) {
            self.dropped = self.dropped.saturating_add(1);
            return;
        }
        self.hops.push(hop);
    }

    /// Records one PAUSE/RESUME frame as a propagation-graph edge.
    #[inline]
    pub fn record_pause_edge(&mut self, edge: PauseEdge) {
        if !self.enabled {
            return;
        }
        if self.edges.len() >= self.cap.saturating_mul(64) {
            self.dropped = self.dropped.saturating_add(1);
            return;
        }
        self.edges.push(edge);
    }

    /// Test/diagnostic hook: skews a flow's idle accumulator so the
    /// decomposition identity is violated on its next completion.
    #[cfg(any(test, feature = "sanitize"))]
    pub fn debug_skew_accum(&mut self, flow: FlowId, by: Duration) {
        let Some(idx) = self.index(flow) else {
            return;
        };
        if let Some(t) = self.flows.get_mut(idx).and_then(Option::as_mut) {
            t.accum[SpanState::Idle as usize] += by;
        }
    }

    /// The flow's per-state attributed time as of `now` (settled
    /// accumulators plus the open interval). `None` if untracked.
    pub fn breakdown(&self, flow: FlowId, now: Time) -> Option<[Duration; NUM_SPAN_STATES]> {
        let idx = usize::try_from(flow.0).ok()?;
        let t = self.flows.get(idx)?.as_ref()?;
        let mut acc = t.accum;
        acc[t.state as usize] += now.saturating_since(t.since);
        Some(acc)
    }

    /// The flow's latest completion snapshot, if it finished a message.
    pub fn completion(&self, flow: FlowId) -> Option<SpanCompletion> {
        let idx = usize::try_from(flow.0).ok()?;
        self.flows.get(idx)?.as_ref()?.completion
    }

    /// How many message completions the flow has recorded.
    pub fn completions(&self, flow: FlowId) -> u64 {
        usize::try_from(flow.0)
            .ok()
            .and_then(|idx| self.flows.get(idx))
            .and_then(Option::as_ref)
            .map(|t| t.completions)
            .unwrap_or(0)
    }

    /// Closed spans of one flow's timeline (bounded; see [`Spans::enable`]).
    pub fn flow_spans(&self, flow: FlowId) -> &[FlowSpan] {
        usize::try_from(flow.0)
            .ok()
            .and_then(|idx| self.flows.get(idx))
            .and_then(Option::as_ref)
            .map(|t| t.log.as_slice())
            .unwrap_or(&[])
    }

    /// All recorded per-hop residency spans, in simulation order.
    pub fn hops(&self) -> &[HopSpan] {
        &self.hops
    }

    /// All recorded PAUSE/RESUME edges, in simulation order.
    pub fn edges(&self) -> &[PauseEdge] {
        &self.edges
    }

    /// Folds the PAUSE/RESUME edges and the pause-blocked accumulators
    /// into the run's congestion tree (cold).
    ///
    /// A **root** is a port whose node sent its first PAUSE no later
    /// than the node first *received* one: pressure originated there
    /// rather than cascading into it.  Every flow with nonzero
    /// pause-blocked time is a **victim**, tagged with the origin of the
    /// last PAUSE that blocked it.
    pub fn congestion_tree(&self, now: Time) -> CongestionTree {
        #[derive(Default)]
        struct Agg {
            pauses: u64,
            resumes: u64,
            first_pause: Time,
            last: Time,
            storm: bool,
            peak_depth: u64,
        }
        let mut by_edge: BTreeMap<(usize, usize, usize, usize, u8), Agg> = BTreeMap::new();
        let mut first_rx: BTreeMap<usize, Time> = BTreeMap::new();
        for e in &self.edges {
            let key = (e.from.0, e.from_port.0, e.to.0, e.to_port.0, e.class);
            let a = by_edge.entry(key).or_insert_with(|| Agg {
                first_pause: Time::NEVER,
                ..Agg::default()
            });
            if e.pause {
                a.pauses += 1;
                if e.at < a.first_pause {
                    a.first_pause = e.at;
                }
                if e.depth > a.peak_depth {
                    a.peak_depth = e.depth;
                }
                let rx = first_rx.entry(e.to.0).or_insert(Time::NEVER);
                if e.at < *rx {
                    *rx = e.at;
                }
            } else {
                a.resumes += 1;
            }
            if e.at > a.last {
                a.last = e.at;
            }
            a.storm |= e.storm;
        }
        let mut edges = Vec::with_capacity(by_edge.len());
        let mut by_root: BTreeMap<(usize, usize), TreeRoot> = BTreeMap::new();
        for (&(from, from_port, to, to_port, class), a) in &by_edge {
            edges.push(TreeEdge {
                from: NodeId(from),
                from_port: PortId(from_port),
                to: NodeId(to),
                to_port: PortId(to_port),
                class,
                pauses: a.pauses,
                resumes: a.resumes,
                first_pause: a.first_pause,
                last: a.last,
                storm: a.storm,
                peak_depth: a.peak_depth,
            });
            if a.pauses == 0 {
                continue;
            }
            let received = first_rx.get(&from).copied().unwrap_or(Time::NEVER);
            if a.first_pause <= received {
                let r = by_root.entry((from, from_port)).or_insert(TreeRoot {
                    node: NodeId(from),
                    port: PortId(from_port),
                    first_pause: a.first_pause,
                    pauses: 0,
                    storm: false,
                });
                if a.first_pause < r.first_pause {
                    r.first_pause = a.first_pause;
                }
                r.pauses += a.pauses;
                r.storm |= a.storm;
            }
        }
        // Earliest origin first: `roots[0]` is *the* root cause.
        let mut roots: Vec<TreeRoot> = by_root.into_values().collect();
        roots.sort_by_key(|r| (r.first_pause, r.node.0, r.port.0));
        let mut victims = Vec::new();
        for (idx, slot) in self.flows.iter().enumerate() {
            let Some(t) = slot.as_ref() else {
                continue;
            };
            let mut acc = t.accum;
            acc[t.state as usize] += now.saturating_since(t.since);
            let blocked = acc[SpanState::PauseBlocked as usize];
            if blocked > Duration::ZERO {
                victims.push(TreeVictim {
                    flow: FlowId(idx as u64),
                    pause_blocked: blocked,
                    origin: t.pause_origin,
                });
            }
        }
        CongestionTree {
            roots,
            edges,
            victims,
        }
    }

    /// Renders everything recorded so far as Chrome trace-event JSON
    /// (cold).  One process (`pid` 0) holds one thread per flow; each
    /// node gets a process (`pid = node + 1`) with one thread per port
    /// carrying hop spans and PAUSE/RESUME instants.  Output is
    /// deterministic: it reuses `telemetry::json` and depends only on
    /// the simulation, never on wall clock or thread count.
    pub fn chrome_trace(&self, now: Time) -> Json {
        let mut events: Vec<Json> = Vec::new();
        let meta = |name: &str, pid: usize, tid: u64, value: &str| {
            Json::obj(vec![
                ("ph", Json::from("M")),
                ("name", Json::from(name)),
                ("pid", Json::from(pid)),
                ("tid", Json::from(tid)),
                ("args", Json::obj(vec![("name", Json::from(value))])),
            ])
        };
        events.push(meta("process_name", 0, 0, "flows"));
        for (idx, slot) in self.flows.iter().enumerate() {
            if slot.is_some() {
                events.push(meta("thread_name", 0, idx as u64, &format!("flow {idx}")));
            }
        }
        let mut node_ports: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for h in &self.hops {
            let ports = node_ports.entry(h.node.0).or_default();
            if !ports.contains(&h.port.0) {
                ports.push(h.port.0);
            }
        }
        for e in &self.edges {
            let ports = node_ports.entry(e.from.0).or_default();
            if !ports.contains(&e.from_port.0) {
                ports.push(e.from_port.0);
            }
        }
        for (node, ports) in &mut node_ports {
            ports.sort_unstable();
            events.push(meta("process_name", node + 1, 0, &format!("node {node}")));
            for &p in ports.iter() {
                events.push(meta(
                    "thread_name",
                    node + 1,
                    p as u64,
                    &format!("port {p}"),
                ));
            }
        }
        let complete = |name: &str, pid: usize, tid: u64, start: Time, end: Time, args: Json| {
            Json::obj(vec![
                ("ph", Json::from("X")),
                ("name", Json::from(name)),
                ("pid", Json::from(pid)),
                ("tid", Json::from(tid)),
                ("ts", Json::from(start.as_micros_f64())),
                (
                    "dur",
                    Json::from(end.saturating_since(start).as_micros_f64()),
                ),
                ("args", args),
            ])
        };
        for (idx, slot) in self.flows.iter().enumerate() {
            let Some(t) = slot.as_ref() else {
                continue;
            };
            for s in &t.log {
                let args = Json::obj(vec![("detail", Json::from(s.detail))]);
                events.push(complete(
                    s.state.name(),
                    0,
                    idx as u64,
                    s.start,
                    s.end,
                    args,
                ));
            }
            if now > t.since {
                let args = Json::obj(vec![("detail", Json::from(t.detail))]);
                events.push(complete(t.state.name(), 0, idx as u64, t.since, now, args));
            }
        }
        for h in &self.hops {
            let args = Json::obj(vec![
                ("flow", Json::from(h.flow.0)),
                (
                    "queued_us",
                    Json::from(h.start.saturating_since(h.enqueued).as_micros_f64()),
                ),
            ]);
            events.push(complete(
                &format!("tx flow {}", h.flow.0),
                h.node.0 + 1,
                h.port.0 as u64,
                h.start,
                h.end,
                args,
            ));
        }
        for e in &self.edges {
            let name = if e.pause { "PAUSE" } else { "RESUME" };
            events.push(Json::obj(vec![
                ("ph", Json::from("i")),
                ("s", Json::from("t")),
                ("name", Json::from(name)),
                ("pid", Json::from(e.from.0 + 1)),
                ("tid", Json::from(e.from_port.0)),
                ("ts", Json::from(e.at.as_micros_f64())),
                (
                    "args",
                    Json::obj(vec![
                        ("to_node", Json::from(e.to.0)),
                        ("to_port", Json::from(e.to_port.0)),
                        ("class", Json::from(e.class as u64)),
                        ("depth_bytes", Json::from(e.depth)),
                        ("threshold_bytes", Json::from(e.threshold)),
                        ("storm", Json::from(e.storm)),
                    ]),
                ),
            ]));
        }
        Json::obj(vec![
            ("displayTimeUnit", Json::from("ms")),
            ("dropped_spans", Json::from(self.dropped)),
            ("traceEvents", Json::Arr(events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FlowId = FlowId(3);

    #[test]
    fn disabled_recorder_is_inert() {
        let mut s = Spans::disabled();
        s.set_state(F, SpanState::Queued, Time::from_micros(1), 0, None);
        s.on_data_tx(F, false, Time::from_micros(1));
        assert!(!s.is_enabled());
        assert!(s.breakdown(F, Time::from_micros(2)).is_none());
    }

    #[test]
    fn enable_zero_stays_disabled() {
        let mut s = Spans::disabled();
        s.enable(0);
        assert!(!s.is_enabled());
        s.enable(8);
        assert!(s.is_enabled());
        s.enable(0);
        assert!(!s.is_enabled());
        s.set_state(F, SpanState::Queued, Time::ZERO, 0, None);
        assert!(s.breakdown(F, Time::from_micros(1)).is_none());
    }

    #[test]
    fn idle_does_not_activate_a_track() {
        let mut s = Spans::disabled();
        s.enable(16);
        s.set_state(F, SpanState::Idle, Time::from_micros(5), 0, None);
        assert!(s.breakdown(F, Time::from_micros(6)).is_none());
    }

    #[test]
    fn transitions_telescope_to_elapsed_time() {
        let mut s = Spans::disabled();
        s.enable(16);
        let t = Time::from_micros;
        s.set_state(F, SpanState::Queued, t(10), 0, None);
        s.set_state(F, SpanState::Serializing, t(13), 0, None);
        s.set_state(
            F,
            SpanState::PauseBlocked,
            t(20),
            7,
            Some((NodeId(7), PortId(2))),
        );
        s.set_state(F, SpanState::Idle, t(32), 0, None);
        let b = s.breakdown(F, t(40)).unwrap();
        assert_eq!(b[SpanState::Queued as usize], Duration::from_micros(3));
        assert_eq!(b[SpanState::Serializing as usize], Duration::from_micros(7));
        assert_eq!(
            b[SpanState::PauseBlocked as usize],
            Duration::from_micros(12)
        );
        assert_eq!(b[SpanState::Idle as usize], Duration::from_micros(8));
        let total: Duration = b.iter().copied().sum();
        assert_eq!(total, Duration::from_micros(30));
    }

    #[test]
    fn retx_pending_turns_serializing_into_retransmitting() {
        let mut s = Spans::disabled();
        s.enable(16);
        let t = Time::from_micros;
        s.on_data_tx(F, true, t(0));
        s.set_state(F, SpanState::Serializing, t(0), 0, None);
        s.set_state(F, SpanState::Idle, t(4), 0, None);
        let b = s.breakdown(F, t(4)).unwrap();
        assert_eq!(
            b[SpanState::Retransmitting as usize],
            Duration::from_micros(4)
        );
        assert_eq!(b[SpanState::Serializing as usize], Duration::ZERO);
    }

    #[test]
    fn completion_identity_holds_and_skew_is_detected() {
        let mut s = Spans::disabled();
        s.enable(16);
        let t = Time::from_micros;
        s.set_state(F, SpanState::Serializing, t(2), 0, None);
        s.set_state(F, SpanState::Idle, t(6), 0, None);
        assert_eq!(s.on_complete(F, t(9)), None);
        let c = s.completion(F).unwrap();
        assert_eq!(c.fct, Duration::from_micros(7));
        assert_eq!(c.accum.iter().copied().sum::<Duration>(), c.fct);
        // Corrupt an accumulator: the next completion must report the
        // mismatch for the sanitize auditor.
        s.debug_skew_accum(F, Duration::from_micros(1));
        s.set_state(F, SpanState::Serializing, t(10), 0, None);
        s.set_state(F, SpanState::Idle, t(12), 0, None);
        let got = s.on_complete(F, t(12));
        assert!(got.is_some());
        let (fct, sum) = got.unwrap();
        assert_eq!(sum, fct + Duration::from_micros(1));
    }

    #[test]
    fn timeout_reattributes_the_open_interval() {
        let mut s = Spans::disabled();
        s.enable(16);
        let t = Time::from_micros;
        s.set_state(F, SpanState::Serializing, t(0), 0, None);
        s.set_state(F, SpanState::Idle, t(3), 0, None);
        s.on_timeout(F, t(19));
        let b = s.breakdown(F, t(19)).unwrap();
        assert_eq!(b[SpanState::TimedOut as usize], Duration::from_micros(16));
        assert_eq!(b[SpanState::Idle as usize], Duration::ZERO);
    }

    #[test]
    fn log_capacity_bounds_and_counts_drops() {
        let mut s = Spans::disabled();
        s.enable(2);
        let t = Time::from_micros;
        // Alternate states so no merges happen.
        for i in 0..6u64 {
            let st = if i % 2 == 0 {
                SpanState::Queued
            } else {
                SpanState::Serializing
            };
            s.set_state(F, st, t(i), 0, None);
        }
        assert_eq!(s.flow_spans(F).len(), 2);
        assert!(s.dropped_spans() > 0);
    }

    #[test]
    fn sentinel_flow_ids_are_ignored() {
        let mut s = Spans::disabled();
        s.enable(4);
        s.set_state(FlowId(u64::MAX), SpanState::Queued, Time::ZERO, 0, None);
        assert!(s.breakdown(FlowId(u64::MAX), Time::ZERO).is_none());
        assert!(s.dropped_spans() > 0);
    }

    #[test]
    fn congestion_tree_finds_root_and_victim() {
        let mut s = Spans::disabled();
        s.enable(16);
        let t = Time::from_micros;
        // Switch 10 pauses switch 11 first; 11 then pauses host 12.
        let edge = |at, from: usize, to: usize, pause| PauseEdge {
            at,
            from: NodeId(from),
            from_port: PortId(1),
            to: NodeId(to),
            to_port: PortId(2),
            class: 3,
            pause,
            storm: false,
            depth: 200_000,
            threshold: 180_000,
        };
        s.record_pause_edge(edge(t(5), 10, 11, true));
        s.record_pause_edge(edge(t(9), 11, 12, true));
        s.record_pause_edge(edge(t(30), 10, 11, false));
        s.set_state(
            FlowId(0),
            SpanState::PauseBlocked,
            t(9),
            11,
            Some((NodeId(11), PortId(1))),
        );
        s.set_state(FlowId(0), SpanState::Idle, t(21), 0, None);
        let tree = s.congestion_tree(t(40));
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].node, NodeId(10));
        assert_eq!(tree.roots[0].port, PortId(1));
        assert_eq!(tree.edges.len(), 2);
        assert_eq!(tree.victims.len(), 1);
        assert_eq!(tree.victims[0].flow, FlowId(0));
        assert_eq!(tree.victims[0].pause_blocked, Duration::from_micros(12));
        assert_eq!(tree.victims[0].origin, Some((NodeId(11), PortId(1))));
        // JSON form renders deterministically.
        let a = tree.to_json().render();
        let b = s.congestion_tree(t(40)).to_json().render();
        assert_eq!(a, b);
    }

    #[test]
    fn chrome_trace_is_deterministic_and_well_formed() {
        let mut s = Spans::disabled();
        s.enable(16);
        let t = Time::from_micros;
        s.set_state(F, SpanState::Serializing, t(1), 0, None);
        s.set_state(F, SpanState::Idle, t(2), 0, None);
        s.record_hop(HopSpan {
            flow: F,
            node: NodeId(4),
            port: PortId(0),
            enqueued: t(1),
            start: t(2),
            end: t(3),
        });
        let a = s.chrome_trace(t(5)).render();
        let b = s.chrome_trace(t(5)).render();
        assert_eq!(a, b);
        assert!(a.starts_with('{'));
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"ph\": \"X\""));
        assert!(a.contains("\"ph\": \"M\""));
    }
}
