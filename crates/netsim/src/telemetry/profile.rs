//! Event-loop self-profiler, compiled in behind `--features profile`.
//!
//! When the feature is off (the default) every method is an inlined
//! no-op and [`Profiler::enabled`] is `const false`, so the event loop's
//! profiling hooks fold away entirely. When on, the profiler counts
//! events processed per [`crate::event::Event`] kind, accumulates
//! wall-clock time per kind, and tracks total run wall-clock.
//!
//! Profile numbers come from the **host clock** ([`std::time::Instant`])
//! and are therefore NOT deterministic — they are reported in the JSON
//! run reports under a separate `profile` section that determinism
//! checks must run without (the CI byte-diff job builds without this
//! feature).

use super::json::Json;
#[cfg(feature = "profile")]
use crate::event::EVENT_KIND_NAMES;

/// Number of event kinds tracked (mirrors
/// [`crate::event::EVENT_KIND_NAMES`]).
#[cfg(feature = "profile")]
const KINDS: usize = EVENT_KIND_NAMES.len();

/// Opaque timestamp returned by [`Profiler::mark`]. Zero-sized when
/// profiling is compiled out.
#[cfg(feature = "profile")]
pub type ProfMark = std::time::Instant;
/// Opaque timestamp returned by [`Profiler::mark`]. Zero-sized when
/// profiling is compiled out.
#[cfg(not(feature = "profile"))]
pub type ProfMark = ();

#[cfg(feature = "profile")]
#[derive(Debug, Clone)]
struct ProfState {
    events_by_kind: [u64; KINDS],
    wall_by_kind: [std::time::Duration; KINDS],
    started: std::time::Instant,
}

/// Per-run event-loop profiler. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    #[cfg(feature = "profile")]
    state: Option<ProfState>,
}

impl Profiler {
    /// A fresh profiler (starts its run clock when built with the
    /// feature).
    pub fn new() -> Profiler {
        #[cfg(feature = "profile")]
        {
            Profiler {
                state: Some(ProfState {
                    events_by_kind: [0; KINDS],
                    wall_by_kind: [std::time::Duration::ZERO; KINDS],
                    started: std::time::Instant::now(),
                }),
            }
        }
        #[cfg(not(feature = "profile"))]
        {
            Profiler {}
        }
    }

    /// Whether profiling is compiled in. `const`, so guarded code folds
    /// away without the feature.
    #[inline]
    pub const fn enabled() -> bool {
        cfg!(feature = "profile")
    }

    /// Takes a timestamp before dispatching an event.
    #[inline]
    pub fn mark(&self) -> ProfMark {
        #[cfg(feature = "profile")]
        {
            std::time::Instant::now()
        }
    }

    /// Attributes the time since `mark` to event kind `kind`
    /// (an index from [`crate::event::Event::kind_index`]).
    #[inline]
    pub fn on_event(&mut self, kind: usize, mark: ProfMark) {
        #[cfg(feature = "profile")]
        if let Some(s) = &mut self.state {
            s.events_by_kind[kind] += 1;
            s.wall_by_kind[kind] += mark.elapsed();
        }
        #[cfg(not(feature = "profile"))]
        let _ = (kind, mark);
    }

    /// The profile report as JSON, or `None` when compiled out.
    /// `peak_pending` is the event queue's high-water mark (tracked by
    /// [`crate::event::EventQueue`] under the same feature).
    pub fn report(&self, peak_pending: usize) -> Option<Json> {
        #[cfg(feature = "profile")]
        {
            let s = self.state.as_ref()?;
            let mut by_kind = Json::obj(vec![]);
            for (i, name) in EVENT_KIND_NAMES.iter().enumerate() {
                by_kind.push(
                    name,
                    Json::obj(vec![
                        ("events", Json::UInt(s.events_by_kind[i])),
                        (
                            "wall_us",
                            Json::Float(s.wall_by_kind[i].as_secs_f64() * 1e6),
                        ),
                    ]),
                );
            }
            Some(Json::obj(vec![
                ("events_by_kind", by_kind),
                ("peak_pending_events", Json::UInt(peak_pending as u64)),
                (
                    "run_wall_us",
                    Json::Float(s.started.elapsed().as_secs_f64() * 1e6),
                ),
            ]))
        }
        #[cfg(not(feature = "profile"))]
        {
            let _ = peak_pending;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_matches_feature() {
        let mut p = Profiler::new();
        // `m` is `()` without the profile feature.
        #[allow(clippy::let_unit_value)]
        let m = p.mark();
        p.on_event(0, m);
        if Profiler::enabled() {
            let r = p.report(3).expect("report present with feature");
            let text = r.render();
            assert!(text.contains("\"peak_pending_events\": 3"));
            assert!(text.contains("\"events_by_kind\""));
        } else {
            assert!(p.report(3).is_none());
        }
    }
}
