//! Dependency-free single-file HTML + inline-SVG dashboards.
//!
//! A [`Dashboard`] is a title, a few key/value facts, and a list of
//! panels — line charts over [`timeline`](super::timeline) tracks,
//! horizontal stacked bars (span attribution), and plain key/value
//! tables. [`Dashboard::render`] emits one self-contained HTML file:
//! no scripts, no external assets, loadable from disk offline.
//!
//! The render is a **pure function** of the panel data with fixed
//! decimal formatting everywhere, so a dashboard built from a
//! deterministic run is byte-identical across machines and
//! `REPRO_THREADS` settings — the CI `dash-determinism` job double-runs
//! `repro <id> --dash` and `cmp`s the output, and a golden-file test
//! pins the exact bytes for a small fixture (`tests/timeline.rs`).

use std::fmt::Write as _;

/// One plotted series: a label and `(x, y)` points. `x` is in
/// microseconds of simulation time.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points as `(t_us, value)`.
    pub points: Vec<(f64, f64)>,
}

/// Panel body variants.
#[derive(Debug, Clone)]
enum Body {
    /// A line chart: y-axis label plus one polyline per series.
    Chart {
        y_label: String,
        series: Vec<Series>,
    },
    /// Horizontal 100%-stacked bars: one row per entity, one colored
    /// segment per category.
    Stacked {
        categories: Vec<String>,
        rows: Vec<(String, Vec<f64>)>,
    },
    /// A key/value table.
    Table { rows: Vec<(String, String)> },
}

/// One titled panel of a [`Dashboard`].
#[derive(Debug, Clone)]
struct Panel {
    title: String,
    body: Body,
}

/// A renderable dashboard. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    title: String,
    facts: Vec<(String, String)>,
    panels: Vec<Panel>,
}

/// Line/segment color palette (cycled when a panel has more series).
const PALETTE: [&str; 8] = [
    "#2563eb", "#dc2626", "#16a34a", "#9333ea", "#ea580c", "#0891b2", "#ca8a04", "#64748b",
];

/// Chart geometry: total size and margins around the plot area.
const W: f64 = 760.0;
const H: f64 = 220.0;
const ML: f64 = 66.0;
const MR: f64 = 14.0;
const MT: f64 = 12.0;
const MB: f64 = 30.0;

/// Fixed-decimal number for labels: up to 3 decimals, trailing zeros
/// trimmed. Deterministic (no locale, no shortest-round-trip float
/// formatting).
fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let mut s = format!("{v:.3}");
    while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
        s.pop();
    }
    if s == "-0" {
        s = "0".to_string();
    }
    s
}

/// SVG coordinate: two fixed decimals.
fn coord(v: f64) -> String {
    format!("{v:.2}")
}

/// Minimal HTML/attribute escaping for labels and titles.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// A "nice" tick step for a range: 1/2/5 × 10^k covering `range / 5`.
fn nice_step(range: f64) -> f64 {
    if range <= 0.0 || !range.is_finite() {
        return 1.0;
    }
    let raw = range / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let factor = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    factor * mag
}

impl Dashboard {
    /// A new dashboard with the given page title.
    pub fn new(title: &str) -> Dashboard {
        Dashboard {
            title: title.to_string(),
            ..Dashboard::default()
        }
    }

    /// Adds a key/value fact shown under the page title.
    pub fn fact(&mut self, key: &str, value: &str) {
        self.facts.push((key.to_string(), value.to_string()));
    }

    /// Adds a line-chart panel. Series render in the given order with
    /// the fixed palette.
    pub fn chart(&mut self, title: &str, y_label: &str, series: Vec<Series>) {
        self.panels.push(Panel {
            title: title.to_string(),
            body: Body::Chart {
                y_label: y_label.to_string(),
                series,
            },
        });
    }

    /// Adds a 100%-stacked horizontal-bar panel: each row is normalized
    /// to its own total (rows with an all-zero total are skipped).
    pub fn stacked(&mut self, title: &str, categories: Vec<String>, rows: Vec<(String, Vec<f64>)>) {
        self.panels.push(Panel {
            title: title.to_string(),
            body: Body::Stacked { categories, rows },
        });
    }

    /// Adds a key/value table panel.
    pub fn table(&mut self, title: &str, rows: Vec<(String, String)>) {
        self.panels.push(Panel {
            title: title.to_string(),
            body: Body::Table { rows },
        });
    }

    /// Number of panels added so far.
    pub fn panel_count(&self) -> usize {
        self.panels.len()
    }

    /// Renders the complete single-file HTML document.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        let _ = writeln!(out, "<title>{}</title>", esc(&self.title));
        out.push_str(
            "<style>\n\
             body{font:14px/1.45 system-ui,sans-serif;margin:24px;color:#111;background:#fff}\n\
             h1{font-size:20px;margin:0 0 4px}\n\
             h2{font-size:15px;margin:18px 0 6px}\n\
             .facts{color:#555;margin:0 0 12px}\n\
             .facts span{margin-right:18px}\n\
             svg{border:1px solid #e5e7eb;background:#fcfcfd}\n\
             table{border-collapse:collapse}\n\
             td{border:1px solid #e5e7eb;padding:3px 10px}\n\
             .legend span{margin-right:14px;font-size:12px}\n\
             </style>\n</head>\n<body>\n",
        );
        let _ = writeln!(out, "<h1>{}</h1>", esc(&self.title));
        if !self.facts.is_empty() {
            out.push_str("<p class=\"facts\">");
            for (k, v) in &self.facts {
                let _ = write!(out, "<span><b>{}</b>: {}</span>", esc(k), esc(v));
            }
            out.push_str("</p>\n");
        }
        for panel in &self.panels {
            let _ = writeln!(out, "<h2>{}</h2>", esc(&panel.title));
            match &panel.body {
                Body::Chart { y_label, series } => self.render_chart(&mut out, y_label, series),
                Body::Stacked { categories, rows } => {
                    self.render_stacked(&mut out, categories, rows)
                }
                Body::Table { rows } => {
                    out.push_str("<table>\n");
                    for (k, v) in rows {
                        let _ = writeln!(out, "<tr><td>{}</td><td>{}</td></tr>", esc(k), esc(v));
                    }
                    out.push_str("</table>\n");
                }
            }
        }
        out.push_str("</body>\n</html>\n");
        out
    }

    fn render_chart(&self, out: &mut String, y_label: &str, series: &[Series]) {
        let points: usize = series.iter().map(|s| s.points.len()).sum();
        if points == 0 {
            out.push_str("<p><i>no data</i></p>\n");
            return;
        }
        // Data bounds. x in µs; switch the axis to ms past 100 000 µs.
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (0.0f64, f64::NEG_INFINITY);
        for s in series {
            for &(x, y) in &s.points {
                x0 = x0.min(x);
                x1 = x1.max(x);
                y0 = y0.min(y);
                y1 = y1.max(y);
            }
        }
        // `<=` also catches the NaN/empty case (both bounds infinite).
        if x1 <= x0 {
            x1 = x0 + 1.0;
        }
        if y1 <= y0 {
            y1 = y0 + 1.0;
        }
        let ms_axis = x1 >= 100_000.0;
        let (xdiv, x_label) = if ms_axis {
            (1000.0, "t (ms)")
        } else {
            (1.0, "t (\u{b5}s)")
        };
        let pw = W - ML - MR;
        let ph = H - MT - MB;
        let sx = |x: f64| ML + (x - x0) / (x1 - x0) * pw;
        let sy = |y: f64| MT + ph - (y - y0) / (y1 - y0) * ph;
        let _ = writeln!(
            out,
            "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\" \
             xmlns=\"http://www.w3.org/2000/svg\">"
        );
        // Gridlines + y ticks.
        let ystep = nice_step(y1 - y0);
        let mut ty = (y0 / ystep).ceil() * ystep;
        while ty <= y1 + 1e-9 {
            let y = sy(ty);
            let _ = writeln!(
                out,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#eef0f3\"/>",
                coord(ML),
                coord(y),
                coord(W - MR),
                coord(y)
            );
            let _ = writeln!(
                out,
                "<text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"#555\" \
                 text-anchor=\"end\">{}</text>",
                coord(ML - 6.0),
                coord(y + 4.0),
                fnum(ty)
            );
            ty += ystep;
        }
        // X ticks.
        let xstep = nice_step((x1 - x0) / xdiv) * xdiv;
        let mut tx = (x0 / xstep).ceil() * xstep;
        while tx <= x1 + 1e-9 {
            let x = sx(tx);
            let _ = writeln!(
                out,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#d7dade\"/>",
                coord(x),
                coord(MT + ph),
                coord(x),
                coord(MT + ph + 4.0)
            );
            let _ = writeln!(
                out,
                "<text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"#555\" \
                 text-anchor=\"middle\">{}</text>",
                coord(x),
                coord(MT + ph + 16.0),
                fnum(tx / xdiv)
            );
            tx += xstep;
        }
        // Axes.
        let _ = writeln!(
            out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#111\"/>",
            coord(ML),
            coord(MT),
            coord(ML),
            coord(MT + ph)
        );
        let _ = writeln!(
            out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#111\"/>",
            coord(ML),
            coord(MT + ph),
            coord(W - MR),
            coord(MT + ph)
        );
        // Axis labels.
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"#333\" \
             text-anchor=\"middle\">{}</text>",
            coord(ML + pw / 2.0),
            coord(H - 4.0),
            esc(x_label)
        );
        let _ = writeln!(
            out,
            "<text x=\"12\" y=\"{}\" font-size=\"11\" fill=\"#333\" text-anchor=\"middle\" \
             transform=\"rotate(-90 12 {})\">{}</text>",
            coord(MT + ph / 2.0),
            coord(MT + ph / 2.0),
            esc(y_label)
        );
        // Polylines.
        for (i, s) in series.iter().enumerate() {
            if s.points.is_empty() {
                continue;
            }
            let color = PALETTE[i % PALETTE.len()];
            let mut pts = String::new();
            for &(x, y) in &s.points {
                let _ = write!(pts, "{},{} ", coord(sx(x)), coord(sy(y)));
            }
            let _ = writeln!(
                out,
                "<polyline fill=\"none\" stroke=\"{}\" stroke-width=\"1.5\" points=\"{}\"/>",
                color,
                pts.trim_end()
            );
        }
        out.push_str("</svg>\n");
        // Legend under the chart.
        out.push_str("<p class=\"legend\">");
        for (i, s) in series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let _ = write!(
                out,
                "<span style=\"color:{}\">\u{25ac} {}</span>",
                color,
                esc(&s.label)
            );
        }
        out.push_str("</p>\n");
    }

    fn render_stacked(&self, out: &mut String, categories: &[String], rows: &[(String, Vec<f64>)]) {
        let rows: Vec<&(String, Vec<f64>)> = rows
            .iter()
            .filter(|(_, vs)| vs.iter().sum::<f64>() > 0.0)
            .collect();
        if rows.is_empty() {
            out.push_str("<p><i>no data</i></p>\n");
            return;
        }
        let bar_h = 18.0;
        let gap = 8.0;
        let label_w = 110.0;
        let bar_w = 560.0;
        let h = rows.len() as f64 * (bar_h + gap) + gap;
        let w = label_w + bar_w + 20.0;
        let _ = writeln!(
            out,
            "<svg width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\" \
             xmlns=\"http://www.w3.org/2000/svg\">",
            coord(w),
            coord(h),
            coord(w),
            coord(h)
        );
        for (r, (label, vals)) in rows.iter().enumerate() {
            let y = gap + r as f64 * (bar_h + gap);
            let total: f64 = vals.iter().sum();
            let _ = writeln!(
                out,
                "<text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"#333\" \
                 text-anchor=\"end\">{}</text>",
                coord(label_w - 6.0),
                coord(y + bar_h - 5.0),
                esc(label)
            );
            let mut x = label_w;
            for (c, &v) in vals.iter().enumerate() {
                let frac = v / total;
                let seg = frac * bar_w;
                if seg > 0.0 {
                    let _ = writeln!(
                        out,
                        "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"/>",
                        coord(x),
                        coord(y),
                        coord(seg),
                        coord(bar_h),
                        PALETTE[c % PALETTE.len()]
                    );
                }
                x += seg;
            }
        }
        out.push_str("</svg>\n");
        out.push_str("<p class=\"legend\">");
        for (c, cat) in categories.iter().enumerate() {
            let _ = write!(
                out,
                "<span style=\"color:{}\">\u{25a0} {}</span>",
                PALETTE[c % PALETTE.len()],
                esc(cat)
            );
        }
        out.push_str("</p>\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dashboard {
        let mut d = Dashboard::new("test <run>");
        d.fact("seed", "42");
        d.chart(
            "queue depth",
            "KB",
            vec![Series {
                label: "sw0:p2 & peers".into(),
                points: vec![(0.0, 0.0), (50.0, 12.5), (100.0, 7.25)],
            }],
        );
        d.stacked(
            "attribution",
            vec!["send".into(), "pause".into()],
            vec![
                ("flow 0".into(), vec![3.0, 1.0]),
                ("zero".into(), vec![0.0, 0.0]),
            ],
        );
        d.table("totals", vec![("pause_tx".into(), "7".into())]);
        d
    }

    #[test]
    fn render_is_deterministic_and_escaped() {
        let a = small().render();
        let b = small().render();
        assert_eq!(a, b);
        assert!(a.contains("test &lt;run&gt;"), "title is escaped");
        assert!(a.contains("sw0:p2 &amp; peers"), "labels are escaped");
        assert!(a.starts_with("<!DOCTYPE html>"));
        assert!(a.ends_with("</html>\n"));
        assert!(!a.contains("<script"), "no scripts: single static file");
    }

    #[test]
    fn empty_panels_render_placeholders() {
        let mut d = Dashboard::new("empty");
        d.chart("nothing", "y", vec![]);
        d.stacked("zeros", vec!["a".into()], vec![("r".into(), vec![0.0])]);
        let html = d.render();
        assert_eq!(html.matches("<i>no data</i>").count(), 2);
        assert_eq!(d.panel_count(), 2);
    }

    #[test]
    fn number_formatting_is_fixed() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(-0.0), "0");
        assert_eq!(fnum(12.5), "12.5");
        assert_eq!(fnum(1.2345), "1.234");
        assert_eq!(fnum(40.0), "40");
        assert_eq!(fnum(f64::NAN), "0");
        assert_eq!(coord(8.12543), "8.13");
    }

    #[test]
    fn nice_steps_cover_common_ranges() {
        assert_eq!(nice_step(10.0), 2.0);
        assert_eq!(nice_step(50.0), 10.0);
        assert_eq!(nice_step(7.0), 2.0);
        assert_eq!(nice_step(0.4), 0.1);
        assert_eq!(nice_step(0.0), 1.0);
    }

    #[test]
    fn millisecond_axis_kicks_in_for_long_runs() {
        let mut d = Dashboard::new("long");
        d.chart(
            "q",
            "B",
            vec![Series {
                label: "s".into(),
                points: vec![(0.0, 1.0), (400_000.0, 2.0)],
            }],
        );
        assert!(d.render().contains("t (ms)"));
    }
}
