//! Allocation-free log2-bucket (HDR-style) histograms.
//!
//! A [`Histogram`] is a fixed array of 65 buckets: bucket 0 holds the
//! value 0, and bucket `b` (1 ≤ b ≤ 64) holds values in
//! `[2^(b-1), 2^b − 1]`. Recording a sample is a leading-zeros
//! instruction plus one array index — no hashing, no allocation — so the
//! simulator's packet path can feed a histogram per event. Exact `min`,
//! `max`, `count` and `sum` are tracked alongside the buckets, so the
//! mean is exact; percentiles are resolved to the *lower bound* of the
//! bucket containing the nearest-rank sample (≤ 2× relative error by
//! construction, which is plenty for queue-depth CDFs and latency
//! tails).

/// Number of log2 buckets: one for zero plus one per bit of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// A fixed-size log2-bucket histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Index of the bucket holding `v`: 0 for 0, else `64 − leading_zeros`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value bucket `i` can hold (its lower bound).
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile, resolved to the lower bound of the bucket
    /// containing that rank (`p` in `[0, 100]`; 0 when empty). Uses the
    /// same nearest-rank convention as [`crate::stats::percentile`].
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(NUM_BUCKETS - 1)
    }

    /// Nearest-rank percentile estimated by the **midpoint rule**: the
    /// rank's bucket `[2^(b−1), 2^b − 1]` is resolved to its midpoint,
    /// then clamped to the observed `[min, max]`.
    ///
    /// **Error bound.** The true sample lies somewhere in the bucket, so
    /// the midpoint is off by at most half the bucket width — for bucket
    /// `b ≥ 1` that is `(2^(b−1) − 1) / 2 < 2^(b−2)`, i.e. **< 50%
    /// relative error**, halving the ≤ 2× worst case of the lower-bound
    /// rule ([`Histogram::percentile`]). The clamp makes degenerate
    /// cases exact: an empty histogram reports 0, a single-valued
    /// histogram reports that value, and `p = 0` / `p = 100` report
    /// `min` / `max` whenever the rank resolves to the extreme buckets.
    /// Bucket 0 (the value 0) has zero width and is always exact.
    pub fn percentile_midpoint(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        let mut bucket = NUM_BUCKETS - 1;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                bucket = i;
                break;
            }
        }
        let lo = bucket_floor(bucket);
        // Inclusive upper bound of the bucket: 2^b − 1 (u64::MAX for the
        // top bucket), 0 for bucket 0.
        let hi = if bucket == 0 {
            0
        } else if bucket == NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        };
        let mid = lo as f64 + (hi - lo) as f64 / 2.0;
        mid.clamp(self.min() as f64, self.max() as f64)
    }

    /// The non-empty buckets, as `(lower_bound, count)` pairs in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_index(bucket_floor(i)),
                i,
                "floor lands in its bucket"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn exact_stats_approximate_percentiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
        // Nearest rank 50% of 5 = rank 3 = sample 5, bucket [4, 7] → 4.
        assert_eq!(h.percentile(50.0), 4);
        assert_eq!(h.percentile(0.0), 0);
        // 1000 lives in [512, 1023].
        assert_eq!(h.percentile(100.0), 512);
    }

    #[test]
    fn midpoint_percentile_empty_and_single() {
        let h = Histogram::new();
        assert_eq!(h.percentile_midpoint(50.0), 0.0, "empty → 0");
        let mut one = Histogram::new();
        one.observe(100);
        // One sample: bucket [64, 127] has midpoint 95.5, but the clamp
        // to [min, max] makes the single-valued case exact.
        assert_eq!(one.percentile_midpoint(0.0), 100.0);
        assert_eq!(one.percentile_midpoint(50.0), 100.0);
        assert_eq!(one.percentile_midpoint(100.0), 100.0);
        let mut zero = Histogram::new();
        zero.observe(0);
        assert_eq!(zero.percentile_midpoint(50.0), 0.0, "bucket 0 is exact");
    }

    #[test]
    fn midpoint_percentile_bucket_edges() {
        // Samples at both edges of bucket [8, 15]: the midpoint 11.5
        // sits within 50% relative error of either edge.
        let mut h = Histogram::new();
        h.observe(8);
        h.observe(15);
        let est = h.percentile_midpoint(50.0);
        assert_eq!(est, 11.5);
        for truth in [8.0f64, 15.0] {
            assert!(
                (est - truth).abs() / truth < 0.5,
                "≤50% relative error at bucket edge {truth}"
            );
        }
        // Power-of-two sample: 16 opens bucket [16, 31], midpoint 23.5.
        let mut p = Histogram::new();
        p.observe(16);
        p.observe(31);
        assert_eq!(p.percentile_midpoint(50.0), 23.5);
        // The clamp keeps the estimate inside the observed range even
        // when the rank bucket is wider than the data.
        let mut c = Histogram::new();
        c.observe(17);
        c.observe(18);
        let est = c.percentile_midpoint(99.0);
        assert!((17.0..=18.0).contains(&est));
    }

    #[test]
    fn midpoint_beats_floor_on_upper_half_of_bucket() {
        // 1000 lives in [512, 1023]: floor rule says 512 (−49%), the
        // clamped midpoint says min(767.5, max)=767.5 (−23%).
        let mut h = Histogram::new();
        h.observe(1000);
        h.observe(1);
        assert_eq!(h.percentile(100.0), 512);
        assert_eq!(h.percentile_midpoint(100.0), 767.5);
    }

    #[test]
    fn buckets_enumerate_in_order() {
        let mut h = Histogram::new();
        h.observe(3);
        h.observe(3);
        h.observe(64);
        let b: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(b, vec![(2, 2), (64, 1)]);
    }
}
