//! Flight recorder: a bounded ring of recent trace events per node,
//! dumped automatically when something goes wrong.
//!
//! The recorder piggybacks on the [`crate::trace::TraceEvent`] stream:
//! when enabled, every trace event is also appended to a small ring
//! owned by the event's node. When the sanitize auditor records a
//! violation, or a QP is torn down after exhausting retries, the ring of
//! the offending node is snapshotted into a [`FlightDump`] — turning
//! "audit failed at t=1.2ms" into the last N things that node did.
//!
//! Recording costs one branch when disabled (the default) and an index +
//! ring write when enabled; dumps are cold and capped so a violation
//! storm cannot allocate without bound.

use crate::event::NodeId;
use crate::trace::TraceEvent;
use crate::units::Time;

/// Maximum number of dumps retained per run. Violation storms beyond
/// this keep counting in the auditor but stop snapshotting.
pub const MAX_DUMPS: usize = 8;

#[derive(Debug, Clone, Default)]
struct NodeRing {
    events: Vec<TraceEvent>,
    head: usize,
}

impl NodeRing {
    fn record(&mut self, capacity: usize, ev: TraceEvent) {
        if self.events.len() < capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % capacity;
        }
    }

    /// Events oldest-first.
    fn snapshot(&self) -> Vec<TraceEvent> {
        let (older, newer) = self.events.split_at(self.head);
        newer.iter().chain(older.iter()).copied().collect()
    }
}

/// One snapshot of a node's recent history, taken at a trigger point.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Simulation time of the trigger.
    pub at: Time,
    /// The node whose ring was dumped.
    pub node: NodeId,
    /// Why the dump was taken (e.g. the violation kind, or
    /// "qp_teardown flow=3").
    pub reason: String,
    /// The node's recent trace events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Per-node bounded rings of recent trace events.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    rings: Vec<NodeRing>,
    dumps: Vec<FlightDump>,
}

impl FlightRecorder {
    /// A disabled recorder for `n_nodes` nodes. [`FlightRecorder::record`]
    /// is a single branch until [`FlightRecorder::enable`] is called.
    pub fn new(n_nodes: usize) -> FlightRecorder {
        FlightRecorder {
            enabled: false,
            capacity: 0,
            rings: vec![NodeRing::default(); n_nodes],
            dumps: Vec::new(),
        }
    }

    /// Enables recording with a ring of `capacity` events per node.
    /// Re-enabling clears previously buffered events (same contract as
    /// [`crate::trace::Tracer`] re-enable).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        self.enabled = true;
        self.capacity = capacity;
        for ring in &mut self.rings {
            ring.events.clear();
            ring.head = 0;
        }
    }

    /// Whether the recorder is currently buffering events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event to its node's ring. One branch when disabled.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(ring) = self.rings.get_mut(ev.node.0) {
            ring.record(self.capacity, ev);
        }
    }

    /// Snapshots `node`'s ring into a [`FlightDump`]. No-op when the
    /// recorder is disabled or [`MAX_DUMPS`] snapshots already exist.
    pub fn dump(&mut self, node: NodeId, at: Time, reason: &str) {
        if !self.enabled || self.dumps.len() >= MAX_DUMPS {
            return;
        }
        let events = match self.rings.get(node.0) {
            Some(ring) => ring.snapshot(),
            None => Vec::new(),
        };
        self.dumps.push(FlightDump {
            at,
            node,
            reason: reason.to_string(),
            events,
        });
    }

    /// The dumps taken so far, in trigger order.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::trace::TraceKind;

    fn ev(node: usize, detail: u64) -> TraceEvent {
        TraceEvent {
            at: Time::from_nanos(detail),
            node: NodeId(node),
            flow: FlowId(u64::MAX),
            kind: TraceKind::Delivered,
            detail,
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut fr = FlightRecorder::new(2);
        fr.record(ev(0, 1));
        fr.dump(NodeId(0), Time::ZERO, "why");
        assert!(fr.dumps().is_empty());
        assert!(!fr.is_enabled());
    }

    #[test]
    fn ring_keeps_most_recent_per_node() {
        let mut fr = FlightRecorder::new(2);
        fr.enable(3);
        for i in 0..5 {
            fr.record(ev(0, i));
        }
        fr.record(ev(1, 100));
        fr.dump(NodeId(0), Time::ZERO, "node0");
        fr.dump(NodeId(1), Time::ZERO, "node1");
        let d0 = &fr.dumps()[0];
        let kept: Vec<u64> = d0.events.iter().map(|e| e.detail).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest-first, last 3 of 5");
        assert_eq!(fr.dumps()[1].events.len(), 1);
    }

    #[test]
    fn dumps_are_capped() {
        let mut fr = FlightRecorder::new(1);
        fr.enable(2);
        for i in 0..(MAX_DUMPS + 3) {
            fr.dump(NodeId(0), Time::ZERO, &format!("trigger {i}"));
        }
        assert_eq!(fr.dumps().len(), MAX_DUMPS);
    }

    #[test]
    fn reenable_clears_buffered_events() {
        let mut fr = FlightRecorder::new(1);
        fr.enable(4);
        fr.record(ev(0, 1));
        fr.enable(4);
        fr.dump(NodeId(0), Time::ZERO, "after re-enable");
        assert!(fr.dumps()[0].events.is_empty());
    }

    #[test]
    fn out_of_range_node_is_ignored() {
        let mut fr = FlightRecorder::new(1);
        fr.enable(2);
        fr.record(ev(5, 1));
        fr.dump(NodeId(5), Time::ZERO, "ghost");
        assert!(fr.dumps()[0].events.is_empty());
    }
}
