//! Metrics registry: named counters, gauges and histograms behind
//! `Copy` handles.
//!
//! Metrics are registered **once** (at network build time) by name; each
//! registration returns a tiny `Copy` id that indexes a plain `Vec`.
//! The hot path — the event loop and the packet pipeline — only ever
//! touches metrics through those ids, so an update is one array index
//! and one add: no hashing, no string comparison, no allocation.
//! Name-based lookup ([`Registry::counter_value`] etc.) walks the name
//! vector linearly and is reserved for cold report-building code.

use super::hist::Histogram;

/// Handle to a registered counter. One array index to update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle to a registered gauge. One array index to update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Handle to a registered histogram. One array index to update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) usize);

/// The registry backing all named metrics of one simulation.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<u64>,
    hist_names: Vec<&'static str>,
    hists: Vec<Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or re-finds) a counter by name. Cold path.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|&n| n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name);
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or re-finds) a gauge by name. Cold path.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|&n| n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name);
        self.gauges.push(0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or re-finds) a histogram by name. Cold path.
    pub fn histogram(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hist_names.iter().position(|&n| n == name) {
            return HistId(i);
        }
        self.hist_names.push(name);
        self.hists.push(Histogram::new());
        HistId(self.hists.len() - 1)
    }

    /// Increments a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0] += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Sets a gauge to `v`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0] = v;
    }

    /// Raises a gauge to `v` if `v` exceeds its current value
    /// (high-water-mark semantics).
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, v: u64) {
        if v > self.gauges[id.0] {
            self.gauges[id.0] = v;
        }
    }

    /// Records a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].observe(v);
    }

    /// Current value of a counter handle.
    #[inline]
    pub fn counter_get(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Current value of a gauge handle.
    #[inline]
    pub fn gauge_get(&self, id: GaugeId) -> u64 {
        self.gauges[id.0]
    }

    /// The histogram behind a handle.
    #[inline]
    pub fn hist_get(&self, id: HistId) -> &Histogram {
        &self.hists[id.0]
    }

    /// Cold name-based handle lookup (no registration): the hook for
    /// binding an existing counter to a sampler track once, then reading
    /// it by id on the hot path.
    pub fn counter_id(&self, name: &str) -> Option<CounterId> {
        let i = self.counter_names.iter().position(|&n| n == name)?;
        Some(CounterId(i))
    }

    /// Cold name-based counter lookup for report code and tests.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let i = self.counter_names.iter().position(|&n| n == name)?;
        Some(self.counters[i])
    }

    /// Cold name-based gauge lookup for report code and tests.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        let i = self.gauge_names.iter().position(|&n| n == name)?;
        Some(self.gauges[i])
    }

    /// Cold name-based histogram lookup for report code and tests.
    pub fn hist_by_name(&self, name: &str) -> Option<&Histogram> {
        let i = self.hist_names.iter().position(|&n| n == name)?;
        Some(&self.hists[i])
    }

    /// All counters as `(name, value)` in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counter_names
            .iter()
            .copied()
            .zip(self.counters.iter().copied())
    }

    /// All gauges as `(name, value)` in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauge_names
            .iter()
            .copied()
            .zip(self.gauges.iter().copied())
    }

    /// All histograms as `(name, histogram)` in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hist_names.iter().copied().zip(self.hists.iter())
    }
}

/// Handles for every metric the simulator itself maintains.
///
/// Registered once by [`Metrics::standard`]; the simulator's hot paths
/// copy these ids out and update through them.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names mirror the metric names one-to-one
pub struct WellKnown {
    pub ecn_marks: CounterId,
    pub pause_tx: CounterId,
    pub pause_rx: CounterId,
    pub resume_tx: CounterId,
    pub drops_pool: CounterId,
    pub drops_lossy: CounterId,
    pub fault_drops: CounterId,
    pub forwarded: CounterId,
    pub retx_pkts: CounterId,
    pub timeouts: CounterId,
    pub nacks_sent: CounterId,
    pub cnps_sent: CounterId,
    pub watchdog_trips: CounterId,
    pub watchdog_restores: CounterId,
    pub qp_teardowns: CounterId,
    pub completions: CounterId,
    pub link_transitions: CounterId,
    pub storm_pauses: CounterId,
    pub convergence_checks: CounterId,
    pub convergence_violations: CounterId,
    pub peak_buffer_bytes: GaugeId,
    pub queue_depth_bytes: HistId,
    pub cnp_interarrival_us: HistId,
    pub fct_us: HistId,
    pub pause_duration_us: HistId,
}

/// A [`Registry`] plus the standard simulator handles.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// The backing registry. Public so experiments can register their own
    /// metrics and build reports.
    pub registry: Registry,
    /// Handles to the standard simulator metrics.
    pub h: WellKnown,
}

impl Metrics {
    /// Builds a registry pre-populated with every metric the simulator
    /// updates natively.
    pub fn standard() -> Metrics {
        let mut r = Registry::new();
        let h = WellKnown {
            ecn_marks: r.counter("ecn_marks"),
            pause_tx: r.counter("pause_tx"),
            pause_rx: r.counter("pause_rx"),
            resume_tx: r.counter("resume_tx"),
            drops_pool: r.counter("drops_pool"),
            drops_lossy: r.counter("drops_lossy"),
            fault_drops: r.counter("fault_drops"),
            forwarded: r.counter("forwarded"),
            retx_pkts: r.counter("retx_pkts"),
            timeouts: r.counter("timeouts"),
            nacks_sent: r.counter("nacks_sent"),
            cnps_sent: r.counter("cnps_sent"),
            watchdog_trips: r.counter("watchdog_trips"),
            watchdog_restores: r.counter("watchdog_restores"),
            qp_teardowns: r.counter("qp_teardowns"),
            completions: r.counter("completions"),
            link_transitions: r.counter("link_transitions"),
            storm_pauses: r.counter("storm_pauses"),
            convergence_checks: r.counter("convergence_checks"),
            convergence_violations: r.counter("convergence_violations"),
            peak_buffer_bytes: r.gauge("peak_buffer_bytes"),
            queue_depth_bytes: r.histogram("queue_depth_bytes"),
            cnp_interarrival_us: r.histogram("cnp_interarrival_us"),
            fct_us: r.histogram("fct_us"),
            pause_duration_us: r.histogram("pause_duration_us"),
        };
        Metrics { registry: r, h }
    }

    /// Increments a counter by 1 (hot path: one array index).
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.registry.inc(id);
    }

    /// Adds `n` to a counter (hot path: one array index).
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.registry.add(id, n);
    }

    /// Raises a gauge high-water mark (hot path: one array index).
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, v: u64) {
        self.registry.set_max(id, v);
    }

    /// Records a histogram sample (hot path: one array index).
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.registry.observe(id, v);
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedupes_by_name() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value("x"), Some(3));
        assert_eq!(r.counter_value("y"), None);
    }

    #[test]
    fn gauge_set_max_is_high_water() {
        let mut r = Registry::new();
        let g = r.gauge("depth");
        r.set_max(g, 10);
        r.set_max(g, 5);
        assert_eq!(r.gauge_value("depth"), Some(10));
        r.set(g, 3);
        assert_eq!(r.gauge_get(g), 3);
    }

    #[test]
    fn standard_metrics_have_unique_names() {
        let m = Metrics::standard();
        let names: Vec<&str> = m.registry.counters().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names.len(), sorted.len());
        assert_eq!(m.registry.counter_value("ecn_marks"), Some(0));
        assert!(m.registry.hist_by_name("fct_us").is_some());
    }

    #[test]
    fn histogram_handle_round_trip() {
        let mut r = Registry::new();
        let h = r.histogram("lat");
        r.observe(h, 7);
        r.observe(h, 9);
        assert_eq!(r.hist_get(h).count(), 2);
        assert_eq!(r.hist_by_name("lat").unwrap().max(), 9);
    }
}
