//! Deterministic JSON rendering, no external crates.
//!
//! The run reports written by the experiments binary must be
//! byte-identical across `REPRO_THREADS`, machines, and reruns, so this
//! module makes every formatting decision explicit:
//!
//! * object keys are rendered in sorted order regardless of insertion
//!   order;
//! * floats use Rust's shortest-round-trip `{}` formatting, with `.0`
//!   appended to integral values (so `3` renders as `3.0`, never `3`),
//!   `-0.0` normalized to `0.0`, and non-finite values rendered as
//!   `null` (JSON has no NaN/Inf);
//! * output is pretty-printed with two-space indentation and `\n` line
//!   endings only.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (covers `u64` values above `i64::MAX`).
    UInt(u64),
    /// A float, rendered per the module contract.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted at render time; duplicate keys keep
    /// their first occurrence.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Pushes a key/value pair onto an object.
    ///
    /// # Panics
    /// Panics if `self` is not [`Json::Obj`].
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::push on non-object"),
        }
    }

    /// Renders with sorted keys and 2-space indentation, ending in a
    /// single trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => out.push_str(&fmt_f64(*f)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0).then(a.cmp(&b)));
                out.push('{');
                let mut first = true;
                let mut last_key: Option<&str> = None;
                for &i in &order {
                    let (key, value) = &pairs[i];
                    if last_key == Some(key.as_str()) {
                        continue; // duplicate key: keep first occurrence
                    }
                    last_key = Some(key.as_str());
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deterministic float formatting: shortest round-trip representation,
/// forced to contain a `.` or exponent (`3` → `"3.0"`), `-0.0`
/// normalized to `"0.0"`, non-finite values rendered as `"null"`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let v = if v == 0.0 { 0.0 } else { v }; // normalize -0.0
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    s
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_render_sorted() {
        let j = Json::obj(vec![
            ("zeta", Json::UInt(1)),
            ("alpha", Json::UInt(2)),
            ("mid", Json::Null),
        ]);
        assert_eq!(
            j.render(),
            "{\n  \"alpha\": 2,\n  \"mid\": null,\n  \"zeta\": 1\n}\n"
        );
    }

    #[test]
    fn float_formatting_is_fixed() {
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(-0.0), "0.0");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(1e30), "1000000000000000000000000000000.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(-2.5), "-2.5");
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_structure_renders_stably() {
        let j = Json::obj(vec![
            ("arr", Json::Arr(vec![Json::UInt(1), Json::Bool(false)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(vec![])),
        ]);
        let expected = "{\n  \"arr\": [\n    1,\n    false\n  ],\n  \"empty_arr\": [],\n  \"empty_obj\": {}\n}\n";
        assert_eq!(j.render(), expected);
    }

    #[test]
    fn duplicate_keys_keep_first() {
        let j = Json::obj(vec![("k", Json::UInt(1)), ("k", Json::UInt(2))]);
        assert_eq!(j.render(), "{\n  \"k\": 1\n}\n");
    }
}
