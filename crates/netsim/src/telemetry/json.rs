//! Deterministic JSON rendering, no external crates.
//!
//! The run reports written by the experiments binary must be
//! byte-identical across `REPRO_THREADS`, machines, and reruns, so this
//! module makes every formatting decision explicit:
//!
//! * object keys are rendered in sorted order regardless of insertion
//!   order;
//! * floats use Rust's shortest-round-trip `{}` formatting, with `.0`
//!   appended to integral values (so `3` renders as `3.0`, never `3`),
//!   `-0.0` normalized to `0.0`, and non-finite values rendered as
//!   `null` (JSON has no NaN/Inf);
//! * output is pretty-printed with two-space indentation and `\n` line
//!   endings only.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (covers `u64` values above `i64::MAX`).
    UInt(u64),
    /// A float, rendered per the module contract.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted at render time; duplicate keys keep
    /// their first occurrence.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value from a `&str`.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Pushes a key/value pair onto an object.
    ///
    /// # Panics
    /// Panics if `self` is not [`Json::Obj`].
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::push on non-object"),
        }
    }

    /// Renders with sorted keys and 2-space indentation, ending in a
    /// single trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document (the inverse of [`Json::render`], accepting
    /// any standard JSON, not just this module's pretty-printed shape).
    /// Numbers without `.`/exponent parse as [`Json::UInt`] (or
    /// [`Json::Int`] when negative), everything else as [`Json::Float`] —
    /// matching what the renderer emits so case files round-trip exactly.
    /// Errors carry the byte offset of the first offending character.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object (first occurrence, matching the
    /// renderer's duplicate-key rule). `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer (or a
    /// non-negative signed one).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => out.push_str(&fmt_f64(*f)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0).then(a.cmp(&b)));
                out.push('{');
                let mut first = true;
                let mut last_key: Option<&str> = None;
                for &i in &order {
                    let (key, value) = &pairs[i];
                    if last_key == Some(key.as_str()) {
                        continue; // duplicate key: keep first occurrence
                    }
                    last_key = Some(key.as_str());
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON parser state (byte cursor into the input).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8 up to the next escape or quote.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so slicing on these boundaries is valid
            // UTF-8 (quotes/backslashes are never UTF-8 continuation bytes).
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not emitted by the renderer;
                            // map unpaired ones to U+FFFD rather than err.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("invalid integer '{text}' at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("invalid integer '{text}' at byte {start}"))
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deterministic float formatting: shortest round-trip representation,
/// forced to contain a `.` or exponent (`3` → `"3.0"`), `-0.0`
/// normalized to `"0.0"`, non-finite values rendered as `"null"`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let v = if v == 0.0 { 0.0 } else { v }; // normalize -0.0
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    s
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_render_sorted() {
        let j = Json::obj(vec![
            ("zeta", Json::UInt(1)),
            ("alpha", Json::UInt(2)),
            ("mid", Json::Null),
        ]);
        assert_eq!(
            j.render(),
            "{\n  \"alpha\": 2,\n  \"mid\": null,\n  \"zeta\": 1\n}\n"
        );
    }

    #[test]
    fn float_formatting_is_fixed() {
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(-0.0), "0.0");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(1e30), "1000000000000000000000000000000.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(-2.5), "-2.5");
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_structure_renders_stably() {
        let j = Json::obj(vec![
            ("arr", Json::Arr(vec![Json::UInt(1), Json::Bool(false)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(vec![])),
        ]);
        let expected = "{\n  \"arr\": [\n    1,\n    false\n  ],\n  \"empty_arr\": [],\n  \"empty_obj\": {}\n}\n";
        assert_eq!(j.render(), expected);
    }

    #[test]
    fn duplicate_keys_keep_first() {
        let j = Json::obj(vec![("k", Json::UInt(1)), ("k", Json::UInt(2))]);
        assert_eq!(j.render(), "{\n  \"k\": 1\n}\n");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let j = Json::obj(vec![
            (
                "arr",
                Json::Arr(vec![Json::UInt(1), Json::Bool(false), Json::Null]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(vec![])),
            ("neg", Json::Int(-42)),
            ("pi", Json::Float(3.5)),
            ("s", Json::Str("a\"b\\c\nd\u{1}tab\t".to_string())),
            ("u", Json::UInt(u64::MAX)),
        ]);
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(parsed, j);
        // Render → parse → render is a fixpoint.
        assert_eq!(parsed.render(), j.render());
    }

    #[test]
    fn parse_classifies_numbers() {
        let j = Json::parse("[0, 17, -3, 2.5, 1e3, -0.25]").unwrap();
        let arr = j.as_arr().unwrap();
        assert_eq!(arr[0], Json::UInt(0));
        assert_eq!(arr[1], Json::UInt(17));
        assert_eq!(arr[2], Json::Int(-3));
        assert_eq!(arr[3], Json::Float(2.5));
        assert_eq!(arr[4], Json::Float(1000.0));
        assert_eq!(arr[5], Json::Float(-0.25));
    }

    #[test]
    fn parse_accessors_navigate_objects() {
        let j = Json::parse("{\"a\": {\"b\": [1, \"two\"]}, \"n\": 9}").unwrap();
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(9));
        let b = j.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(b.as_arr().unwrap()[1].as_str(), Some("two"));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("{\"a\"").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("\"bad \\x escape\"").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn parse_unescapes_unicode() {
        let j = Json::parse("\"\\u0041\\u00e9\\n\"").unwrap();
        assert_eq!(j.as_str(), Some("Aé\n"));
    }
}
