//! Deterministic, bounded-memory time-series tracks.
//!
//! A [`Timeline`] records `(time, value)` samples into a uniform grid of
//! buckets anchored at t = 0 whose width is a power of two picoseconds.
//! When a sample lands past the track's fixed *point budget* (default
//! [`DEFAULT_POINT_BUDGET`]), adjacent bucket pairs merge and the width
//! doubles: resolution halves, but memory stays `O(budget)` for **any**
//! horizon. Each bucket keeps `count`, `sum`, `min` and `max` — all
//! commutative aggregates — so the stored state is a pure function of the
//! *multiset* of recorded samples: record order never changes a bucket,
//! a merge never changes the track total, and two runs that sample the
//! same values produce byte-identical summaries (pinned by the proptests
//! in `tests/timeline.rs`).
//!
//! Values are recorded as integers (`u64` raw ticks). A per-track `unit`
//! gives the value of one tick, so fractional quantities (a rate in
//! Gbps) are recorded in fixed point — e.g. `unit = 1e-6` records
//! micro-Gbps — keeping every aggregate exact and order-independent;
//! the float conversion happens only in the read-side views.
//!
//! How a merged bucket is *summarized* depends on the [`TrackKind`]:
//!
//! * [`TrackKind::Counter`] — per-interval deltas (PAUSE/ECN/CNP/drop
//!   rates). Representative: the bucket **sum**, which merges conserve.
//! * [`TrackKind::Gauge`] — instantaneous samples (queue depth, CC
//!   rate). Representative: the bucket **mean** (`sum/count`); `min`
//!   and `max` keep the envelope.
//! * [`TrackKind::Cumulative`] — monotone running totals (delivered
//!   bytes). Representative: the bucket **max**, which for a
//!   nondecreasing series is exactly the last sample of the interval.
//!
//! A [`TimelineSet`] holds named tracks behind `Copy` [`TrackId`]
//! handles, mirroring the metrics registry discipline: registration
//! (name lookup, allocation) is cold, the per-sample record path is an
//! array index plus integer adds.

use crate::stats::TimeSeries;
use crate::telemetry::json::Json;
use crate::units::{Duration, Time};

/// Default per-track point budget: the bucket vector never exceeds this
/// many entries, no matter the horizon.
pub const DEFAULT_POINT_BUDGET: usize = 4096;

/// How merged buckets of a track are summarized. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackKind {
    /// Per-interval deltas; representative = bucket sum.
    Counter,
    /// Instantaneous samples; representative = bucket mean.
    Gauge,
    /// Monotone running totals; representative = bucket max.
    Cumulative,
}

impl TrackKind {
    /// Stable lowercase name used in JSON summaries.
    pub fn name(self) -> &'static str {
        match self {
            TrackKind::Counter => "counter",
            TrackKind::Gauge => "gauge",
            TrackKind::Cumulative => "cumulative",
        }
    }
}

/// Handle to one track of a [`TimelineSet`]. One array index to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(u32);

/// One grid bucket: commutative aggregates only (no `last`, whose value
/// would depend on record order within the bucket).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Latest sample time in the bucket (a max, so order-independent).
    t_max: u64,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        count: 0,
        sum: 0,
        min: u64::MAX,
        max: 0,
        t_max: 0,
    };

    #[inline]
    fn observe(&mut self, t: Time, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.t_max = self.t_max.max(t.0);
    }

    fn absorb(&mut self, other: Bucket) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.t_max = self.t_max.max(other.t_max);
    }
}

/// A read-side view of one non-empty bucket, with the raw integer
/// aggregates already converted through the track's `unit`.
#[derive(Debug, Clone, Copy)]
pub struct BucketView {
    /// Inclusive start of the bucket's time interval.
    pub start: Time,
    /// Exclusive end of the bucket's time interval.
    pub end: Time,
    /// Latest sample time recorded into the interval — exact while the
    /// bucket width is finer than the sampling cadence.
    pub last: Time,
    /// Samples recorded into this interval.
    pub count: u64,
    /// Sum of the samples (in track units).
    pub sum: f64,
    /// Smallest sample (in track units).
    pub min: f64,
    /// Largest sample (in track units).
    pub max: f64,
}

impl BucketView {
    /// Mean of the bucket's samples.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// One bounded-memory time-series track. See the module docs.
#[derive(Debug, Clone)]
pub struct Timeline {
    kind: TrackKind,
    /// Value of one raw tick (1.0 for byte/count tracks, 1e-6 for rates
    /// recorded in micro-units via [`Timeline::record_f64`]).
    unit: f64,
    budget: usize,
    /// log2 of the bucket width in ps. Starts at 0 (1 ps buckets) and
    /// grows by one per halving.
    width_log2: u32,
    /// Lazily grown up to `budget` entries; index `i` covers
    /// `[i·w, (i+1)·w)` where `w = 1 << width_log2` ps.
    buckets: Vec<Bucket>,
    /// Whole-track aggregate — exact, never degraded by merging.
    total: Bucket,
}

impl Timeline {
    /// A new track with the default point budget.
    pub fn new(kind: TrackKind, unit: f64) -> Timeline {
        Timeline::with_budget(kind, unit, DEFAULT_POINT_BUDGET)
    }

    /// A new track with an explicit point budget (≥ 2; smaller budgets
    /// are clamped). Memory is `O(budget)` forever.
    pub fn with_budget(kind: TrackKind, unit: f64, budget: usize) -> Timeline {
        Timeline {
            kind,
            unit,
            budget: budget.max(2),
            width_log2: 0,
            buckets: Vec::new(),
            total: Bucket::EMPTY,
        }
    }

    /// Index of the bucket covering `t` at the current width.
    #[inline]
    fn index_of(&self, t: Time) -> usize {
        t.0.checked_shr(self.width_log2).unwrap_or(0) as usize
    }

    /// Records one raw-tick sample. Hot path: an index plus integer
    /// adds; the halving loop only runs when the horizon outgrows the
    /// grid, which happens `O(log horizon)` times per track lifetime.
    #[inline]
    pub fn record(&mut self, t: Time, v: u64) {
        let mut idx = self.index_of(t);
        while idx >= self.budget {
            self.halve();
            idx = self.index_of(t);
        }
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, Bucket::EMPTY);
        }
        self.buckets[idx].observe(t, v);
        self.total.observe(t, v);
    }

    /// Records a float sample in track units: quantized to the nearest
    /// raw tick (`v / unit`). With `unit = 1e-6` this is micro-unit
    /// fixed point — quantization error ≤ `unit / 2`, and the stored
    /// integer keeps the track order-independent and exactly summable.
    #[inline]
    pub fn record_f64(&mut self, t: Time, v: f64) {
        let ticks = (v / self.unit).round();
        debug_assert!(
            ticks >= 0.0 && ticks <= u64::MAX as f64,
            "sample out of tick range"
        );
        self.record(t, ticks as u64);
    }

    /// Merges adjacent bucket pairs in place and doubles the width.
    fn halve(&mut self) {
        let n = self.buckets.len();
        let half = n.div_ceil(2);
        for i in 0..half {
            let mut merged = self.buckets[2 * i];
            if 2 * i + 1 < n {
                merged.absorb(self.buckets[2 * i + 1]);
            }
            self.buckets[i] = merged;
        }
        self.buckets.truncate(half);
        self.width_log2 += 1;
    }

    /// This track's kind.
    pub fn kind(&self) -> TrackKind {
        self.kind
    }

    /// Current bucket width (power of two ps; grows as the run does).
    pub fn bucket_width(&self) -> Duration {
        Duration(1u64 << self.width_log2)
    }

    /// The track's point budget: `capacity_used` never exceeds it.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Grid slots currently allocated (≤ budget — the bounded-memory
    /// invariant the long-horizon test asserts).
    pub fn capacity_used(&self) -> usize {
        self.buckets.len()
    }

    /// Number of non-empty buckets (plotted points).
    pub fn points(&self) -> usize {
        self.buckets.iter().filter(|b| b.count > 0).count()
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total.count
    }

    /// Exact sum of all samples (in track units), unaffected by merging.
    pub fn sum(&self) -> f64 {
        self.total.sum as f64 * self.unit
    }

    /// Smallest recorded sample (0 when empty), in track units.
    pub fn min(&self) -> f64 {
        if self.total.count == 0 {
            0.0
        } else {
            self.total.min as f64 * self.unit
        }
    }

    /// Largest recorded sample (0 when empty), in track units.
    pub fn max(&self) -> f64 {
        self.total.max as f64 * self.unit
    }

    /// Exact mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total.count == 0 {
            0.0
        } else {
            (self.total.sum as f64 / self.total.count as f64) * self.unit
        }
    }

    /// Latest recorded timestamp ([`Time::ZERO`] when empty).
    pub fn last_time(&self) -> Time {
        Time(self.total.t_max)
    }

    fn view(&self, i: usize, b: &Bucket) -> BucketView {
        let w = 1u64 << self.width_log2;
        BucketView {
            start: Time(i as u64 * w),
            end: Time((i as u64 + 1).saturating_mul(w)),
            last: Time(b.t_max),
            count: b.count,
            sum: b.sum as f64 * self.unit,
            min: b.min as f64 * self.unit,
            max: b.max as f64 * self.unit,
        }
    }

    /// The non-empty buckets in time order.
    pub fn buckets(&self) -> impl Iterator<Item = BucketView> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.count > 0)
            .map(|(i, b)| self.view(i, b))
    }

    /// A bucket's representative value per the track kind (module docs).
    pub fn representative(&self, b: &BucketView) -> f64 {
        match self.kind {
            TrackKind::Counter => b.sum,
            TrackKind::Gauge => b.mean(),
            TrackKind::Cumulative => b.max,
        }
    }

    /// The track as a plain [`TimeSeries`]: one point per non-empty
    /// bucket, stamped at the bucket's latest sample time, valued at its
    /// representative. The bridge to the legacy series consumers
    /// (`to_rate_gbps`, trace tables); exact while buckets hold single
    /// samples.
    pub fn series(&self) -> TimeSeries {
        let mut out = TimeSeries::default();
        for b in self.buckets() {
            out.push(b.last, self.representative(&b));
        }
        out
    }

    /// Representative value at time `t`: the latest non-empty bucket
    /// starting at or before `t` (`None` before the first sample).
    ///
    /// For a [`TrackKind::Cumulative`] track this is the running total
    /// as of `t`, at bucket resolution — while the bucket width is
    /// finer than the sampling interval every bucket holds at most one
    /// sample and the value is *exact*, which is what keeps
    /// `Network::goodput_gbps` byte-identical to the pre-timeline
    /// implementation at the sampling rates the experiments use.
    pub fn value_at(&self, t: Time) -> Option<f64> {
        let idx = self.index_of(t).min(self.buckets.len().checked_sub(1)?);
        self.buckets[..=idx]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, b)| b.count > 0)
            .map(|(i, b)| self.representative(&self.view(i, b)))
    }

    /// Count-weighted nearest-rank percentile of the per-bucket means,
    /// over buckets starting at or after `from` (`p` in `[0, 100]`; 0.0
    /// when no samples qualify). The timeline replacement for running
    /// [`crate::stats::percentile`] over raw sample vectors: each bucket
    /// contributes its mean with multiplicity `count`, so the estimate
    /// degrades gracefully (toward the true mean) as buckets merge and
    /// is exact while buckets hold single samples.
    pub fn weighted_percentile(&self, p: f64, from: Time) -> f64 {
        let mut pairs: Vec<(f64, u64)> = self
            .buckets()
            .filter(|b| b.start >= from)
            .map(|b| (b.mean(), b.count))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0 * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(v, c) in &pairs {
            cum += c;
            if cum >= rank {
                return v;
            }
        }
        pairs.last().map_or(0.0, |&(v, _)| v)
    }

    /// Count-weighted mean over buckets starting at or after `from`
    /// (0.0 when no samples qualify). Exactly the mean of the qualifying
    /// samples — bucket sums and counts are never approximated.
    pub fn mean_from(&self, from: Time) -> f64 {
        let (mut sum, mut count) = (0u128, 0u64);
        for (i, b) in self.buckets.iter().enumerate() {
            if b.count > 0 && Time(i as u64 * (1u64 << self.width_log2)) >= from {
                sum += b.sum;
                count += b.count;
            }
        }
        if count == 0 {
            0.0
        } else {
            (sum as f64 / count as f64) * self.unit
        }
    }

    /// Deterministic JSON summary (the `timelines` section of
    /// `Network::telemetry_report`; schema in DESIGN.md).
    pub fn summary_json(&self) -> Json {
        Json::obj(vec![
            ("bucket_width_ps", Json::UInt(self.bucket_width().0)),
            ("count", Json::UInt(self.count())),
            ("kind", Json::from(self.kind.name())),
            ("last_ps", Json::UInt(self.total.t_max)),
            ("max", Json::Float(self.max())),
            ("mean", Json::Float(self.mean())),
            ("min", Json::Float(self.min())),
            ("points", Json::UInt(self.points() as u64)),
            ("sum", Json::Float(self.sum())),
        ])
    }
}

/// A named collection of [`Timeline`] tracks behind `Copy` handles.
///
/// Registration ([`TimelineSet::track`]) is the cold path: it walks the
/// name list and may allocate. Recording through a [`TrackId`] is one
/// array index. Iteration is in registration order, which the simulator
/// keeps deterministic.
#[derive(Debug, Clone, Default)]
pub struct TimelineSet {
    names: Vec<String>,
    tracks: Vec<Timeline>,
}

impl TimelineSet {
    /// An empty set.
    pub fn new() -> TimelineSet {
        TimelineSet::default()
    }

    /// Registers (or re-finds) a track by name. Cold path. A re-find
    /// keeps the existing track untouched; `kind`/`unit`/`budget` only
    /// apply to a fresh registration.
    pub fn track(&mut self, name: &str, kind: TrackKind, unit: f64, budget: usize) -> TrackId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return TrackId(i as u32);
        }
        self.names.push(name.to_string());
        self.tracks.push(Timeline::with_budget(kind, unit, budget));
        TrackId((self.tracks.len() - 1) as u32)
    }

    /// Records a raw-tick sample into a track. Hot path.
    #[inline]
    pub fn record(&mut self, id: TrackId, t: Time, v: u64) {
        self.tracks[id.0 as usize].record(t, v);
    }

    /// Records a float sample (track units) into a track. Hot path.
    #[inline]
    pub fn record_f64(&mut self, id: TrackId, t: Time, v: f64) {
        self.tracks[id.0 as usize].record_f64(t, v);
    }

    /// The track behind a handle.
    pub fn get(&self, id: TrackId) -> &Timeline {
        &self.tracks[id.0 as usize]
    }

    /// The registered name behind a handle.
    pub fn name(&self, id: TrackId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Cold name-based lookup for report code and tests.
    pub fn by_name(&self, name: &str) -> Option<&Timeline> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(&self.tracks[i])
    }

    /// All tracks as `(name, track)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Timeline)> + '_ {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.tracks.iter())
    }

    /// Number of registered tracks.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// True when no track is registered.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Deterministic JSON summary of every track, keyed by name.
    pub fn summary_json(&self) -> Json {
        let mut obj = Json::obj(vec![]);
        for (name, tl) in self.iter() {
            obj.push(name, tl.summary_json());
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bucket_per_sample_while_width_is_fine() {
        let mut tl = Timeline::new(TrackKind::Gauge, 1.0);
        for i in 0..10u64 {
            tl.record(Time(i * 400), i);
        }
        assert_eq!(tl.count(), 10);
        assert_eq!(tl.points(), 10, "1 ps buckets keep samples distinct");
        assert_eq!(tl.bucket_width(), Duration(1));
        assert_eq!(tl.sum(), 45.0);
        assert_eq!(tl.min(), 0.0);
        assert_eq!(tl.max(), 9.0);
    }

    #[test]
    fn halving_conserves_totals_and_bounds_memory() {
        let mut tl = Timeline::with_budget(TrackKind::Counter, 1.0, 8);
        for i in 0..1000u64 {
            tl.record(Time(i * 7), 3);
        }
        assert!(tl.capacity_used() <= 8);
        assert_eq!(tl.sum(), 3000.0, "merges never lose counted events");
        assert_eq!(tl.count(), 1000);
        let bucket_sum: f64 = tl.buckets().map(|b| b.sum).sum();
        assert_eq!(bucket_sum, 3000.0);
        assert!(tl.bucket_width().0.is_power_of_two());
    }

    #[test]
    fn representative_follows_kind() {
        let mut c = Timeline::with_budget(TrackKind::Counter, 1.0, 2);
        let mut g = Timeline::with_budget(TrackKind::Gauge, 1.0, 2);
        let mut m = Timeline::with_budget(TrackKind::Cumulative, 1.0, 2);
        for (t, v) in [(0u64, 10u64), (1, 20), (2, 60)] {
            c.record(Time(t), v);
            g.record(Time(t), v);
            m.record(Time(t), v);
        }
        // Everything merged into few buckets; totals stay exact.
        let csum: f64 = c.buckets().map(|b| c.representative(&b)).sum();
        assert_eq!(csum, 90.0, "counter representatives telescope to the sum");
        for b in g.buckets() {
            assert!(b.min <= g.representative(&b) && g.representative(&b) <= b.max);
        }
        let last = m.buckets().last().unwrap();
        assert_eq!(m.representative(&last), 60.0, "cumulative keeps the peak");
    }

    #[test]
    fn value_at_is_a_step_function() {
        let mut tl = Timeline::new(TrackKind::Cumulative, 1.0);
        tl.record(Time(1000), 5);
        tl.record(Time(3000), 9);
        assert_eq!(tl.value_at(Time(500)), None, "before the first sample");
        assert_eq!(tl.value_at(Time(1000)), Some(5.0));
        assert_eq!(tl.value_at(Time(2999)), Some(5.0));
        assert_eq!(tl.value_at(Time(3000)), Some(9.0));
        assert_eq!(tl.value_at(Time(u64::MAX)), Some(9.0), "past the end");
        assert_eq!(Timeline::new(TrackKind::Gauge, 1.0).value_at(Time(0)), None);
    }

    #[test]
    fn fixed_point_units_round_trip() {
        let mut tl = Timeline::new(TrackKind::Gauge, 1e-6);
        tl.record_f64(Time(10), 40.0);
        tl.record_f64(Time(20), 19.999_999_5);
        assert!((tl.max() - 40.0).abs() < 1e-9);
        assert!((tl.min() - 20.0).abs() < 1e-6, "quantized to the tick");
    }

    #[test]
    fn weighted_percentile_and_mean_from() {
        let mut tl = Timeline::new(TrackKind::Gauge, 1.0);
        for i in 1..=100u64 {
            tl.record(Time(i * 10), i);
        }
        assert_eq!(tl.weighted_percentile(50.0, Time::ZERO), 50.0);
        assert_eq!(tl.weighted_percentile(90.0, Time::ZERO), 90.0);
        // From half way: samples 51..=100 remain.
        assert_eq!(tl.weighted_percentile(0.0, Time(510)), 51.0);
        assert_eq!(tl.mean_from(Time(510)), 75.5);
        assert_eq!(tl.mean_from(Time(u64::MAX)), 0.0);
        assert_eq!(tl.weighted_percentile(50.0, Time(u64::MAX)), 0.0);
    }

    #[test]
    fn series_bridges_to_rates() {
        let mut tl = Timeline::new(TrackKind::Cumulative, 1.0);
        // 500 KB every 100 µs = 40 Gbps.
        for i in 0..5u64 {
            tl.record(Time::from_micros(i * 100), i * 500_000);
        }
        let r = tl.series().to_rate_gbps();
        assert_eq!(r.values.len(), 4);
        for v in &r.values {
            assert!((v - 40.0).abs() < 1e-9);
        }
    }

    #[test]
    fn set_registration_dedupes_and_iterates_in_order() {
        let mut set = TimelineSet::new();
        let a = set.track("a", TrackKind::Gauge, 1.0, 16);
        let b = set.track("b", TrackKind::Counter, 1.0, 16);
        let a2 = set.track("a", TrackKind::Counter, 1.0, 999);
        assert_eq!(a, a2, "re-registration re-finds");
        assert_eq!(set.get(a2).kind(), TrackKind::Gauge, "original untouched");
        set.record(a, Time(5), 7);
        set.record(b, Time(5), 1);
        let names: Vec<&str> = set.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(set.by_name("a").unwrap().sum(), 7.0);
        assert!(set.by_name("zz").is_none());
        assert_eq!(set.len(), 2);
        let rendered = set.summary_json().render();
        assert!(rendered.contains("\"bucket_width_ps\""));
        assert!(rendered.contains("\"kind\": \"gauge\""));
    }

    #[test]
    fn empty_timeline_reports_zeros() {
        let tl = Timeline::new(TrackKind::Counter, 1.0);
        assert_eq!(tl.count(), 0);
        assert_eq!(tl.sum(), 0.0);
        assert_eq!(tl.min(), 0.0);
        assert_eq!(tl.max(), 0.0);
        assert_eq!(tl.mean(), 0.0);
        assert_eq!(tl.points(), 0);
        assert_eq!(tl.capacity_used(), 0);
        assert!(tl.series().values.is_empty());
    }
}
