//! Telemetry subsystem: metrics registry, HDR-style histograms, flight
//! recorder, deterministic JSON, and an optional event-loop profiler.
//!
//! The paper's evaluation (§5) is measurement: per-flow throughput,
//! pause-frame counts, queue-depth CDFs, mark/drop/retransmit tallies.
//! This module family makes every run produce those measurables
//! natively, with hot-path costs suitable for the packet pipeline:
//!
//! * [`registry`] — named counters, gauges and log2-bucket histograms
//!   registered **once** at build time and updated through `Copy`
//!   handles, so an update is a single array index (no hashing, no
//!   allocation per event).
//! * [`hist`] — the allocation-free [`Histogram`] backing the registry:
//!   65 log2 buckets plus exact count/sum/min/max.
//! * [`recorder`] — the [`FlightRecorder`]: a bounded ring of recent
//!   trace events per node, snapshotted automatically when the sanitize
//!   auditor records a violation or a QP is torn down.
//! * [`json`] — a small deterministic JSON renderer (sorted keys, fixed
//!   float formatting) used for the experiments binary's `--json` run
//!   reports; no external crates.
//! * [`profile`] — the event-loop self-profiler behind
//!   `--features profile`; every call is an inlined no-op without it.
//! * [`spans`] — span-based causal tracing: per-flow latency
//!   attribution (the FCT decomposition identity), the
//!   pause-propagation congestion tree, and a deterministic Chrome
//!   trace-event exporter. Disabled, it costs one branch per hook.
//! * [`timeline`] — bounded-memory time-series tracks with
//!   hierarchical downsampling: when a track fills its point budget,
//!   adjacent buckets merge and resolution halves, so memory is
//!   `O(budget)` for any horizon. Backs the periodic sampler
//!   (`Network::enable_sampling`).
//! * [`dash`] — a dependency-free HTML + inline-SVG dashboard emitter
//!   rendering timelines and span attribution to a single
//!   deterministic file (`repro <id> --dash <dir>`).
//!
//! The simulator owns one [`Metrics`] per network (see
//! `Network::telemetry_report`); experiments read it back by handle or
//! by name when building reports.
//!
//! ```
//! use netsim::telemetry::Metrics;
//!
//! let mut m = Metrics::standard();
//! let h = m.h; // Copy handles: capture once, use on the hot path
//! m.inc(h.ecn_marks);
//! m.observe(h.queue_depth_bytes, 4096);
//! assert_eq!(m.registry.counter_value("ecn_marks"), Some(1));
//! assert_eq!(m.registry.hist_get(h.queue_depth_bytes).count(), 1);
//! ```

pub mod dash;
pub mod hist;
pub mod json;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod spans;
pub mod timeline;

pub use dash::{Dashboard, Series};
pub use hist::Histogram;
pub use json::{fmt_f64, Json};
pub use profile::{ProfMark, Profiler};
pub use recorder::{FlightDump, FlightRecorder};
pub use registry::{CounterId, GaugeId, HistId, Metrics, Registry, WellKnown};
pub use spans::{
    CongestionTree, FlowSpan, HopSpan, PauseEdge, SpanCompletion, SpanState, Spans, TreeEdge,
    TreeRoot, TreeVictim, NUM_SPAN_STATES,
};
pub use timeline::{BucketView, Timeline, TimelineSet, TrackId, TrackKind, DEFAULT_POINT_BUDGET};
