//! RED/ECN marking (the paper's Figure 5 and the CP half of DCQCN).
//!
//! An arriving packet is marked with probability 0 below `kmin` bytes of
//! egress queue, rising linearly to `pmax` at `kmax`, and 1 above `kmax`.
//! Setting `kmin == kmax` with `pmax = 1` reproduces DCTCP's cut-off
//! behaviour. Marking is on the *instantaneous* queue (as in DCTCP and the
//! paper), not RED's EWMA.

use crate::rng::SplitMix64;

/// RED marking configuration for an egress queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedConfig {
    /// Queue depth (bytes) below which nothing is marked (`K_min`).
    pub kmin_bytes: u64,
    /// Queue depth (bytes) above which everything is marked (`K_max`).
    pub kmax_bytes: u64,
    /// Marking probability at `K_max` (`P_max`, in `[0, 1]`).
    pub pmax: f64,
}

impl RedConfig {
    /// DCTCP-style cut-off marking at threshold `k` bytes: mark everything
    /// once the queue exceeds `k`.
    pub fn cutoff(k: u64) -> RedConfig {
        RedConfig {
            kmin_bytes: k,
            kmax_bytes: k,
            pmax: 1.0,
        }
    }

    /// Disabled marking (lossy/TCP-only fabrics without ECN).
    pub fn disabled() -> RedConfig {
        RedConfig {
            kmin_bytes: u64::MAX,
            kmax_bytes: u64::MAX,
            pmax: 0.0,
        }
    }

    /// Marking probability for an instantaneous queue of `q` bytes
    /// (Equation 5 of the paper / Figure 5).
    pub fn mark_probability(&self, q: u64) -> f64 {
        if q <= self.kmin_bytes {
            0.0
        } else if q <= self.kmax_bytes {
            // kmin < q <= kmax; kmin == kmax is impossible here because the
            // first branch took q <= kmin.
            self.pmax * (q - self.kmin_bytes) as f64 / (self.kmax_bytes - self.kmin_bytes) as f64
        } else {
            1.0
        }
    }

    /// Samples the marking decision for a queue of `q` bytes.
    pub fn should_mark(&self, q: u64, rng: &mut SplitMix64) -> bool {
        rng.chance(self.mark_probability(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::bytes::kb;

    /// The paper's deployed CP parameters (Figure 14).
    fn deployed() -> RedConfig {
        RedConfig {
            kmin_bytes: kb(5),
            kmax_bytes: kb(200),
            pmax: 0.01,
        }
    }

    #[test]
    fn zero_below_kmin() {
        let c = deployed();
        assert_eq!(c.mark_probability(0), 0.0);
        assert_eq!(c.mark_probability(kb(5)), 0.0);
    }

    #[test]
    fn one_above_kmax() {
        let c = deployed();
        assert_eq!(c.mark_probability(kb(200) + 1), 1.0);
        assert_eq!(c.mark_probability(u64::MAX), 1.0);
    }

    #[test]
    fn linear_in_between() {
        let c = deployed();
        // Midpoint of [5KB, 200KB] should give pmax/2.
        let mid = (kb(5) + kb(200)) / 2;
        let p = c.mark_probability(mid);
        assert!((p - 0.005).abs() < 1e-9, "p = {p}");
        // Quarter point.
        let quarter = kb(5) + (kb(200) - kb(5)) / 4;
        assert!((c.mark_probability(quarter) - 0.0025).abs() < 1e-4);
    }

    #[test]
    fn probability_is_monotone() {
        let c = deployed();
        let mut last = -1.0;
        for q in (0..kb(250)).step_by(1024) {
            let p = c.mark_probability(q);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn cutoff_reproduces_dctcp() {
        let c = RedConfig::cutoff(kb(40));
        assert_eq!(c.mark_probability(kb(40)), 0.0);
        assert_eq!(c.mark_probability(kb(40) + 1), 1.0);
    }

    #[test]
    fn disabled_never_marks() {
        let c = RedConfig::disabled();
        let mut rng = SplitMix64::new(1);
        assert!(!c.should_mark(u64::MAX - 1, &mut rng));
    }

    #[test]
    fn sampling_matches_probability() {
        let c = deployed();
        let mut rng = SplitMix64::new(9);
        let q = kb(200); // p = pmax = 1%
        let n = 100_000;
        let marks = (0..n).filter(|_| c.should_mark(q, &mut rng)).count();
        let rate = marks as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.002, "rate {rate}");
    }
}
