//! The shared-buffer switch: ingress admission with PFC, routing with ECMP,
//! RED/ECN marking at egress, strict-priority scheduling.
//!
//! The pipeline for a forwarded packet is:
//!
//! 1. **ingress admission** — charge the shared pool, attributed to the
//!    ingress (port, priority); tail-drop if the pool is exhausted,
//! 2. **PFC check** — if the ingress queue crossed `t_PFC`, PAUSE the
//!    upstream device (§4's static or dynamic-β threshold),
//! 3. **routing** — ECMP among equal-cost shortest-path ports by flow hash,
//! 4. **ECN marking** — RED on the instantaneous egress queue depth,
//! 5. **egress enqueue** — per-priority FIFO; in lossy mode (PFC off for the
//!    class) the queue is capped and overflow is dropped,
//! 6. **transmit** — strict priority, skipping PFC-paused classes; buffer
//!    space is released when serialization completes, at which point RESUME
//!    may fire.

use crate::buffer::{BufferConfig, SharedBuffer};
use crate::ecn::RedConfig;
use crate::event::{Event, NodeId, PortId};
use crate::network::Ctx;
use crate::packet::{Packet, PacketKind, NUM_PRIORITIES};
use crate::port::{Port, Queued};
use crate::rng::mix64;
use crate::routing::RouteTable;
use crate::stats::SwitchStats;
use crate::trace::{TraceEvent, TraceKind};
use crate::units::checked::{bytes_to_f64, checked_accum};
use crate::units::{Duration, Time};

/// QCN congestion-point configuration (used only by the QCN baseline).
#[derive(Debug, Clone, Copy)]
pub struct QcnCpConfig {
    /// Equilibrium egress queue length in bytes (`Q_eq`).
    pub q_eq_bytes: u64,
    /// Weight of the queue derivative in Fb.
    pub w: f64,
    /// Sample a packet for feedback every this many egress bytes.
    pub sample_bytes: u64,
}

impl Default for QcnCpConfig {
    fn default() -> QcnCpConfig {
        QcnCpConfig {
            q_eq_bytes: 66 * 1500, // QCN spec default ~ 66 frames
            w: 2.0,
            sample_bytes: 150 * 1024, // 150 KB sampling interval
        }
    }
}

/// PFC storm watchdog parameters: a port class paused *continuously* for
/// `threshold` trips the watchdog — the switch stops honoring PAUSE for
/// that (port, class) and keeps transmitting, then honors it again
/// `recovery` after the trip. This is the deployed mitigation for the §6
/// malfunctioning-NIC pause storm: without it one stuck receiver freezes
/// every queue upstream of it, forever.
///
/// Real switch watchdogs poll on 100–200 ms granularity; the defaults
/// here are scaled to this simulator's tens-of-milliseconds experiment
/// horizons. The 1:4 threshold:recovery ratio means a persistent storm
/// leaves the victim port transmitting ~80% of the time.
#[derive(Debug, Clone, Copy)]
pub struct PfcWatchdogConfig {
    /// Continuous pause time that trips the watchdog.
    pub threshold: Duration,
    /// How long PAUSE is ignored after a trip.
    pub recovery: Duration,
}

impl Default for PfcWatchdogConfig {
    fn default() -> PfcWatchdogConfig {
        PfcWatchdogConfig {
            threshold: Duration::from_millis(1),
            recovery: Duration::from_millis(4),
        }
    }
}

/// Static configuration of a switch.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Shared-buffer and PFC threshold parameters.
    pub buffer: BufferConfig,
    /// RED/ECN marking parameters (the DCQCN CP).
    pub red: RedConfig,
    /// Is PFC enabled at all?
    pub pfc_enabled: bool,
    /// Which priority classes are lossless (PFC-protected). Ignored when
    /// `pfc_enabled` is false.
    pub lossless: [bool; NUM_PRIORITIES],
    /// QCN congestion point (baseline only).
    pub qcn: Option<QcnCpConfig>,
    /// PFC storm watchdog (`None` = no watchdog, the paper-era default).
    pub watchdog: Option<PfcWatchdogConfig>,
}

impl SwitchConfig {
    /// The paper's production switch configuration: Trident II buffer with
    /// dynamic β = 8 thresholds, marking disabled (enable it via
    /// [`SwitchConfig::with_red`]). As in the deployment, PFC protects the
    /// RDMA data classes; the control class (priority 0, carrying
    /// ACKs/CNPs "with high priority") is served by strict priority and
    /// is not PFC-paused.
    pub fn paper_default() -> SwitchConfig {
        let mut lossless = [true; NUM_PRIORITIES];
        lossless[crate::packet::CONTROL_PRIORITY as usize] = false;
        SwitchConfig {
            buffer: BufferConfig::trident2(),
            red: RedConfig::disabled(),
            pfc_enabled: true,
            lossless,
            qcn: None,
            watchdog: None,
        }
    }

    /// Same configuration with RED/ECN marking enabled.
    pub fn with_red(mut self, red: RedConfig) -> SwitchConfig {
        self.red = red;
        self
    }

    /// Disables PFC (the paper's "DCQCN without PFC" configuration).
    pub fn without_pfc(mut self) -> SwitchConfig {
        self.pfc_enabled = false;
        self
    }

    /// Enables the PFC storm watchdog.
    pub fn with_watchdog(mut self, wd: PfcWatchdogConfig) -> SwitchConfig {
        self.watchdog = Some(wd);
        self
    }
}

/// Per-egress-port QCN sampling state.
#[derive(Debug, Clone, Copy, Default)]
pub struct QcnPortState {
    /// Bytes seen since the last sampled packet.
    pub bytes_since_sample: u64,
    /// Queue length at the previous sample (for q_delta).
    pub q_old: u64,
}

/// A switch instance.
pub struct Switch {
    /// This switch's node id.
    pub id: NodeId,
    /// Ports (egress queues + transmitters).
    pub ports: Vec<Port>,
    /// Shared-buffer occupancy and PFC thresholds.
    pub buffer: SharedBuffer,
    /// Configuration.
    pub config: SwitchConfig,
    /// Destination → equal-cost egress ports.
    pub routes: RouteTable,
    /// Counters.
    pub stats: SwitchStats,
    /// QCN per-port sampling state.
    qcn_state: Vec<QcnPortState>,
    /// Ingress (port, priority) pairs we have currently paused — kept
    /// explicitly so RESUME can be re-evaluated on *any* buffer release
    /// (the dynamic threshold rises as the pool drains, so a pause can
    /// become releasable without traffic on its own ingress).
    paused_ingress: Vec<(usize, usize)>,
}

impl Switch {
    /// Creates a switch with `nports` (unattached) ports. If the topology
    /// needs more ports than the buffer profile's nominal count, the
    /// profile is widened so per-port accounting (and headroom
    /// reservation) covers every real port.
    pub fn new(id: NodeId, nports: usize, config: SwitchConfig) -> Switch {
        let mut buf_cfg = config.buffer;
        buf_cfg.num_ports = buf_cfg.num_ports.max(nports);
        Switch {
            id,
            ports: (0..nports).map(|_| Port::new()).collect(),
            buffer: SharedBuffer::new(buf_cfg),
            qcn_state: vec![QcnPortState::default(); nports],
            config,
            routes: RouteTable::new(),
            stats: SwitchStats::default(),
            paused_ingress: Vec::new(),
        }
    }

    /// Is `prio` PFC-protected on this switch?
    pub fn is_lossless(&self, prio: usize) -> bool {
        self.config.pfc_enabled && self.config.lossless[prio]
    }

    /// Picks the ECMP egress port for `pkt`, or `None` when unroutable.
    pub fn route(&self, pkt: &Packet, salt: u64) -> Option<PortId> {
        let ports = self.routes.get(&pkt.dst)?;
        debug_assert!(!ports.is_empty());
        let h = mix64(pkt.flow.0 ^ salt);
        Some(ports[(h % ports.len() as u64) as usize])
    }

    /// Handles a packet delivered to this switch on `in_port`.
    pub fn receive(&mut self, ctx: &mut Ctx, in_port: PortId, pkt: Packet) {
        let now = ctx.queue.now();

        // Link-local PFC frames control our transmitter on that port.
        if let PacketKind::Pfc { class, pause } = pkt.kind {
            self.stats.pause_rx += pause as u64;
            if pause {
                ctx.metrics.inc(ctx.metrics.h.pause_rx);
            }
            let wd = self.config.watchdog;
            let port = &mut self.ports[in_port.0];
            let newly_paused = pause && !port.rx_paused[class as usize];
            let paused_since = port.rx_paused_since[class as usize];
            let released = port.apply_pfc(class, pause, now);
            // Arm one watchdog check chain per (port, class) on the
            // false→true pause transition; the chain re-checks the soft
            // `rx_paused_since` deadline when it fires.
            if let Some(wd) = wd {
                let c = class as usize;
                if newly_paused && port.rx_paused[c] && !port.wd_armed[c] {
                    port.wd_armed[c] = true;
                    ctx.queue.schedule(
                        now + wd.threshold,
                        Event::Watchdog {
                            node: self.id,
                            port: in_port,
                            class: c,
                            restore: false,
                        },
                    );
                }
            }
            if released {
                if paused_since != Time::NEVER {
                    ctx.metrics.observe(
                        ctx.metrics.h.pause_duration_us,
                        now.saturating_since(paused_since).as_micros_f64() as u64,
                    );
                }
                self.try_transmit(ctx, in_port);
            }
            return;
        }

        let prio = pkt.priority as usize;
        let wire = pkt.wire_bytes;

        // 1. Shared-pool admission.
        if !self.buffer.admit(in_port.0, prio, wire) {
            self.stats.drops_pool += 1;
            ctx.metrics.inc(ctx.metrics.h.drops_pool);
            ctx.audit
                .on_drop(self.id, prio, self.is_lossless(prio), now);
            ctx.record_trace(TraceEvent {
                at: now,
                node: self.id,
                flow: pkt.flow,
                kind: TraceKind::Dropped,
                detail: 0,
            });
            return;
        }
        ctx.metrics
            .set_max(ctx.metrics.h.peak_buffer_bytes, self.buffer.occupied());

        // 2. PFC threshold check on the ingress queue.
        if self.is_lossless(prio) {
            let port = &mut self.ports[in_port.0];
            if !port.tx_pause_sent[prio] && self.buffer.should_pause(in_port.0, prio) {
                // A delivered packet implies an attached ingress port; if
                // that ever breaks, skipping the PAUSE (and letting the
                // auditor flag the eventual drop) beats panicking mid-run.
                let Some(att) = port.attach else {
                    debug_assert!(false, "packet arrived on unattached port");
                    return;
                };
                port.tx_pause_sent[prio] = true;
                self.stats.pause_tx += 1;
                ctx.metrics.inc(ctx.metrics.h.pause_tx);
                port.pfc_queue
                    .push_back(Packet::pfc(self.id, att.peer, prio as u8, true));
                self.paused_ingress.push((in_port.0, prio));
                ctx.audit.on_pause(self.id, in_port.0, prio, now);
                ctx.record_trace(TraceEvent {
                    at: now,
                    node: self.id,
                    flow: pkt.flow,
                    kind: TraceKind::PauseSent,
                    detail: prio as u64,
                });
                if ctx.spans.is_enabled() {
                    let (depth, threshold) = self.buffer.pause_detail(in_port.0, prio);
                    ctx.spans
                        .record_pause_edge(crate::telemetry::spans::PauseEdge {
                            at: now,
                            from: self.id,
                            from_port: in_port,
                            to: att.peer,
                            to_port: att.peer_port,
                            class: prio as u8,
                            pause: true,
                            storm: false,
                            depth,
                            threshold,
                        });
                }
                self.try_transmit(ctx, in_port);
            }
        }

        // 3. Routing.
        let Some(out) = self.route(&pkt, ctx.ecmp_salt) else {
            // Unroutable: release and count as a drop.
            self.buffer.release(in_port.0, prio, wire);
            self.stats.drops_pool += 1;
            ctx.metrics.inc(ctx.metrics.h.drops_pool);
            ctx.audit
                .on_drop(self.id, prio, self.is_lossless(prio), now);
            return;
        };

        let mut pkt = pkt;

        // 4. ECN marking on the instantaneous egress queue depth.
        let egress_depth = self.ports[out.0].queued_bytes[prio];
        if pkt.is_data() {
            ctx.metrics
                .observe(ctx.metrics.h.queue_depth_bytes, egress_depth);
        }
        if pkt.is_data() && self.config.red.should_mark(egress_depth, &mut ctx.rng) && pkt.mark_ce()
        {
            self.stats.ecn_marks += 1;
            ctx.metrics.inc(ctx.metrics.h.ecn_marks);
            ctx.record_trace(TraceEvent {
                at: now,
                node: self.id,
                flow: pkt.flow,
                kind: TraceKind::Marked,
                detail: egress_depth,
            });
        }

        // QCN congestion point (baseline): sample and send feedback.
        if pkt.is_data() {
            if let Some(qcn) = self.config.qcn {
                let st = &mut self.qcn_state[out.0];
                let ok = checked_accum(&mut st.bytes_since_sample, wire);
                debug_assert!(ok, "qcn byte counter overflow");
                if st.bytes_since_sample >= qcn.sample_bytes {
                    st.bytes_since_sample = 0;
                    let q = bytes_to_f64(egress_depth);
                    let q_prev = bytes_to_f64(st.q_old);
                    let q_off = q - bytes_to_f64(qcn.q_eq_bytes);
                    let q_delta = q - q_prev;
                    st.q_old = egress_depth;
                    let fb = -(q_off + qcn.w * q_delta);
                    if fb < 0.0 {
                        // Quantize |Fb| to 6 bits against the maximum
                        // |Fb| = (1 + 2w) * q_eq.
                        let fb_max = (1.0 + 2.0 * qcn.w) * bytes_to_f64(qcn.q_eq_bytes);
                        let quantized = (((-fb) / fb_max).min(1.0) * 63.0).round() as u8;
                        if quantized > 0 {
                            let fb_pkt =
                                Packet::qcn_feedback(self.id, pkt.src, pkt.flow, quantized);
                            self.forward_control(ctx, in_port, fb_pkt);
                        }
                    }
                }
            }
        }

        // 5. Lossy-mode egress cap.
        if !self.is_lossless(prio)
            && egress_depth.saturating_add(wire) > self.buffer.lossy_egress_limit()
        {
            self.buffer.release(in_port.0, prio, wire);
            self.stats.drops_lossy += 1;
            ctx.metrics.inc(ctx.metrics.h.drops_lossy);
            ctx.audit
                .on_drop(self.id, prio, self.is_lossless(prio), now);
            ctx.record_trace(TraceEvent {
                at: now,
                node: self.id,
                flow: pkt.flow,
                kind: TraceKind::Dropped,
                detail: 1,
            });
            return;
        }

        // 6. Enqueue and (maybe) start transmitting.
        self.stats.forwarded += 1;
        ctx.metrics.inc(ctx.metrics.h.forwarded);
        self.ports[out.0].enqueue(Queued::new(pkt, Some((in_port.0, prio))).at(now));
        self.try_transmit(ctx, out);
    }

    /// Handles a fired PFC storm watchdog event for `(pid, class)`.
    ///
    /// The check chain uses the same soft-deadline pattern as host RTO
    /// timers: the event re-reads `rx_paused_since` when it fires, so a
    /// pause that was released and re-applied just reschedules the check
    /// instead of tripping spuriously. On a genuine trip the class stops
    /// honoring PAUSE (and resumes transmitting) until the restore event
    /// fires `recovery` later.
    pub fn watchdog(&mut self, ctx: &mut Ctx, pid: PortId, class: usize, restore: bool) {
        let Some(wd) = self.config.watchdog else {
            return;
        };
        let now = ctx.queue.now();
        let port = &mut self.ports[pid.0];
        if restore {
            // Idempotent: a link reset may have cleared the ignore flag
            // before the restore event arrives.
            if port.pfc_ignore[class] {
                port.pfc_ignore[class] = false;
                self.stats.watchdog_restores += 1;
                ctx.metrics.inc(ctx.metrics.h.watchdog_restores);
            }
            return;
        }
        if !port.rx_paused[class] || port.rx_paused_since[class] == Time::NEVER {
            port.wd_armed[class] = false;
            return; // pause released since arming: the chain dies
        }
        let trip_at = port.rx_paused_since[class] + wd.threshold;
        if trip_at > now {
            // Paused again, but not yet continuously long enough.
            ctx.queue.schedule(
                trip_at,
                Event::Watchdog {
                    node: self.id,
                    port: pid,
                    class,
                    restore: false,
                },
            );
            return;
        }
        // Trip: ignore PAUSE, resume transmitting, schedule recovery.
        port.wd_armed[class] = false;
        port.pfc_ignore[class] = true;
        port.rx_paused[class] = false;
        port.rx_paused_since[class] = Time::NEVER;
        self.stats.watchdog_trips += 1;
        ctx.metrics.inc(ctx.metrics.h.watchdog_trips);
        ctx.record_trace(TraceEvent {
            at: now,
            node: self.id,
            flow: crate::packet::FlowId(u64::MAX),
            kind: TraceKind::WatchdogTrip,
            detail: class as u64,
        });
        ctx.queue.schedule(
            now + wd.recovery,
            Event::Watchdog {
                node: self.id,
                port: pid,
                class,
                restore: true,
            },
        );
        self.try_transmit(ctx, pid);
    }

    /// Test-only firmware-bug emulation (see
    /// [`crate::faults::FaultAction::WedgeWatchdog`]): trips the storm
    /// watchdog on `(pid, class)` exactly like a genuine trip — PAUSE
    /// ignored from here on, transmission resumed, the trip counted — but
    /// never schedules the recovery event, leaving the class wedged. The
    /// convergence auditor must catch the stuck `pfc_ignore`.
    pub fn wedge_watchdog(&mut self, ctx: &mut Ctx, pid: PortId, class: usize) {
        let port = &mut self.ports[pid.0];
        port.wd_armed[class] = false;
        port.pfc_ignore[class] = true;
        port.rx_paused[class] = false;
        port.rx_paused_since[class] = Time::NEVER;
        self.stats.watchdog_trips += 1;
        ctx.metrics.inc(ctx.metrics.h.watchdog_trips);
        ctx.record_trace(TraceEvent {
            at: ctx.queue.now(),
            node: self.id,
            flow: crate::packet::FlowId(u64::MAX),
            kind: TraceKind::WatchdogTrip,
            detail: class as u64,
        });
        self.try_transmit(ctx, pid);
    }

    /// Injects a switch-originated control packet (QCN feedback) toward its
    /// destination via normal routing, without shared-buffer accounting.
    fn forward_control(&mut self, ctx: &mut Ctx, fallback_port: PortId, pkt: Packet) {
        let out = self.route(&pkt, ctx.ecmp_salt).unwrap_or(fallback_port);
        self.ports[out.0].enqueue(Queued::new(pkt, None));
        self.try_transmit(ctx, out);
    }

    /// Starts transmission on `pid` if the transmitter is idle and a packet
    /// is eligible.
    ///
    /// Only the `TxDone` event is scheduled here; the matching `Deliver`
    /// is scheduled by [`Switch::tx_done`], which *moves* the packet out
    /// of `port.current` — one pending event per in-flight packet instead
    /// of two, and no per-packet clone.
    pub fn try_transmit(&mut self, ctx: &mut Ctx, pid: PortId) {
        let port = &mut self.ports[pid.0];
        if port.busy {
            return;
        }
        let Some(att) = port.attach else { return };
        let Some(q) = port.dequeue_next() else { return };
        let ser = att.bandwidth.serialize(q.pkt.wire_bytes);
        let now = ctx.queue.now();
        ctx.queue.schedule(
            now + ser,
            Event::TxDone {
                node: self.id,
                port: pid,
            },
        );
        port.current = Some(q);
        port.busy = true;
    }

    /// A packet finished serializing on `pid`: hand it to the wire (its
    /// `Deliver` fires one propagation delay later), release buffer space,
    /// check RESUMEs, and keep transmitting.
    pub fn tx_done(&mut self, ctx: &mut Ctx, pid: PortId) {
        let port = &mut self.ports[pid.0];
        port.busy = false;
        // `try_transmit` only goes busy on attached ports, so a missing
        // attachment here is unreachable; degrade to dropping the packet
        // on the floor rather than panicking the whole run.
        let Some(att) = port.attach else {
            debug_assert!(false, "transmitting port must be attached");
            return;
        };
        if let Some(done) = port.finish_current() {
            let ingress = done.ingress;
            let wire = done.pkt.wire_bytes;
            let now = ctx.queue.now();
            if ctx.spans.is_enabled() && done.pkt.is_data() {
                let ser = att.bandwidth.serialize(done.pkt.wire_bytes);
                ctx.spans.record_hop(crate::telemetry::spans::HopSpan {
                    flow: done.pkt.flow,
                    node: self.id,
                    port: pid,
                    enqueued: done.enqueued_at,
                    start: now - ser,
                    end: now,
                });
            }
            let pkt = ctx.pool.insert(done.pkt);
            ctx.queue.schedule(
                now + att.delay,
                Event::Deliver {
                    node: att.peer,
                    port: att.peer_port,
                    pkt,
                },
            );
            if let Some((ing_port, prio)) = ingress {
                self.buffer.release(ing_port, prio, wire);
                // Any release can make a paused ingress resumable — its
                // own queue drained, or the pool freed up and the dynamic
                // threshold rose. Re-check every currently paused pair.
                self.check_resumes(ctx);
            }
        }
        self.try_transmit(ctx, pid);
    }

    /// Clears all PFC state on `pid` after a link transition (down or up):
    /// forget pauses received on it, forget pauses we sent over it (the
    /// peer's state is reset in the same transition), and kick the
    /// transmitter in case it was pause-blocked. Without this a dead
    /// link's unanswered PAUSE would freeze the port forever.
    pub fn reset_link_pfc(&mut self, ctx: &mut Ctx, pid: PortId) {
        self.paused_ingress.retain(|&(p, _)| p != pid.0);
        self.ports[pid.0].reset_pfc();
        self.try_transmit(ctx, pid);
    }

    /// Sends RESUME for every paused ingress (port, priority) whose queue
    /// is now two MTUs below the (possibly dynamic) threshold.
    fn check_resumes(&mut self, ctx: &mut Ctx) {
        let mut i = 0;
        while i < self.paused_ingress.len() {
            let (ing_port, prio) = self.paused_ingress[i];
            if self.buffer.should_resume(ing_port, prio) {
                // Pauses are only recorded for attached ports; if the
                // attachment vanished, keep the entry rather than panic.
                let Some(att) = self.ports[ing_port].attach else {
                    debug_assert!(false, "paused port must be attached");
                    i += 1;
                    continue;
                };
                self.paused_ingress.swap_remove(i);
                let ing = &mut self.ports[ing_port];
                ing.tx_pause_sent[prio] = false;
                self.stats.resume_tx += 1;
                ctx.metrics.inc(ctx.metrics.h.resume_tx);
                ing.pfc_queue
                    .push_back(Packet::pfc(self.id, att.peer, prio as u8, false));
                ctx.audit
                    .on_resume(self.id, ing_port, prio, ctx.queue.now());
                ctx.record_trace(TraceEvent {
                    at: ctx.queue.now(),
                    node: self.id,
                    flow: crate::packet::FlowId(u64::MAX),
                    kind: TraceKind::ResumeSent,
                    detail: prio as u64,
                });
                if ctx.spans.is_enabled() {
                    let (depth, threshold) = self.buffer.pause_detail(ing_port, prio);
                    ctx.spans
                        .record_pause_edge(crate::telemetry::spans::PauseEdge {
                            at: ctx.queue.now(),
                            from: self.id,
                            from_port: PortId(ing_port),
                            to: att.peer,
                            to_port: att.peer_port,
                            class: prio as u8,
                            pause: false,
                            storm: false,
                            depth,
                            threshold,
                        });
                }
                self.try_transmit(ctx, PortId(ing_port));
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, CONTROL_PRIORITY, DATA_PRIORITY};

    fn test_switch() -> Switch {
        let mut sw = Switch::new(NodeId(0), 4, SwitchConfig::paper_default());
        sw.routes.insert(NodeId(10), vec![PortId(0)]);
        sw.routes
            .insert(NodeId(11), vec![PortId(1), PortId(2), PortId(3)]);
        sw
    }

    #[test]
    fn paper_default_protects_data_not_control() {
        let sw = test_switch();
        assert!(sw.is_lossless(DATA_PRIORITY as usize));
        assert!(!sw.is_lossless(CONTROL_PRIORITY as usize));
        let lossy = Switch::new(NodeId(0), 4, SwitchConfig::paper_default().without_pfc());
        assert!(!lossy.is_lossless(DATA_PRIORITY as usize));
    }

    #[test]
    fn route_is_deterministic_per_flow() {
        let sw = test_switch();
        let pkt =
            |flow: u64| Packet::data(NodeId(5), NodeId(11), FlowId(flow), DATA_PRIORITY, 0, 1000);
        for flow in 0..50 {
            let a = sw.route(&pkt(flow), 42).unwrap();
            let b = sw.route(&pkt(flow), 42).unwrap();
            assert_eq!(a, b, "same flow, same salt, same port");
        }
    }

    #[test]
    fn route_spreads_flows_across_equal_cost_ports() {
        let sw = test_switch();
        let mut used = std::collections::HashSet::new();
        for flow in 0..100u64 {
            let pkt = Packet::data(NodeId(5), NodeId(11), FlowId(flow), DATA_PRIORITY, 0, 1000);
            used.insert(sw.route(&pkt, 42).unwrap());
        }
        assert_eq!(used.len(), 3, "all three ECMP ports get used");
    }

    #[test]
    fn salt_changes_the_draw() {
        let sw = test_switch();
        let pkt = Packet::data(NodeId(5), NodeId(11), FlowId(7), DATA_PRIORITY, 0, 1000);
        let draws: std::collections::HashSet<_> = (0..32u64)
            .map(|salt| sw.route(&pkt, salt).unwrap())
            .collect();
        assert!(draws.len() > 1, "different salts reach different ports");
    }

    #[test]
    fn unroutable_destination_returns_none() {
        let sw = test_switch();
        let pkt = Packet::data(NodeId(5), NodeId(99), FlowId(1), DATA_PRIORITY, 0, 1000);
        assert!(sw.route(&pkt, 0).is_none());
    }

    #[test]
    fn wide_topologies_widen_the_buffer_profile() {
        let sw = Switch::new(NodeId(0), 48, SwitchConfig::paper_default());
        assert_eq!(sw.buffer.config().num_ports, 48);
        // Narrow ones keep the paper's 32-port arithmetic.
        let sw2 = Switch::new(NodeId(0), 4, SwitchConfig::paper_default());
        assert_eq!(sw2.buffer.config().num_ports, 32);
    }

    #[test]
    fn config_builders() {
        let c = SwitchConfig::paper_default()
            .with_red(RedConfig::cutoff(1000))
            .without_pfc();
        assert_eq!(c.red.kmin_bytes, 1000);
        assert!(!c.pfc_enabled);
        assert!(c.qcn.is_none());
        let q = QcnCpConfig::default();
        assert!(q.q_eq_bytes > 0 && q.sample_bytes > 0);
    }
}
