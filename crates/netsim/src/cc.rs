//! The pluggable congestion-control interface between a host NIC and a
//! per-flow algorithm (DCQCN's RP, QCN's RP, DCTCP, or nothing).
//!
//! Algorithms come in two styles and the trait supports both:
//!
//! * **rate-based** (DCQCN, QCN): the NIC paces each flow at
//!   [`CongestionControl::rate`]; `window` returns `None`.
//! * **window-based** (DCTCP): `window` returns the congestion window in
//!   bytes and the NIC sends at line rate while un-ACKed bytes fit in it.
//!
//! Algorithms arm timers through [`CcActions`]; the host turns them into
//! simulator events and routes expiry back via `on_timer`. Cancellation is
//! lazy: re-arming a timer id supersedes the old deadline, and stale
//! expirations are filtered by the host before they reach the algorithm.

use crate::units::{Bandwidth, Duration, Time};

/// Actions an algorithm requests from its NIC during a callback.
#[derive(Debug, Default)]
pub struct CcActions {
    /// `(timer_id, deadline)` pairs to (re-)arm. A deadline of
    /// [`Time::NEVER`] disarms the timer.
    pub timers: Vec<(u32, Time)>,
}

impl CcActions {
    /// Arms (or re-arms) timer `id` to fire at `at`.
    pub fn arm(&mut self, id: u32, at: Time) {
        self.timers.push((id, at));
    }

    /// Disarms timer `id`.
    pub fn disarm(&mut self, id: u32) {
        self.timers.push((id, Time::NEVER));
    }

    /// Empties the action list, keeping its allocation. The host reuses
    /// one `CcActions` as a scratch buffer across every CC callback, so
    /// the per-packet path allocates nothing here.
    pub fn clear(&mut self) {
        self.timers.clear();
    }
}

/// A snapshot of an algorithm's internal state for the `sanitize`
/// invariant auditor ([`crate::audit::Auditor::check_cc`]). Rate-based
/// algorithms expose their current/target rates and, if they keep one,
/// their congestion estimator α; the auditor checks the paper's domains
/// (`0 ≤ α ≤ 1`, `R_C ≤ R_T ≤ line rate`).
#[derive(Debug, Clone, Copy)]
pub struct CcAuditInfo {
    /// Current sending rate R_C.
    pub rate: Bandwidth,
    /// Target rate R_T (equals `rate` for algorithms without one).
    pub target: Bandwidth,
    /// The flow's line rate (upper bound on both).
    pub line: Bandwidth,
    /// Congestion estimator α, if the algorithm keeps one.
    pub alpha: Option<f64>,
}

/// A per-flow congestion-control algorithm.
pub trait CongestionControl: Send {
    /// Current permitted sending rate. Window-based algorithms return the
    /// line rate here (pacing disabled) and bound in-flight data instead.
    fn rate(&self) -> Bandwidth;

    /// Congestion window in bytes for window-based algorithms, `None` for
    /// rate-based ones.
    fn window(&self) -> Option<u64> {
        None
    }

    /// A CNP for this flow arrived at the sender.
    fn on_cnp(&mut self, _now: Time, _actions: &mut CcActions) {}

    /// An ACK arrived covering `acked_bytes`, of which `marked` out of
    /// `acked_pkts` data packets carried CE (DCTCP's ECN-echo stream).
    /// `rtt` is the send-to-ACK time of the newest covered packet, absent
    /// when that packet was retransmitted (Karn's rule) — RTT-based
    /// algorithms (TIMELY) consume it.
    fn on_ack(
        &mut self,
        _now: Time,
        _acked_bytes: u64,
        _acked_pkts: u32,
        _marked: u32,
        _rtt: Option<Duration>,
        _actions: &mut CcActions,
    ) {
    }

    /// A QCN feedback message with quantized value `fb` arrived.
    fn on_qcn_feedback(&mut self, _now: Time, _fb: u8, _actions: &mut CcActions) {}

    /// The NIC put `bytes` of this flow on the wire (drives byte counters).
    fn on_send(&mut self, _now: Time, _bytes: u64, _actions: &mut CcActions) {}

    /// A packet of this flow was lost (sender noticed via NAK or timeout).
    fn on_loss(&mut self, _now: Time, _actions: &mut CcActions) {}

    /// A previously armed timer fired.
    fn on_timer(&mut self, _now: Time, _id: u32, _actions: &mut CcActions) {}

    /// The flow was idle long enough that its state resets; the paper's
    /// flows (re)start at line rate ("hyper-fast start in the common case").
    fn reset(&mut self, _now: Time, _actions: &mut CcActions) {}

    /// Short algorithm name for logs and stats.
    fn name(&self) -> &'static str;

    /// State snapshot for the `sanitize` invariant auditor. `None` (the
    /// default) opts the algorithm out of domain checks.
    fn audit_info(&self) -> Option<CcAuditInfo> {
        None
    }
}

/// No congestion control at all: send at line rate forever. This is the
/// paper's "No DCQCN" / PFC-only configuration.
#[derive(Debug, Clone)]
pub struct NoCc {
    line_rate: Bandwidth,
}

impl NoCc {
    /// A flow that always sends at `line_rate`.
    pub fn new(line_rate: Bandwidth) -> NoCc {
        NoCc { line_rate }
    }
}

impl CongestionControl for NoCc {
    fn rate(&self) -> Bandwidth {
        self.line_rate
    }
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Factory that builds a fresh congestion-control instance per flow, given
/// the flow's line rate. Lets experiment code configure hosts declaratively.
pub type CcFactory = Box<dyn Fn(Bandwidth) -> Box<dyn CongestionControl> + Send>;

/// A factory for [`NoCc`].
pub fn no_cc_factory() -> CcFactory {
    Box::new(|line| Box::new(NoCc::new(line)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cc_always_line_rate() {
        let mut cc = NoCc::new(Bandwidth::gbps(40));
        let mut a = CcActions::default();
        cc.on_cnp(Time::ZERO, &mut a);
        cc.on_loss(Time::ZERO, &mut a);
        cc.on_ack(Time::ZERO, 1500, 1, 1, None, &mut a);
        assert_eq!(cc.rate(), Bandwidth::gbps(40));
        assert_eq!(cc.window(), None);
        assert!(a.timers.is_empty());
        assert_eq!(cc.name(), "none");
    }

    #[test]
    fn factory_builds_per_flow_instances() {
        let f = no_cc_factory();
        let cc = f(Bandwidth::gbps(10));
        assert_eq!(cc.rate(), Bandwidth::gbps(10));
    }

    #[test]
    fn actions_arm_and_disarm() {
        let mut a = CcActions::default();
        a.arm(1, Time::from_micros(55));
        a.disarm(1);
        assert_eq!(a.timers.len(), 2);
        assert_eq!(a.timers[1], (1, Time::NEVER));
    }
}
