//! Deterministic fault injection: link failures, bit errors, pause storms
//! and ECN misconfiguration, scheduled through the ordinary event queue.
//!
//! The paper's deployment experience (§6) is a catalog of the ways a
//! PFC-protected fabric fails *ugly*: dead links force BGP reroutes, a
//! malfunctioning NIC can emit a continuous PFC pause storm that freezes
//! whole sub-trees, and misconfigured switches stop marking. A simulator
//! that only models the healthy fabric cannot reproduce any of that, so
//! this module adds a **fault plan**: a declarative list of
//! `(time, action)` pairs that the network schedules as [`crate::event::Event::Fault`]
//! events at [`crate::network::Network::install_faults`] time. A run with
//! a fault plan is exactly as deterministic as one without — the plan is
//! data, the bit-error draws come from a dedicated [`SplitMix64`] stream
//! (so they never perturb RED sampling), and everything executes in the
//! global `(time, seq)` event order.
//!
//! The degradation machinery that *reacts* to faults lives with the
//! component it protects: the PFC storm watchdog in [`crate::switch`], route
//! failover in [`crate::network`] (re-running [`crate::routing::compute_routes_masked`]
//! over the live links), and exponential RTO backoff in [`crate::host`].

use crate::event::{LinkId, NodeId, PortId};
use crate::port::Attachment;
use crate::rng::SplitMix64;
use crate::telemetry::spans::PauseEdge;
use crate::units::{Duration, Time};

/// The causal-tracing edge describing one malfunctioning-NIC storm tick:
/// a PAUSE from the host's NIC (`att` is its access attachment) to its
/// switch, tagged `storm` so the congestion tree can tell fault-injected
/// roots apart from genuine buffer-pressure PAUSEs (which carry the
/// occupancy/threshold that justified them; a storm has neither).
pub fn storm_pause_edge(host: NodeId, att: Attachment, class: u8, at: Time) -> PauseEdge {
    PauseEdge {
        at,
        from: host,
        from_port: PortId(0),
        to: att.peer,
        to_port: att.peer_port,
        class,
        pause: true,
        storm: true,
        depth: 0,
        threshold: 0,
    }
}

/// One scheduled fault action, carried inside [`crate::event::Event::Fault`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Take a link down. Both directions fail together (as a cut fiber
    /// does); frames in flight or transmitted while down are lost.
    LinkDown {
        /// The failing link.
        link: LinkId,
    },
    /// Bring a link back up. PFC pause state on both endpoints is cleared
    /// (a link reset expires outstanding pause, exactly like hardware).
    LinkUp {
        /// The recovering link.
        link: LinkId,
    },
    /// Set a link's per-frame corruption probability. Corrupted frames
    /// fail CRC at the receiver and are dropped — *even on lossless
    /// classes*, which is precisely why RoCE needs go-back-N at all.
    SetBitError {
        /// The degraded link.
        link: LinkId,
        /// Probability that any single frame is corrupted (0 heals).
        drop_prob: f64,
    },
    /// One tick of a malfunctioning-NIC pause storm: the host emits a PFC
    /// PAUSE for `class` on its access link, then the tick reschedules
    /// itself every `refresh` until `until`. With a refresh shorter than
    /// the victim switch can drain, the uplink port is paused continuously
    /// — the §6 pause-storm failure mode.
    PauseStormTick {
        /// The malfunctioning host.
        host: NodeId,
        /// The priority class being paused.
        class: u8,
        /// Storm end time (no tick fires after this).
        until: Time,
        /// Gap between successive PAUSE frames.
        refresh: Duration,
    },
    /// Disable ECN marking at one switch (misconfiguration: the switch
    /// falls back to pure PFC and congestion spreading resumes).
    EcnOff {
        /// The misconfigured switch.
        switch: NodeId,
    },
    /// Test-only firmware-bug emulation: trip the PFC storm watchdog on
    /// one (switch, port, class) *without* scheduling its recovery — the
    /// class ignores PAUSE forever. No real fault vocabulary entry maps
    /// here and the chaos generator never emits it; it exists so the
    /// convergence auditor's stuck-watchdog detection (and the case
    /// shrinker downstream of it) can be exercised end-to-end.
    WedgeWatchdog {
        /// The switch whose watchdog wedges.
        switch: NodeId,
        /// The afflicted port.
        port: PortId,
        /// The afflicted priority class.
        class: u8,
    },
}

/// A declarative, reproducible fault plan: `(time, action)` pairs built
/// with a fluent API and installed via
/// [`crate::network::Network::install_faults`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    actions: Vec<(Time, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The scheduled `(time, action)` pairs, in insertion order.
    pub fn actions(&self) -> &[(Time, FaultAction)] {
        &self.actions
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Fails `link` at `at`.
    pub fn link_down(mut self, at: Time, link: LinkId) -> FaultPlan {
        self.actions.push((at, FaultAction::LinkDown { link }));
        self
    }

    /// Restores `link` at `at`.
    pub fn link_up(mut self, at: Time, link: LinkId) -> FaultPlan {
        self.actions.push((at, FaultAction::LinkUp { link }));
        self
    }

    /// Flaps `link` `count` times: down at `first_down + k·period`, back
    /// up `down_for` later, for `k = 0..count`.
    pub fn link_flap(
        mut self,
        link: LinkId,
        first_down: Time,
        down_for: Duration,
        period: Duration,
        count: u32,
    ) -> FaultPlan {
        debug_assert!(
            down_for < period,
            "flap must come back up within its period"
        );
        for k in 0..count as u64 {
            let down = first_down + period.saturating_mul(k);
            self.actions.push((down, FaultAction::LinkDown { link }));
            self.actions
                .push((down + down_for, FaultAction::LinkUp { link }));
        }
        self
    }

    /// Sets `link`'s per-frame corruption probability to `drop_prob` at
    /// `at` (use 0.0 to heal).
    pub fn bit_error(mut self, at: Time, link: LinkId, drop_prob: f64) -> FaultPlan {
        self.actions
            .push((at, FaultAction::SetBitError { link, drop_prob }));
        self
    }

    /// `host` emits continuous PFC PAUSE for `class` on its access link
    /// from `from` until `until`, one frame every `refresh`.
    pub fn pause_storm(
        mut self,
        host: NodeId,
        class: u8,
        from: Time,
        until: Time,
        refresh: Duration,
    ) -> FaultPlan {
        debug_assert!(refresh > Duration::ZERO, "storm refresh must be positive");
        self.actions.push((
            from,
            FaultAction::PauseStormTick {
                host,
                class,
                until,
                refresh,
            },
        ));
        self
    }

    /// Disables ECN marking at `switch` at `at`.
    pub fn ecn_off(mut self, at: Time, switch: NodeId) -> FaultPlan {
        self.actions.push((at, FaultAction::EcnOff { switch }));
        self
    }

    /// Wedges the PFC storm watchdog on `(switch, port, class)` at `at`
    /// (test-only; see [`FaultAction::WedgeWatchdog`]).
    pub fn wedge_watchdog(
        mut self,
        at: Time,
        switch: NodeId,
        port: PortId,
        class: u8,
    ) -> FaultPlan {
        self.actions.push((
            at,
            FaultAction::WedgeWatchdog {
                switch,
                port,
                class,
            },
        ));
        self
    }

    /// The latest instant at which any planned action is still acting:
    /// a storm keeps ticking until its `until`; everything else acts at
    /// its scheduled time. `Time::ZERO` for an empty plan. Convergence
    /// settling windows start here.
    pub fn horizon(&self) -> Time {
        self.actions
            .iter()
            .map(|&(at, action)| match action {
                FaultAction::PauseStormTick { until, .. } => at.max(until),
                _ => at,
            })
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Rejects overlapping or nested events on the same resource, the
    /// interleavings whose semantics would otherwise be undefined:
    ///
    /// * a `LinkDown` while that link is already down (flap-during-down),
    /// * a `LinkUp` while that link is already up,
    /// * two up/down transitions of the same link at the same instant
    ///   (their relative order would depend on insertion order),
    /// * two pause storms on the same (host, class) with overlapping
    ///   windows (their refresh chains would interleave unpredictably).
    ///
    /// Bit errors, ECN-off and watchdog wedges are level-set operations
    /// (the last write wins) and may appear anywhere — including during a
    /// down window, which is well-defined: a down link drops everything
    /// regardless of its corruption probability.
    pub fn validate(&self) -> Result<(), String> {
        // Per-link transition timelines. Links start up.
        let mut transitions: std::collections::BTreeMap<usize, Vec<(Time, bool)>> =
            std::collections::BTreeMap::new();
        // Per-(host, class) storm windows.
        let mut storms: std::collections::BTreeMap<(usize, u8), Vec<(Time, Time)>> =
            std::collections::BTreeMap::new();
        for &(at, action) in &self.actions {
            match action {
                FaultAction::LinkDown { link } => {
                    transitions.entry(link.0).or_default().push((at, false));
                }
                FaultAction::LinkUp { link } => {
                    transitions.entry(link.0).or_default().push((at, true));
                }
                FaultAction::PauseStormTick {
                    host, class, until, ..
                } => {
                    storms.entry((host.0, class)).or_default().push((at, until));
                }
                FaultAction::SetBitError { .. }
                | FaultAction::EcnOff { .. }
                | FaultAction::WedgeWatchdog { .. } => {}
            }
        }
        for (link, events) in &mut transitions {
            events.sort_by_key(|&(at, _)| at);
            let mut up = true;
            let mut prev_at = None;
            for &(at, to_up) in events.iter() {
                if prev_at == Some(at) {
                    return Err(format!(
                        "fault plan invalid: link {link} has two transitions at {at} \
                         (their order would be undefined)"
                    ));
                }
                prev_at = Some(at);
                if to_up == up {
                    let state = if up { "up" } else { "down" };
                    let verb = if to_up { "up" } else { "down" };
                    return Err(format!(
                        "fault plan invalid: link {link} taken {verb} at {at} \
                         while already {state} (overlapping/nested fault windows)"
                    ));
                }
                up = to_up;
            }
        }
        for ((host, class), windows) in &mut storms {
            windows.sort_by_key(|&(from, _)| from);
            for pair in windows.windows(2) {
                let (from_a, until_a) = pair[0];
                let (from_b, _) = pair[1];
                if from_b <= until_a {
                    return Err(format!(
                        "fault plan invalid: host {host} class {class} has \
                         overlapping pause storms ([{from_a}, {until_a}] and \
                         one starting at {from_b})"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// How the fault layer reacts to fault-driven topology changes.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Recompute ECMP routes over the live links on every link state
    /// change (BGP-style failover). With this off, switches keep hashing
    /// flows onto dead next-hops — the pre-reconvergence black hole.
    pub failover: bool,
    /// Seed of the dedicated bit-error RNG stream. Kept separate from the
    /// simulator seed so installing a fault plan never shifts the RED
    /// marking draws of the fault-free portion of a run.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            failover: true,
            seed: 0xFA17,
        }
    }
}

/// Counters kept by the fault layer (always cheap to read; all zero when
/// no fault plan is installed).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Frames lost because their link was down at delivery time.
    pub link_drops: u64,
    /// Frames lost to injected bit errors (CRC failure at the receiver).
    pub crc_drops: u64,
    /// Link up/down transitions executed.
    pub transitions: u64,
    /// Route recomputations performed (failover).
    pub reroutes: u64,
    /// PAUSE frames injected by pause storms.
    pub storm_pauses: u64,
}

/// Per-link fault state.
#[derive(Debug, Clone, Copy)]
pub struct LinkState {
    /// Is the link carrying frames?
    pub up: bool,
    /// Per-frame corruption probability (0 = healthy).
    pub drop_prob: f64,
}

impl Default for LinkState {
    fn default() -> LinkState {
        LinkState {
            up: true,
            drop_prob: 0.0,
        }
    }
}

/// What happened to a frame crossing a (possibly faulty) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFate {
    /// Delivered intact.
    Deliver,
    /// Lost: the link is down.
    DownDrop,
    /// Lost: corrupted in flight, dropped on CRC failure.
    CrcDrop,
}

/// The network's fault state: link health, the bit-error RNG stream and
/// the fault counters. Inert (one `active` branch on the delivery path)
/// until a fault plan is installed or a link is forced down.
#[derive(Debug)]
pub struct FaultEngine {
    /// Reaction knobs (failover on/off, RNG seed).
    pub config: FaultConfig,
    /// Fault counters.
    pub stats: FaultStats,
    /// Per-link health, indexed by `LinkId.0`.
    pub links: Vec<LinkState>,
    /// Hot-path guard: when false, the delivery path skips the fault
    /// layer entirely and a run is byte-identical to pre-fault builds.
    pub active: bool,
    rng: SplitMix64,
}

impl FaultEngine {
    /// An inactive engine covering `num_links` healthy links.
    pub fn inactive(num_links: usize) -> FaultEngine {
        FaultEngine {
            config: FaultConfig::default(),
            stats: FaultStats::default(),
            links: vec![LinkState::default(); num_links],
            active: false,
            rng: SplitMix64::new(FaultConfig::default().seed),
        }
    }

    /// Activates the engine with `config` (re-seeds the bit-error stream).
    pub fn activate(&mut self, config: FaultConfig) {
        self.config = config;
        self.rng = SplitMix64::new(config.seed);
        self.active = true;
    }

    /// Is `link` up?
    pub fn link_up(&self, link: LinkId) -> bool {
        self.links[link.0].up
    }

    /// Decides the fate of one frame crossing `link`, updating counters.
    /// Bit errors hit every frame kind alike — data, ACKs, even PFC
    /// frames (a corrupted RESUME is one of the stuck-queue stories the
    /// watchdog exists for).
    pub fn wire_fate(&mut self, link: LinkId) -> WireFate {
        let st = self.links[link.0];
        if !st.up {
            self.stats.link_drops += 1;
            return WireFate::DownDrop;
        }
        if st.drop_prob > 0.0 && self.rng.chance(st.drop_prob) {
            self.stats.crc_drops += 1;
            return WireFate::CrcDrop;
        }
        WireFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_expands_to_paired_transitions() {
        let plan = FaultPlan::new().link_flap(
            LinkId(3),
            Time::from_millis(5),
            Duration::from_millis(1),
            Duration::from_millis(4),
            2,
        );
        let a = plan.actions();
        assert_eq!(a.len(), 4);
        assert_eq!(
            a[0],
            (
                Time::from_millis(5),
                FaultAction::LinkDown { link: LinkId(3) }
            )
        );
        assert_eq!(
            a[1],
            (
                Time::from_millis(6),
                FaultAction::LinkUp { link: LinkId(3) }
            )
        );
        assert_eq!(
            a[2],
            (
                Time::from_millis(9),
                FaultAction::LinkDown { link: LinkId(3) }
            )
        );
        assert_eq!(
            a[3],
            (
                Time::from_millis(10),
                FaultAction::LinkUp { link: LinkId(3) }
            )
        );
    }

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new()
            .link_down(Time::from_millis(1), LinkId(0))
            .bit_error(Time::from_millis(2), LinkId(1), 1e-3)
            .pause_storm(
                NodeId(7),
                3,
                Time::from_millis(3),
                Time::from_millis(4),
                Duration::from_micros(10),
            )
            .ecn_off(Time::from_millis(5), NodeId(2))
            .link_up(Time::from_millis(6), LinkId(0));
        assert_eq!(plan.actions().len(), 5);
        assert!(!plan.is_empty());
        assert!(matches!(
            plan.actions()[2].1,
            FaultAction::PauseStormTick {
                host: NodeId(7),
                class: 3,
                ..
            }
        ));
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        let plan = FaultPlan::new()
            .link_flap(
                LinkId(0),
                Time::from_millis(1),
                Duration::from_millis(1),
                Duration::from_millis(4),
                3,
            )
            .bit_error(Time::from_millis(2), LinkId(0), 1e-3) // during down: fine
            .bit_error(Time::from_millis(9), LinkId(0), 0.0)
            .pause_storm(
                NodeId(7),
                3,
                Time::from_millis(1),
                Time::from_millis(2),
                Duration::from_micros(10),
            )
            .pause_storm(
                NodeId(7),
                3,
                Time::from_millis(3), // disjoint window, same (host, class)
                Time::from_millis(4),
                Duration::from_micros(10),
            )
            .ecn_off(Time::from_millis(5), NodeId(2))
            .wedge_watchdog(Time::from_millis(6), NodeId(2), PortId(1), 3);
        assert_eq!(plan.validate(), Ok(()));
        assert_eq!(plan.horizon(), Time::from_millis(10), "last flap's up");
    }

    #[test]
    fn validate_rejects_down_while_down() {
        let plan = FaultPlan::new()
            .link_down(Time::from_millis(1), LinkId(2))
            .link_down(Time::from_millis(2), LinkId(2))
            .link_up(Time::from_millis(3), LinkId(2));
        let err = plan.validate().unwrap_err();
        assert!(
            err.contains("link 2") && err.contains("already down"),
            "{err}"
        );
        // The same overlap on *different* links is fine.
        let ok = FaultPlan::new()
            .link_down(Time::from_millis(1), LinkId(2))
            .link_down(Time::from_millis(2), LinkId(3))
            .link_up(Time::from_millis(3), LinkId(2))
            .link_up(Time::from_millis(4), LinkId(3));
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_up_while_up_and_flap_overlap() {
        let up = FaultPlan::new().link_up(Time::from_millis(1), LinkId(0));
        assert!(up.validate().unwrap_err().contains("already up"));
        // Two flaps of the same link whose windows interleave: the second
        // flap's down lands inside the first flap's down window.
        let overlap = FaultPlan::new()
            .link_flap(
                LinkId(1),
                Time::from_millis(1),
                Duration::from_millis(3),
                Duration::from_millis(10),
                1,
            )
            .link_flap(
                LinkId(1),
                Time::from_millis(2),
                Duration::from_millis(1),
                Duration::from_millis(10),
                1,
            );
        assert!(overlap.validate().is_err());
    }

    #[test]
    fn validate_rejects_same_instant_transitions() {
        let plan = FaultPlan::new()
            .link_down(Time::from_millis(5), LinkId(4))
            .link_up(Time::from_millis(5), LinkId(4));
        assert!(plan.validate().unwrap_err().contains("two transitions"));
    }

    #[test]
    fn validate_rejects_overlapping_storms() {
        let plan = FaultPlan::new()
            .pause_storm(
                NodeId(1),
                3,
                Time::from_millis(1),
                Time::from_millis(5),
                Duration::from_micros(10),
            )
            .pause_storm(
                NodeId(1),
                3,
                Time::from_millis(4),
                Time::from_millis(8),
                Duration::from_micros(10),
            );
        assert!(plan
            .validate()
            .unwrap_err()
            .contains("overlapping pause storms"));
        // Same window on a different class is independent.
        let ok = FaultPlan::new()
            .pause_storm(
                NodeId(1),
                3,
                Time::from_millis(1),
                Time::from_millis(5),
                Duration::from_micros(10),
            )
            .pause_storm(
                NodeId(1),
                4,
                Time::from_millis(4),
                Time::from_millis(8),
                Duration::from_micros(10),
            );
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn horizon_of_empty_plan_is_zero() {
        assert_eq!(FaultPlan::new().horizon(), Time::ZERO);
        let storm = FaultPlan::new().pause_storm(
            NodeId(0),
            3,
            Time::from_millis(1),
            Time::from_millis(7),
            Duration::from_micros(50),
        );
        assert_eq!(storm.horizon(), Time::from_millis(7));
    }

    #[test]
    fn wire_fate_on_healthy_link_always_delivers() {
        let mut eng = FaultEngine::inactive(2);
        for _ in 0..100 {
            assert_eq!(eng.wire_fate(LinkId(0)), WireFate::Deliver);
        }
        assert_eq!(eng.stats.link_drops + eng.stats.crc_drops, 0);
    }

    #[test]
    fn wire_fate_on_down_link_drops_everything() {
        let mut eng = FaultEngine::inactive(2);
        eng.links[1].up = false;
        for _ in 0..10 {
            assert_eq!(eng.wire_fate(LinkId(1)), WireFate::DownDrop);
        }
        assert_eq!(eng.stats.link_drops, 10);
        assert!(eng.link_up(LinkId(0)) && !eng.link_up(LinkId(1)));
    }

    #[test]
    fn bit_errors_drop_roughly_at_rate_and_deterministically() {
        let mut a = FaultEngine::inactive(1);
        a.activate(FaultConfig {
            failover: true,
            seed: 99,
        });
        a.links[0].drop_prob = 0.05;
        let fates_a: Vec<WireFate> = (0..10_000).map(|_| a.wire_fate(LinkId(0))).collect();
        let drops = a.stats.crc_drops;
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.05).abs() < 0.01, "crc rate {rate}");

        let mut b = FaultEngine::inactive(1);
        b.activate(FaultConfig {
            failover: true,
            seed: 99,
        });
        b.links[0].drop_prob = 0.05;
        let fates_b: Vec<WireFate> = (0..10_000).map(|_| b.wire_fate(LinkId(0))).collect();
        assert_eq!(fates_a, fates_b, "same seed, same corruption pattern");
    }
}
