//! Packet and frame definitions.
//!
//! The simulator models RoCEv2-style traffic: UDP/IP-encapsulated IB
//! transport segments, plus the control frames the paper's machinery needs —
//! acknowledgements (with NAK for go-back-N), Congestion Notification
//! Packets (CNPs, RoCEv2 §17.9) and link-local PFC PAUSE/RESUME frames
//! (802.1Qbb).

use crate::event::NodeId;

/// Per-data-packet protocol overhead in bytes: Ethernet (18, header + FCS),
/// IPv4 (20), UDP (8), IB BTH (12) and ICRC + padding (6).
pub const HEADER_BYTES: u64 = 64;

/// Wire size of small control frames (ACK/NAK/CNP/PFC): minimum Ethernet
/// frame.
pub const CONTROL_BYTES: u64 = 64;

/// Globally unique flow identifier (stands in for the 5-tuple / queue pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// 802.1p priority / PFC class. Lower value = higher scheduling priority in
/// this simulator.
pub type Priority = u8;

/// Number of PFC priority classes, as in the paper's switches.
pub const NUM_PRIORITIES: usize = 8;

/// Priority used for control traffic (ACKs and CNPs). The paper sends CNPs
/// "with high priority, to avoid missing the CNP deadline".
pub const CONTROL_PRIORITY: Priority = 0;

/// Default priority class for RDMA data traffic.
pub const DATA_PRIORITY: Priority = 3;

/// ECN codepoint carried in the IP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ecn {
    /// Not ECN-capable transport (control frames).
    NotEct,
    /// ECN-capable, not marked.
    Ect,
    /// Congestion experienced (marked by a switch).
    Ce,
}

/// What a packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// An RoCE data segment: `psn` sequence number, true payload bytes,
    /// and an end-of-message flag (the receiver ACKs message tails
    /// immediately, like RoCE's per-operation acknowledgements).
    Data {
        /// Packet sequence number.
        psn: u64,
        /// Payload bytes carried.
        payload: u64,
        /// Last packet of its message.
        eom: bool,
    },
    /// Cumulative acknowledgement: everything below `cum_psn` received in
    /// order. `acked` / `marked` count data packets (and CE-marked ones)
    /// covered since the previous ACK — DCTCP uses the ratio.
    Ack {
        /// Next PSN the receiver expects (everything below is delivered).
        cum_psn: u64,
        /// Data packets newly covered by this ACK.
        acked: u32,
        /// How many of those carried CE.
        marked: u32,
    },
    /// Out-of-sequence NAK (go-back-N): receiver expected `expected_psn`.
    Nack {
        /// The PSN the receiver needs next.
        expected_psn: u64,
    },
    /// Congestion Notification Packet sent by the NP to the flow's source.
    Cnp,
    /// Link-local PFC frame for `class`; `pause == false` means RESUME (the
    /// paper's switches use Xoff/Xon rather than timed pause quanta).
    Pfc {
        /// The 802.1p class the frame applies to.
        class: Priority,
        /// PAUSE (true) or RESUME (false).
        pause: bool,
    },
    /// QCN congestion notification message carrying the quantized feedback
    /// value Fb (used only by the QCN baseline).
    QcnFeedback {
        /// Quantized 6-bit congestion feedback.
        fb: u8,
    },
}

/// A packet in flight or queued. All-POD and `Copy`: moving packets
/// between pool slots and the wire is a memcpy, never an allocation.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// What this packet is.
    pub kind: PacketKind,
    /// Originating host (or switch, for PFC frames).
    pub src: NodeId,
    /// Destination host. PFC frames are consumed by the immediate neighbor
    /// and never routed, so their `dst` is the neighbor.
    pub dst: NodeId,
    /// Flow this packet belongs to (ACK/NAK/CNP reference the data flow).
    pub flow: FlowId,
    /// PFC / scheduling class.
    pub priority: Priority,
    /// Total bytes occupied on the wire and in switch buffers.
    pub wire_bytes: u64,
    /// ECN codepoint.
    pub ecn: Ecn,
}

impl Packet {
    /// Builds a data segment of `payload` bytes.
    pub fn data(
        src: NodeId,
        dst: NodeId,
        flow: FlowId,
        priority: Priority,
        psn: u64,
        payload: u64,
    ) -> Packet {
        Packet {
            kind: PacketKind::Data {
                psn,
                payload,
                eom: false,
            },
            src,
            dst,
            flow,
            priority,
            wire_bytes: payload + HEADER_BYTES,
            ecn: Ecn::Ect,
        }
    }

    /// Builds a cumulative ACK (optionally carrying DCTCP-style ECN-echo
    /// counts).
    pub fn ack(
        src: NodeId,
        dst: NodeId,
        flow: FlowId,
        cum_psn: u64,
        acked: u32,
        marked: u32,
    ) -> Packet {
        Packet {
            kind: PacketKind::Ack {
                cum_psn,
                acked,
                marked,
            },
            src,
            dst,
            flow,
            priority: CONTROL_PRIORITY,
            wire_bytes: CONTROL_BYTES,
            ecn: Ecn::NotEct,
        }
    }

    /// Builds a go-back-N NAK.
    pub fn nack(src: NodeId, dst: NodeId, flow: FlowId, expected_psn: u64) -> Packet {
        Packet {
            kind: PacketKind::Nack { expected_psn },
            src,
            dst,
            flow,
            priority: CONTROL_PRIORITY,
            wire_bytes: CONTROL_BYTES,
            ecn: Ecn::NotEct,
        }
    }

    /// Builds a CNP addressed to the flow's source.
    pub fn cnp(src: NodeId, dst: NodeId, flow: FlowId) -> Packet {
        Packet {
            kind: PacketKind::Cnp,
            src,
            dst,
            flow,
            priority: CONTROL_PRIORITY,
            wire_bytes: CONTROL_BYTES,
            ecn: Ecn::NotEct,
        }
    }

    /// Builds a link-local PFC PAUSE (`pause = true`) or RESUME frame.
    pub fn pfc(src: NodeId, dst: NodeId, class: Priority, pause: bool) -> Packet {
        Packet {
            kind: PacketKind::Pfc { class, pause },
            src,
            dst,
            flow: FlowId(u64::MAX),
            priority: CONTROL_PRIORITY,
            wire_bytes: CONTROL_BYTES,
            ecn: Ecn::NotEct,
        }
    }

    /// Builds a QCN feedback message (baseline only).
    pub fn qcn_feedback(src: NodeId, dst: NodeId, flow: FlowId, fb: u8) -> Packet {
        Packet {
            kind: PacketKind::QcnFeedback { fb },
            src,
            dst,
            flow,
            priority: CONTROL_PRIORITY,
            wire_bytes: CONTROL_BYTES,
            ecn: Ecn::NotEct,
        }
    }

    /// True for RoCE data segments.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }

    /// True for link-local PFC frames.
    pub fn is_pfc(&self) -> bool {
        matches!(self.kind, PacketKind::Pfc { .. })
    }

    /// Payload bytes (0 for control frames).
    pub fn payload(&self) -> u64 {
        match self.kind {
            PacketKind::Data { payload, .. } => payload,
            _ => 0,
        }
    }

    /// Marks the packet with Congestion Experienced if it is ECN-capable.
    /// Returns true when a mark was applied.
    pub fn mark_ce(&mut self) -> bool {
        match self.ecn {
            Ecn::Ect => {
                self.ecn = Ecn::Ce;
                true
            }
            Ecn::Ce => true,
            Ecn::NotEct => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn data_wire_size_includes_headers() {
        let p = Packet::data(n(0), n(1), FlowId(7), DATA_PRIORITY, 0, 1436);
        assert_eq!(p.wire_bytes, 1500);
        assert_eq!(p.payload(), 1436);
        assert!(p.is_data());
        assert_eq!(p.ecn, Ecn::Ect);
    }

    #[test]
    fn control_frames_are_minimum_size_and_not_ect() {
        for p in [
            Packet::ack(n(0), n(1), FlowId(1), 10, 4, 1),
            Packet::nack(n(0), n(1), FlowId(1), 3),
            Packet::cnp(n(0), n(1), FlowId(1)),
            Packet::pfc(n(0), n(1), 3, true),
        ] {
            assert_eq!(p.wire_bytes, CONTROL_BYTES);
            assert_eq!(p.ecn, Ecn::NotEct);
            assert_eq!(p.payload(), 0);
            assert!(!p.is_data());
        }
    }

    #[test]
    fn pfc_frames_are_recognized() {
        let p = Packet::pfc(n(0), n(1), 3, false);
        assert!(p.is_pfc());
        match p.kind {
            PacketKind::Pfc { class, pause } => {
                assert_eq!(class, 3);
                assert!(!pause);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn marking_only_applies_to_ect() {
        let mut d = Packet::data(n(0), n(1), FlowId(1), 3, 0, 100);
        assert!(d.mark_ce());
        assert_eq!(d.ecn, Ecn::Ce);
        assert!(d.mark_ce(), "already-marked stays marked");

        let mut a = Packet::ack(n(0), n(1), FlowId(1), 1, 1, 0);
        assert!(!a.mark_ce());
        assert_eq!(a.ecn, Ecn::NotEct);
    }

    #[test]
    fn control_packets_use_control_priority() {
        assert_eq!(
            Packet::cnp(n(0), n(1), FlowId(1)).priority,
            CONTROL_PRIORITY
        );
        assert_eq!(
            Packet::ack(n(0), n(1), FlowId(1), 0, 0, 0).priority,
            CONTROL_PRIORITY
        );
    }
}
