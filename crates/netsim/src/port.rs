//! A transmit port: per-priority egress queues, PFC pause state, and the
//! transmitter itself. Used by both switches and host NICs.

use crate::event::{LinkId, NodeId, PortId};
use crate::packet::{Packet, NUM_PRIORITIES};
use crate::units::checked::{checked_accum, checked_drain};
use crate::units::{Bandwidth, Duration, Time};
use std::collections::VecDeque;

/// Where a port is plugged in: the link and the far end.
#[derive(Debug, Clone, Copy)]
pub struct Attachment {
    /// Link this port terminates.
    pub link: LinkId,
    /// Node on the other side.
    pub peer: NodeId,
    /// Port on the other side.
    pub peer_port: PortId,
    /// Link bandwidth (same both directions).
    pub bandwidth: Bandwidth,
    /// One-way propagation delay (includes forwarding pipeline latency).
    pub delay: Duration,
}

/// A queued packet plus the ingress attribution needed to release shared
/// buffer space when it finally leaves the switch. `None` for packets that
/// never occupied the shared buffer (host-generated, or switch-local PFC).
#[derive(Debug, Clone)]
pub struct Queued {
    /// The packet.
    pub pkt: Packet,
    /// `(ingress port index, priority)` for buffer release, if attributed.
    pub ingress: Option<(usize, usize)>,
    /// When the packet entered this egress queue (`Time::ZERO` when not
    /// stamped). Feeds the causal tracer's per-hop residency spans.
    pub enqueued_at: Time,
    /// Whether this entry is counted in `queued_bytes` (PFC frames from
    /// the dedicated queue are not).
    counted: bool,
}

impl Queued {
    /// A packet destined for the per-priority queues.
    pub fn new(pkt: Packet, ingress: Option<(usize, usize)>) -> Queued {
        Queued {
            pkt,
            ingress,
            enqueued_at: Time::ZERO,
            counted: false,
        }
    }

    /// Stamps the enqueue time (builder-style, for call sites that know
    /// the clock).
    pub fn at(mut self, now: Time) -> Queued {
        self.enqueued_at = now;
        self
    }
}

/// A transmit port with strict-priority scheduling across `NUM_PRIORITIES`
/// classes, plus a dedicated always-first queue for link-local PFC frames
/// (which must never be blocked or reordered behind data).
#[derive(Debug)]
pub struct Port {
    /// Link attachment; `None` for unconnected ports.
    pub attach: Option<Attachment>,
    /// True while the transmitter is serializing a packet.
    pub busy: bool,
    /// Locally generated PFC frames awaiting transmission.
    pub pfc_queue: VecDeque<Packet>,
    /// Per-priority FIFO egress queues.
    pub queues: Vec<VecDeque<Queued>>,
    /// Bytes queued per priority (wire bytes, including the in-flight
    /// packet's — a packet counts until its transmission completes).
    pub queued_bytes: [u64; NUM_PRIORITIES],
    /// Classes paused by a PFC PAUSE received *on this port* — we must stop
    /// transmitting them until RESUME.
    pub rx_paused: [bool; NUM_PRIORITIES],
    /// Classes for which *we* have paused the upstream neighbor (this port
    /// viewed as ingress). Used for RESUME hysteresis.
    pub tx_pause_sent: [bool; NUM_PRIORITIES],
    /// When each class's current rx pause began (`Time::NEVER` when not
    /// paused). Feeds the PFC storm watchdog.
    pub rx_paused_since: [Time; NUM_PRIORITIES],
    /// Classes whose incoming PAUSE is currently being *ignored* because
    /// the storm watchdog tripped (restored after its recovery interval).
    pub pfc_ignore: [bool; NUM_PRIORITIES],
    /// Classes with a live watchdog check chain (one chain per class, the
    /// soft-deadline pattern used by host timers).
    pub wd_armed: [bool; NUM_PRIORITIES],
    /// The packet currently being serialized.
    pub current: Option<Queued>,
}

impl Default for Port {
    fn default() -> Port {
        Port::new()
    }
}

impl Port {
    /// Creates an unattached, empty port.
    pub fn new() -> Port {
        Port {
            attach: None,
            busy: false,
            pfc_queue: VecDeque::new(),
            queues: (0..NUM_PRIORITIES).map(|_| VecDeque::new()).collect(),
            queued_bytes: [0; NUM_PRIORITIES],
            rx_paused: [false; NUM_PRIORITIES],
            tx_pause_sent: [false; NUM_PRIORITIES],
            rx_paused_since: [Time::NEVER; NUM_PRIORITIES],
            pfc_ignore: [false; NUM_PRIORITIES],
            wd_armed: [false; NUM_PRIORITIES],
            current: None,
        }
    }

    /// Enqueues a packet on its priority class.
    pub fn enqueue(&mut self, mut q: Queued) {
        let prio = q.pkt.priority as usize;
        q.counted = true;
        let ok = checked_accum(&mut self.queued_bytes[prio], q.pkt.wire_bytes);
        debug_assert!(ok, "queued_bytes overflow");
        self.queues[prio].push_back(q);
    }

    /// Total bytes across all priority queues.
    pub fn total_queued_bytes(&self) -> u64 {
        self.queued_bytes.iter().sum()
    }

    /// Picks the next packet to transmit under strict priority + PFC pause
    /// state, or `None` if nothing is eligible. PFC frames always win and
    /// are never paused.
    pub fn dequeue_next(&mut self) -> Option<Queued> {
        if let Some(pkt) = self.pfc_queue.pop_front() {
            return Some(Queued {
                pkt,
                ingress: None,
                enqueued_at: Time::ZERO,
                counted: false,
            });
        }
        for prio in 0..NUM_PRIORITIES {
            if self.rx_paused[prio] {
                continue;
            }
            if let Some(q) = self.queues[prio].pop_front() {
                return Some(q);
            }
        }
        None
    }

    /// True when some queue holds a transmittable packet right now.
    pub fn has_eligible(&self) -> bool {
        !self.pfc_queue.is_empty()
            || (0..NUM_PRIORITIES).any(|p| !self.rx_paused[p] && !self.queues[p].is_empty())
    }

    /// Called when a packet finishes serializing: drops the byte accounting
    /// it held (in-flight packets count toward `queued_bytes` until done).
    pub fn finish_current(&mut self) -> Option<Queued> {
        let q = self.current.take()?;
        if q.counted {
            let prio = q.pkt.priority as usize;
            let ok = checked_drain(&mut self.queued_bytes[prio], q.pkt.wire_bytes);
            debug_assert!(ok, "queued_bytes underflow");
        }
        Some(q)
    }

    /// Applies a received PFC frame to this port's transmit state.
    /// Returns true if a paused class was released (caller should retry
    /// transmission). PAUSE is discarded while the storm watchdog has the
    /// class in its ignore window; RESUME is always honored.
    pub fn apply_pfc(&mut self, class: u8, pause: bool, now: Time) -> bool {
        let c = class as usize;
        if pause && self.pfc_ignore[c] {
            return false;
        }
        let was = self.rx_paused[c];
        self.rx_paused[c] = pause;
        if pause {
            if !was {
                self.rx_paused_since[c] = now;
            }
        } else {
            self.rx_paused_since[c] = Time::NEVER;
        }
        was && !pause
    }

    /// Clears all PFC state, as a physical link reset does: outstanding
    /// rx pauses expire, our own PAUSE bookkeeping is forgotten (the far
    /// end lost its state too), and any watchdog ignore window ends.
    /// Called by the fault layer on link down *and* up transitions.
    pub fn reset_pfc(&mut self) {
        self.rx_paused = [false; NUM_PRIORITIES];
        self.rx_paused_since = [Time::NEVER; NUM_PRIORITIES];
        self.tx_pause_sent = [false; NUM_PRIORITIES];
        self.pfc_ignore = [false; NUM_PRIORITIES];
        // Undelivered PFC frames die with the link. A stale PAUSE sent
        // after the reset would pause a peer whose RESUME bookkeeping was
        // just forgotten — a permanent freeze.
        self.pfc_queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NodeId;
    use crate::packet::{FlowId, PacketKind};

    fn data(prio: u8, bytes: u64) -> Queued {
        let mut p = Packet::data(NodeId(0), NodeId(1), FlowId(1), prio, 0, bytes - 64);
        p.wire_bytes = bytes;
        Queued::new(p, Some((2, prio as usize)))
    }

    #[test]
    fn strict_priority_ordering() {
        let mut port = Port::new();
        port.enqueue(data(5, 1500));
        port.enqueue(data(3, 1500));
        port.enqueue(data(0, 64));
        assert_eq!(port.dequeue_next().unwrap().pkt.priority, 0);
        assert_eq!(port.dequeue_next().unwrap().pkt.priority, 3);
        assert_eq!(port.dequeue_next().unwrap().pkt.priority, 5);
        assert!(port.dequeue_next().is_none());
    }

    #[test]
    fn fifo_within_priority() {
        let mut port = Port::new();
        let mut a = data(3, 1000);
        a.pkt.wire_bytes = 1000;
        port.enqueue(a);
        port.enqueue(data(3, 1500));
        assert_eq!(port.dequeue_next().unwrap().pkt.wire_bytes, 1000);
        assert_eq!(port.dequeue_next().unwrap().pkt.wire_bytes, 1500);
    }

    #[test]
    fn pfc_frames_preempt_everything() {
        let mut port = Port::new();
        port.enqueue(data(0, 64));
        port.pfc_queue
            .push_back(Packet::pfc(NodeId(0), NodeId(1), 3, true));
        let first = port.dequeue_next().unwrap();
        assert!(matches!(first.pkt.kind, PacketKind::Pfc { .. }));
    }

    #[test]
    fn paused_classes_are_skipped() {
        let mut port = Port::new();
        port.enqueue(data(3, 1500));
        port.enqueue(data(5, 1500));
        port.apply_pfc(3, true, Time::ZERO);
        assert_eq!(port.dequeue_next().unwrap().pkt.priority, 5);
        assert!(port.dequeue_next().is_none());
        assert!(!port.has_eligible());
        let released = port.apply_pfc(3, false, Time::ZERO);
        assert!(released);
        assert!(port.has_eligible());
        assert_eq!(port.dequeue_next().unwrap().pkt.priority, 3);
    }

    #[test]
    fn byte_accounting_spans_transmission() {
        let mut port = Port::new();
        port.enqueue(data(3, 1500));
        assert_eq!(port.queued_bytes[3], 1500);
        let q = port.dequeue_next().unwrap();
        port.current = Some(q);
        // Still accounted while in flight.
        assert_eq!(port.queued_bytes[3], 1500);
        let done = port.finish_current().unwrap();
        assert_eq!(done.pkt.wire_bytes, 1500);
        assert_eq!(port.queued_bytes[3], 0);
        assert_eq!(port.total_queued_bytes(), 0);
    }

    #[test]
    fn apply_pfc_reports_release_only_on_transition() {
        let mut port = Port::new();
        assert!(!port.apply_pfc(3, true, Time::ZERO));
        assert!(!port.apply_pfc(3, true, Time::ZERO));
        assert!(port.apply_pfc(3, false, Time::ZERO));
        assert!(!port.apply_pfc(3, false, Time::ZERO));
    }

    #[test]
    fn apply_pfc_tracks_pause_onset_for_the_watchdog() {
        let mut port = Port::new();
        assert_eq!(port.rx_paused_since[3], Time::NEVER);
        port.apply_pfc(3, true, Time::from_micros(10));
        assert_eq!(port.rx_paused_since[3], Time::from_micros(10));
        // A refresh PAUSE does not restart the clock.
        port.apply_pfc(3, true, Time::from_micros(20));
        assert_eq!(port.rx_paused_since[3], Time::from_micros(10));
        port.apply_pfc(3, false, Time::from_micros(30));
        assert_eq!(port.rx_paused_since[3], Time::NEVER);
    }

    #[test]
    fn ignore_window_discards_pause_but_honors_resume() {
        let mut port = Port::new();
        port.pfc_ignore[3] = true;
        port.apply_pfc(3, true, Time::ZERO);
        assert!(!port.rx_paused[3], "PAUSE ignored while watchdog tripped");
        port.pfc_ignore[3] = false;
        port.apply_pfc(3, true, Time::ZERO);
        assert!(port.rx_paused[3]);
        port.pfc_ignore[3] = true;
        assert!(
            port.apply_pfc(3, false, Time::ZERO),
            "RESUME always honored"
        );
    }

    #[test]
    fn reset_pfc_clears_all_pause_state() {
        let mut port = Port::new();
        port.apply_pfc(3, true, Time::from_micros(5));
        port.tx_pause_sent[4] = true;
        port.pfc_ignore[5] = true;
        port.pfc_queue
            .push_back(Packet::pfc(NodeId(0), NodeId(1), 3, true));
        port.reset_pfc();
        assert!(!port.rx_paused[3]);
        assert_eq!(port.rx_paused_since[3], Time::NEVER);
        assert!(!port.tx_pause_sent[4]);
        assert!(!port.pfc_ignore[5]);
        assert!(
            port.pfc_queue.is_empty(),
            "stale PFC frames die with the link"
        );
    }
}
