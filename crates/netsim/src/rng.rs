//! A tiny deterministic RNG for the simulator's internal randomness
//! (RED marking decisions, ECMP salt).
//!
//! We deliberately avoid pulling `rand` into the substrate: the simulator
//! needs only a fast, seedable, reproducible stream, and keeping it inline
//! guarantees run-for-run determinism is independent of external crate
//! versions. The `workloads` crate builds its distributions on this same
//! generator, so a whole run is a pure function of config + seed with no
//! external-crate randomness anywhere.

/// SplitMix64: tiny, fast, passes BigCrush for our purposes; used by many
/// simulators for exactly this role.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for simulator-sized n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniformly picks one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle, deterministic under the seed.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A deterministic 64-bit mixer used for ECMP flow hashing. Distinct from the
/// RNG: the same (flow, salt) pair must always map to the same path.
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x = (x ^ (x >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn floats_are_roughly_uniform() {
        let mut r = SplitMix64::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_edges() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_probability_is_respected() {
        let mut r = SplitMix64::new(11);
        let n = 200_000;
        let hits = (0..n).filter(|_| r.chance(0.01)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pick_is_uniform_ish_and_in_range() {
        let mut r = SplitMix64::new(21);
        let items = [10, 20, 30, 40];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let v = *r.pick(&items);
            counts[(v / 10 - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        SplitMix64::new(9).shuffle(&mut a);
        SplitMix64::new(9).shuffle(&mut b);
        assert_eq!(a, b, "same seed, same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements almost surely move");
    }

    #[test]
    fn mix64_is_stable_and_injectivish() {
        assert_eq!(mix64(0x1234), mix64(0x1234));
        let mut vals: Vec<u64> = (0..1000).map(mix64).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 1000);
    }
}
