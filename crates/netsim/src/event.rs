//! The discrete-event core: a deterministic priority queue of timestamped
//! events.
//!
//! Events at the same timestamp are executed in insertion order (a
//! monotonically increasing sequence number breaks ties), so a run is a pure
//! function of the network configuration and the RNG seed.
//!
//! Internally the queue is a calendar queue (hierarchical timing wheel with
//! a single level plus an overflow heap) rather than one big binary heap:
//! the common case — scheduling a few microseconds ahead — is an O(1) push
//! into an unsorted bucket, and only events inside the current ~1 µs bucket
//! ever touch a comparison-sorted heap. Far-future timers (retransmission
//! backoff, watchdog restores) land in the overflow heap and migrate into
//! the wheel as the cursor approaches them. Pop order is exactly the old
//! heap's `(time, insertion-seq)` order; see DESIGN.md for the argument.

use crate::slab::PacketRef;
use crate::units::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a node (host or switch) in the network's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a port within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

/// Index of a link in the network's link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Kinds of timers a host can arm. The payload disambiguates per-flow timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// A congestion-control timer; `id` is interpreted by the CC algorithm.
    Cc {
        /// Local flow index on the host.
        flow: usize,
        /// Algorithm-defined timer id.
        id: u32,
    },
    /// Go-back-N retransmission timeout for a flow.
    Retransmit {
        /// Local flow index on the host.
        flow: usize,
    },
    /// The NIC asked to be woken when the earliest flow becomes eligible.
    NicWakeup,
    /// A new message is injected into a flow's send queue (workload arrival).
    MessageArrival {
        /// Local flow index on the host.
        flow: usize,
        /// Message size in bytes.
        bytes: u64,
    },
    /// Reset an idle flow's congestion state back to line rate.
    IdleReset {
        /// Local flow index on the host.
        flow: usize,
    },
}

/// A simulation event.
#[derive(Debug)]
pub enum Event {
    /// A packet finishes arriving at `node` (entering through `port`).
    /// The packet body lives in the network's [`crate::slab::PacketPool`]
    /// and is reclaimed when the event is dispatched.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Ingress port on that node.
        port: PortId,
        /// Handle to the arriving packet in the packet pool.
        pkt: PacketRef,
    },
    /// `node`'s transmitter on `port` finished serializing a packet.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// The port whose transmitter became free.
        port: PortId,
    },
    /// A host timer fires.
    Timer {
        /// The host owning the timer.
        node: NodeId,
        /// Which timer.
        kind: TimerKind,
    },
    /// Periodic statistics sampling tick.
    Sample,
    /// A user-registered control hook (used by experiments to start flows or
    /// change configuration mid-run). The id indexes the network's hook table.
    Hook {
        /// Index into the network's hook table.
        id: usize,
    },
    /// A scheduled fault-plan action fires (see [`crate::faults`]).
    Fault {
        /// What breaks (or heals).
        action: crate::faults::FaultAction,
    },
    /// A switch's PFC storm watchdog fires for one (port, class): either a
    /// paused-too-long check or the post-trip restore.
    Watchdog {
        /// The switch owning the watchdog.
        node: NodeId,
        /// The watched port.
        port: PortId,
        /// The watched priority class.
        class: usize,
        /// False: check whether the class has been paused beyond the
        /// threshold. True: restore PAUSE honoring after the recovery
        /// interval.
        restore: bool,
    },
}

/// Names for [`Event::kind_index`] values, used by the telemetry
/// profiler's per-kind report.
pub const EVENT_KIND_NAMES: [&str; 7] = [
    "deliver", "tx_done", "timer", "sample", "hook", "fault", "watchdog",
];

impl Event {
    /// Index of this event's kind into [`EVENT_KIND_NAMES`].
    #[inline]
    pub fn kind_index(&self) -> usize {
        match self {
            Event::Deliver { .. } => 0,
            Event::TxDone { .. } => 1,
            Event::Timer { .. } => 2,
            Event::Sample => 3,
            Event::Hook { .. } => 4,
            Event::Fault { .. } => 5,
            Event::Watchdog { .. } => 6,
        }
    }
}

struct Scheduled {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Bucket width as a power-of-two of picoseconds: 2^17 ps ≈ 131 ns,
/// finer than one packet serialization at 40 G, so consecutive link
/// events usually land in *different* buckets and each bucket drains as
/// one small sorted cohort.
const BUCKET_SHIFT: u32 = 17;
/// Number of wheel buckets (must be a power of two). 4096 buckets at
/// ~131 ns each give a ~537 µs horizon; CC timers (≤ 55 µs), PFC pause
/// timeouts and sampling ticks all fit, while RTO backoff (≥ 16 ms) and
/// watchdog restores overflow — exactly what the overflow heap is for.
const NUM_BUCKETS: u64 = 4096;
const BUCKET_MASK: u64 = NUM_BUCKETS - 1;
/// Occupancy bitmap words (64 buckets per `u64`).
const NUM_WORDS: usize = (NUM_BUCKETS / 64) as usize;

#[inline]
fn tick_of(at: Time) -> u64 {
    at.0 >> BUCKET_SHIFT
}

/// Deterministic event queue. Pops events in `(time, insertion order)` order.
pub struct EventQueue {
    /// The due cohort: every pending event whose bucket tick is ≤
    /// `cursor_tick`, sorted *descending* by `(time, seq)` so the global
    /// minimum is at the back and `pop` is a plain `Vec::pop`.
    near: Vec<Scheduled>,
    /// Unsorted buckets for ticks in `(cursor_tick, cursor_tick + NUM_BUCKETS)`,
    /// indexed by `tick & BUCKET_MASK`.
    wheel: Vec<Vec<Scheduled>>,
    /// Bitmap of non-empty wheel buckets, so advancing the cursor skips
    /// runs of empty buckets with a couple of word scans.
    occupied: [u64; NUM_WORDS],
    /// Total events parked in `wheel` (kept so `pop` can jump the cursor
    /// straight to the overflow heap when the wheel is empty).
    wheel_len: usize,
    /// Events beyond the wheel horizon, ordered; migrated inward as the
    /// cursor advances.
    overflow: BinaryHeap<Reverse<Scheduled>>,
    /// Highest bucket tick whose events have been promoted into `near`.
    cursor_tick: u64,
    seq: u64,
    now: Time,
    popped: u64,
    #[cfg(feature = "profile")]
    peak_pending: usize,
}

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue::new()
    }
}

impl EventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue {
        EventQueue {
            near: Vec::new(),
            wheel: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; NUM_WORDS],
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            cursor_tick: 0,
            seq: 0,
            now: Time::ZERO,
            popped: 0,
            #[cfg(feature = "profile")]
            peak_pending: 0,
        }
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.near.len() + self.wheel_len + self.overflow.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past: the simulator never time-travels.
    pub fn schedule(&mut self, at: Time, event: Event) {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let s = Scheduled { at, seq, event };
        let tick = tick_of(at);
        if tick <= self.cursor_tick {
            // Into the due cohort, keeping it sorted. New events carry the
            // highest seq, so among equal times they belong closest to the
            // front-of-equal-run in the descending layout — which is where
            // `partition_point` on strict `>` lands them.
            let idx = self.near.partition_point(|x| (x.at, x.seq) > (at, seq));
            self.near.insert(idx, s);
        } else if tick < self.cursor_tick + NUM_BUCKETS {
            let slot = (tick & BUCKET_MASK) as usize;
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.wheel[slot].push(s);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(s));
        }
        #[cfg(feature = "profile")]
        {
            self.peak_pending = self.peak_pending.max(self.len());
        }
    }

    /// High-water mark of pending events, tracked under
    /// `--features profile` (0 otherwise).
    pub fn peak_pending(&self) -> usize {
        #[cfg(feature = "profile")]
        {
            self.peak_pending
        }
        #[cfg(not(feature = "profile"))]
        {
            0
        }
    }

    /// Moves overflow events that now fall inside the wheel horizon into
    /// their buckets (or into `near` — unsorted; the caller sorts — if
    /// already due).
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor_tick + NUM_BUCKETS;
        while let Some(Reverse(s)) = self.overflow.peek() {
            let tick = tick_of(s.at);
            if tick >= horizon {
                break;
            }
            let Some(Reverse(s)) = self.overflow.pop() else {
                debug_assert!(false, "peek saw an overflow event");
                break;
            };
            if tick <= self.cursor_tick {
                self.near.push(s);
            } else {
                let slot = (tick & BUCKET_MASK) as usize;
                self.occupied[slot / 64] |= 1 << (slot % 64);
                self.wheel[slot].push(s);
                self.wheel_len += 1;
            }
        }
    }

    /// First occupied wheel tick after `cursor_tick`. Caller guarantees
    /// `wheel_len > 0`. Two's-complement word scans over the occupancy
    /// bitmap: O(NUM_WORDS) worst case, usually one or two reads.
    fn next_occupied_tick(&self) -> u64 {
        let start = ((self.cursor_tick + 1) & BUCKET_MASK) as usize;
        let mut word = start / 64;
        // Bits below `start` in its word belong to already-drained slots
        // (or slots a full lap ahead); mask them off for the first read.
        let mut bits = self.occupied[word] & (!0u64 << (start % 64));
        for _ in 0..=NUM_WORDS {
            if bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                let dist = (slot + NUM_BUCKETS as usize - start) & BUCKET_MASK as usize;
                return self.cursor_tick + 1 + dist as u64;
            }
            word = (word + 1) % NUM_WORDS;
            bits = self.occupied[word];
        }
        unreachable!("wheel_len > 0 but occupancy bitmap is empty");
    }

    /// Advances the cursor until `near` holds the earliest pending event,
    /// or returns `false` when the queue is empty. The cursor is untouched
    /// in the empty case.
    fn promote(&mut self) -> bool {
        while self.near.is_empty() {
            if self.wheel_len == 0 {
                // Nothing inside the horizon: jump straight to the first
                // overflow tick (if any) and pull its cohort in.
                let Some(Reverse(s)) = self.overflow.peek() else {
                    return false;
                };
                self.cursor_tick = tick_of(s.at);
                self.migrate_overflow();
            } else {
                // Skip straight to the next occupied bucket. No overflow
                // event can be earlier: occupied ticks are < cursor +
                // NUM_BUCKETS ≤ every overflow tick.
                self.cursor_tick = self.next_occupied_tick();
                let slot = (self.cursor_tick & BUCKET_MASK) as usize;
                self.occupied[slot / 64] &= !(1 << (slot % 64));
                // Swap the bucket's allocation into `near` (empty here),
                // so bucket capacity is recycled instead of reallocated.
                std::mem::swap(&mut self.near, &mut self.wheel[slot]);
                self.wheel_len -= self.near.len();
                // The cursor moved: newly in-horizon overflow events must
                // enter the wheel before anything else is scheduled.
                self.migrate_overflow();
            }
            self.near.sort_unstable_by_key(|s| Reverse((s.at, s.seq)));
        }
        true
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        if !self.promote() {
            return None;
        }
        let Some(s) = self.near.pop() else {
            debug_assert!(false, "promote() returned true on an empty queue");
            return None;
        };
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// Pops the entire cohort of events sharing the earliest pending
    /// timestamp (if that timestamp is ≤ `until`) into `out`, in exact
    /// `(time, seq)` order, and returns the cohort's timestamp. The clock
    /// advances to it. Equivalent to repeated `pop` while the head time is
    /// unchanged — batching only skips re-entering the scheduler between
    /// same-timestamp events, which cannot reorder anything because events
    /// scheduled *during* their dispatch always carry higher seqs.
    pub fn pop_batch(&mut self, until: Time, out: &mut Vec<Event>) -> Option<Time> {
        if !self.promote() {
            return None;
        }
        let Some(t) = self.near.last().map(|s| s.at) else {
            debug_assert!(false, "promote() returned true on an empty queue");
            return None;
        };
        if t > until {
            return None;
        }
        self.now = t;
        while self.near.last().is_some_and(|s| s.at == t) {
            let Some(s) = self.near.pop() else { break };
            self.popped += 1;
            out.push(s.event);
        }
        Some(t)
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some(s) = self.near.last() {
            return Some(s.at);
        }
        if self.wheel_len > 0 {
            // The first occupied bucket holds the earliest tick; every
            // event in it shares that tick, so its min is the global min.
            let slot = (self.next_occupied_tick() & BUCKET_MASK) as usize;
            return self.wheel[slot].iter().map(|s| s.at).min();
        }
        self.overflow.peek().map(|Reverse(s)| s.at)
    }

    /// Advances the clock to `to` without popping anything, so a drained
    /// horizon leaves `now()` at the horizon itself rather than at the
    /// last popped event. Never moves the clock backwards, and must not
    /// jump past a pending event (that would let `pop` run time in
    /// reverse).
    pub fn advance_clock(&mut self, to: Time) {
        debug_assert!(
            self.peek_time().is_none_or(|t| t >= to),
            "advance_clock({to}) would skip past a pending event"
        );
        self.now = self.now.max(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Duration;

    fn hook(id: usize) -> Event {
        Event::Hook { id }
    }

    fn drain_ids(q: &mut EventQueue) -> Vec<usize> {
        std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Hook { id } => id,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_micros(3), hook(3));
        q.schedule(Time::from_micros(1), hook(1));
        q.schedule(Time::from_micros(2), hook(2));
        assert_eq!(drain_ids(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(7);
        for id in 0..100 {
            q.schedule(t, hook(id));
        }
        assert_eq!(drain_ids(&mut q), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_micros(5), hook(0));
        q.schedule(Time::from_micros(5), hook(1));
        q.schedule(Time::from_micros(9), hook(2));
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, Time::from_micros(9));
        assert_eq!(q.events_executed(), 3);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_micros(5), hook(0));
        q.pop();
        q.schedule(Time::from_micros(1), hook(1));
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_micros(5), hook(0));
        q.pop();
        q.schedule(q.now(), hook(1));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_micros(5));
        assert_eq!(t + Duration::ZERO, t);
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut q = EventQueue::new();
        // Well beyond the ~2.1 ms wheel horizon: a 16 ms RTO and a 320 ms
        // watchdog restore, interleaved with near events.
        q.schedule(Time::from_millis(320), hook(3));
        q.schedule(Time::from_micros(2), hook(0));
        q.schedule(Time::from_millis(16), hook(2));
        q.schedule(Time::from_millis(1), hook(1));
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(Time::from_micros(2)));
        assert_eq!(drain_ids(&mut q), vec![0, 1, 2, 3]);
        assert_eq!(q.now(), Time::from_millis(320));
    }

    #[test]
    fn peek_time_sees_wheel_and_overflow_without_advancing() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(100), hook(1));
        assert_eq!(q.peek_time(), Some(Time::from_millis(100)));
        q.schedule(Time::from_micros(900), hook(0));
        assert_eq!(q.peek_time(), Some(Time::from_micros(900)));
        // Peeking must not have advanced the clock.
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(drain_ids(&mut q), vec![0, 1]);
    }

    #[test]
    fn cohorts_spanning_buckets_interleave_correctly() {
        let mut q = EventQueue::new();
        // Schedule across many buckets in scrambled order, with ties.
        let mut expect = Vec::new();
        for i in 0..50usize {
            let t = Time(((i * 7919) % 50) as u64 * 100_000_000);
            q.schedule(t, hook(i));
            expect.push((t, i));
        }
        expect.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<(Time, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::Hook { id } => (t, id),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pop_batch_drains_exactly_one_timestamp() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(5);
        q.schedule(t, hook(0));
        q.schedule(t, hook(1));
        q.schedule(Time::from_micros(6), hook(2));
        let mut out = Vec::new();
        let popped = q.pop_batch(Time::from_millis(1), &mut out);
        assert_eq!(popped, Some(t));
        assert_eq!(out.len(), 2);
        assert_eq!(q.now(), t);
        assert_eq!(q.len(), 1);
        // Respecting `until`: the next cohort is past the bound.
        out.clear();
        assert_eq!(q.pop_batch(t, &mut out), None);
        assert!(out.is_empty());
        assert_eq!(q.events_executed(), 2);
    }
}
