//! The discrete-event core: a deterministic priority queue of timestamped
//! events.
//!
//! Events at the same timestamp are executed in insertion order (a
//! monotonically increasing sequence number breaks ties), so a run is a pure
//! function of the network configuration and the RNG seed.

use crate::packet::Packet;
use crate::units::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a node (host or switch) in the network's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a port within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

/// Index of a link in the network's link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Kinds of timers a host can arm. The payload disambiguates per-flow timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// A congestion-control timer; `id` is interpreted by the CC algorithm.
    Cc {
        /// Local flow index on the host.
        flow: usize,
        /// Algorithm-defined timer id.
        id: u32,
    },
    /// Go-back-N retransmission timeout for a flow.
    Retransmit {
        /// Local flow index on the host.
        flow: usize,
    },
    /// The NIC asked to be woken when the earliest flow becomes eligible.
    NicWakeup,
    /// A new message is injected into a flow's send queue (workload arrival).
    MessageArrival {
        /// Local flow index on the host.
        flow: usize,
        /// Message size in bytes.
        bytes: u64,
    },
    /// Reset an idle flow's congestion state back to line rate.
    IdleReset {
        /// Local flow index on the host.
        flow: usize,
    },
}

/// A simulation event.
#[derive(Debug)]
pub enum Event {
    /// `pkt` finishes arriving at `node` (entering through `port`).
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Ingress port on that node.
        port: PortId,
        /// The arriving packet.
        pkt: Packet,
    },
    /// `node`'s transmitter on `port` finished serializing a packet.
    TxDone {
        /// Transmitting node.
        node: NodeId,
        /// The port whose transmitter became free.
        port: PortId,
    },
    /// A host timer fires.
    Timer {
        /// The host owning the timer.
        node: NodeId,
        /// Which timer.
        kind: TimerKind,
    },
    /// Periodic statistics sampling tick.
    Sample,
    /// A user-registered control hook (used by experiments to start flows or
    /// change configuration mid-run). The id indexes the network's hook table.
    Hook {
        /// Index into the network's hook table.
        id: usize,
    },
    /// A scheduled fault-plan action fires (see [`crate::faults`]).
    Fault {
        /// What breaks (or heals).
        action: crate::faults::FaultAction,
    },
    /// A switch's PFC storm watchdog fires for one (port, class): either a
    /// paused-too-long check or the post-trip restore.
    Watchdog {
        /// The switch owning the watchdog.
        node: NodeId,
        /// The watched port.
        port: PortId,
        /// The watched priority class.
        class: usize,
        /// False: check whether the class has been paused beyond the
        /// threshold. True: restore PAUSE honoring after the recovery
        /// interval.
        restore: bool,
    },
}

/// Names for [`Event::kind_index`] values, used by the telemetry
/// profiler's per-kind report.
pub const EVENT_KIND_NAMES: [&str; 7] = [
    "deliver", "tx_done", "timer", "sample", "hook", "fault", "watchdog",
];

impl Event {
    /// Index of this event's kind into [`EVENT_KIND_NAMES`].
    #[inline]
    pub fn kind_index(&self) -> usize {
        match self {
            Event::Deliver { .. } => 0,
            Event::TxDone { .. } => 1,
            Event::Timer { .. } => 2,
            Event::Sample => 3,
            Event::Hook { .. } => 4,
            Event::Fault { .. } => 5,
            Event::Watchdog { .. } => 6,
        }
    }
}

struct Scheduled {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic event queue. Pops events in `(time, insertion order)` order.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: Time,
    popped: u64,
    #[cfg(feature = "profile")]
    peak_pending: usize,
}

impl EventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past: the simulator never time-travels.
    pub fn schedule(&mut self, at: Time, event: Event) {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
        #[cfg(feature = "profile")]
        {
            self.peak_pending = self.peak_pending.max(self.heap.len());
        }
    }

    /// High-water mark of pending events, tracked under
    /// `--features profile` (0 otherwise).
    pub fn peak_pending(&self) -> usize {
        #[cfg(feature = "profile")]
        {
            self.peak_pending
        }
        #[cfg(not(feature = "profile"))]
        {
            0
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Duration;

    fn hook(id: usize) -> Event {
        Event::Hook { id }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_micros(3), hook(3));
        q.schedule(Time::from_micros(1), hook(1));
        q.schedule(Time::from_micros(2), hook(2));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Hook { id } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(7);
        for id in 0..100 {
            q.schedule(t, hook(id));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Hook { id } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_micros(5), hook(0));
        q.schedule(Time::from_micros(5), hook(1));
        q.schedule(Time::from_micros(9), hook(2));
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last, Time::from_micros(9));
        assert_eq!(q.events_executed(), 3);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_micros(5), hook(0));
        q.pop();
        q.schedule(Time::from_micros(1), hook(1));
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_micros(5), hook(0));
        q.pop();
        q.schedule(q.now(), hook(1));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_micros(5));
        assert_eq!(t + Duration::ZERO, t);
    }
}
