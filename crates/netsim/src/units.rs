//! Physical units used throughout the simulator.
//!
//! Time is kept in integer **picoseconds** so that serialization delays of
//! common datacenter rates are exact: at 40 Gbps one bit takes 25 ps, at
//! 100 Gbps 10 ps, at 10 Gbps 100 ps. A `u64` of picoseconds covers ~213
//! days of simulated time, far beyond any experiment in this repository.
//!
//! Bandwidth is kept in bits per second. Conversions route through `u128`
//! intermediates so they are exact for every rate/length combination that
//! fits the simulator's ranges.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per second.
const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute simulation timestamp, in picoseconds since the start of the
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The beginning of the simulation.
    pub const ZERO: Time = Time(0);
    /// A timestamp later than any other; used as "never".
    pub const NEVER: Time = Time(u64::MAX);

    /// Builds a timestamp from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns * 1_000)
    }
    /// Builds a timestamp from whole microseconds.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * PS_PER_US)
    }
    /// Builds a timestamp from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000 * PS_PER_US)
    }
    /// Builds a timestamp from floating-point seconds (test/setup helper).
    pub fn from_secs_f64(s: f64) -> Time {
        Time((s * PS_PER_SEC as f64).round() as u64)
    }
    /// This timestamp expressed in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// This timestamp expressed in floating-point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a span from whole picoseconds.
    pub const fn from_picos(ps: u64) -> Duration {
        Duration(ps)
    }
    /// Builds a span from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns * 1_000)
    }
    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * PS_PER_US)
    }
    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000 * PS_PER_US)
    }
    /// Builds a span from floating-point seconds.
    pub fn from_secs_f64(s: f64) -> Duration {
        Duration((s * PS_PER_SEC as f64).round() as u64)
    }
    /// This span expressed in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// This span expressed in floating-point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Multiplies the span by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}
impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}
impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}
impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}
impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}
impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}
impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}
impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}
impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}
impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// Link or flow bandwidth, in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// A zero rate (flow fully throttled).
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Builds a bandwidth from gigabits per second.
    pub const fn gbps(g: u64) -> Bandwidth {
        Bandwidth(g * 1_000_000_000)
    }
    /// Builds a bandwidth from megabits per second.
    pub const fn mbps(m: u64) -> Bandwidth {
        Bandwidth(m * 1_000_000)
    }
    /// Builds a bandwidth from floating-point gigabits per second.
    pub fn gbps_f64(g: f64) -> Bandwidth {
        Bandwidth((g * 1e9).round() as u64)
    }
    /// This bandwidth in floating-point gigabits per second.
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Time to serialize `bytes` at this rate. Rounds up to a picosecond so
    /// back-to-back packets never overlap. A zero rate returns a huge span.
    pub fn serialize(self, bytes: u64) -> Duration {
        if self.0 == 0 {
            return Duration(u64::MAX / 4);
        }
        let bits = bytes as u128 * 8;
        let ps = (bits * PS_PER_SEC as u128).div_ceil(self.0 as u128);
        Duration(ps.min(u64::MAX as u128 / 4) as u64)
    }
    /// Scales the rate by a float factor, saturating at zero.
    pub fn scale(self, f: f64) -> Bandwidth {
        Bandwidth((self.0 as f64 * f).max(0.0).round() as u64)
    }
    /// Midpoint of two rates (used by QCN/DCQCN fast recovery). Rounds up
    /// so repeated halving toward a target actually reaches it.
    pub fn midpoint(self, other: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 + other.0).div_ceil(2))
    }
    /// Saturating addition.
    pub fn saturating_add(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_add(other.0))
    }
    /// The smaller of two rates.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
    /// The larger of two rates.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", self.as_gbps_f64())
        } else {
            write!(f, "{:.2}Mbps", self.0 as f64 / 1e6)
        }
    }
}

/// Byte-count helpers in **decimal** units (1 KB = 1000 B), matching the
/// paper's buffer arithmetic: with B = 12 MB, n = 32, t_flight = 22.4 KB,
/// §4's bound (B − 8·n·t_flight)/(8·n) comes out to 24.47 KB only in
/// decimal units.
pub mod bytes {
    /// Kilobytes to bytes.
    pub const fn kb(k: u64) -> u64 {
        k * 1000
    }
    /// Megabytes to bytes.
    pub const fn mb(m: u64) -> u64 {
        m * 1_000_000
    }
}

/// Checked arithmetic and conversion helpers for byte/occupancy counters.
///
/// Buffer occupancy, per-queue byte counts and similar accounting values
/// must never silently wrap (a wrap near `u64::MAX` sneaks past capacity
/// checks) and must never be poisoned by a NaN from float-factor math
/// (dynamic PFC thresholds, lossy-α limits). The `simlint` `counter-arith`
/// rule forbids bare `+`/`-`/`as` on such counters in
/// `netsim::{buffer,port,switch}`; these helpers are the sanctioned
/// replacements.
pub mod checked {
    /// Adds `bytes` to `counter`. On overflow the counter is left
    /// untouched and `false` is returned — callers treat that as a failed
    /// admission, never a wrap.
    #[inline]
    #[must_use]
    pub fn checked_accum(counter: &mut u64, bytes: u64) -> bool {
        match counter.checked_add(bytes) {
            Some(v) => {
                *counter = v;
                true
            }
            None => false,
        }
    }

    /// Subtracts `bytes` from `counter`. On underflow the counter is left
    /// untouched and `false` is returned — the accounting bug is then
    /// visible to `debug_assert!`s and the `sanitize` auditor instead of
    /// wrapping into an absurd occupancy.
    #[inline]
    #[must_use]
    pub fn checked_drain(counter: &mut u64, bytes: u64) -> bool {
        match counter.checked_sub(bytes) {
            Some(v) => {
                *counter = v;
                true
            }
            None => false,
        }
    }

    /// Scales a byte count by a float factor (dynamic thresholds: β·free/8,
    /// α·free). NaN and negative factors clamp to 0; results beyond
    /// `u64::MAX` saturate. The result is always a sane byte count.
    #[inline]
    pub fn scale_bytes(bytes: u64, factor: f64) -> u64 {
        // Plain cast, not `bytes_to_f64`: this helper's contract is to
        // clamp pathological inputs, not assert them away.
        let v = bytes as f64 * factor;
        if v.is_nan() || v <= 0.0 {
            0
        } else if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        }
    }

    /// A byte count as `f64` for rate/threshold math. Exact for every
    /// count below 2^53 bytes (≈ 9 PB) — far beyond any buffer or queue
    /// this simulator models; the debug assertion keeps that promise
    /// honest.
    #[inline]
    pub fn bytes_to_f64(bytes: u64) -> f64 {
        debug_assert!(
            bytes < (1u64 << 53),
            "byte count {bytes} loses precision as f64"
        );
        bytes as f64
    }

    /// Bytes to bits, saturating instead of wrapping for absurd inputs.
    #[inline]
    pub fn bytes_to_bits(bytes: u64) -> u64 {
        bytes.saturating_mul(8)
    }

    /// A float Gbps rate as bytes per nanosecond (40 Gbps → 5 B/ns).
    /// NaN and negative rates clamp to 0.0 so a corrupted rate can never
    /// poison downstream byte math.
    #[inline]
    pub fn gbps_to_bytes_per_ns(gbps: f64) -> f64 {
        if gbps.is_nan() || gbps <= 0.0 {
            0.0
        } else {
            gbps / 8.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_exact_at_40g() {
        // 40 Gbps = 25 ps per bit; a 1500 B frame is 12000 bits = 300 ns.
        let d = Bandwidth::gbps(40).serialize(1500);
        assert_eq!(d, Duration::from_nanos(300));
    }

    #[test]
    fn serialization_is_exact_at_10g_and_100g() {
        assert_eq!(
            Bandwidth::gbps(10).serialize(1500),
            Duration::from_nanos(1200)
        );
        assert_eq!(
            Bandwidth::gbps(100).serialize(1500),
            Duration::from_nanos(120)
        );
    }

    #[test]
    fn serialization_rounds_up() {
        // 3 bits at 1 Gbps would be 3 ns exactly; 1 byte at 3 Gbps is
        // 8/3 ns = 2666.66.. ps and must round up.
        let d = Bandwidth(3_000_000_000).serialize(1);
        assert_eq!(d.0, 2667);
    }

    #[test]
    fn zero_bandwidth_never_finishes() {
        assert!(Bandwidth::ZERO.serialize(1).0 > Duration::from_millis(1_000_000).0);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_micros(5) + Duration::from_nanos(300);
        assert_eq!(t.0, 5_000_000 + 300_000);
        assert_eq!(t - Time::from_micros(5), Duration::from_nanos(300));
        assert_eq!(Time::from_millis(1), Time::from_micros(1000));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = Time::from_micros(1);
        let b = Time::from_micros(2);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_micros(1));
    }

    #[test]
    fn bandwidth_midpoint_and_scale() {
        let a = Bandwidth::gbps(40);
        let b = Bandwidth::gbps(20);
        assert_eq!(a.midpoint(b), Bandwidth::gbps(30));
        assert_eq!(a.scale(0.5), Bandwidth::gbps(20));
        assert_eq!(a.scale(-1.0), Bandwidth::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bandwidth::gbps(40)), "40.00Gbps");
        assert_eq!(format!("{}", Bandwidth::mbps(40)), "40.00Mbps");
        assert_eq!(format!("{}", Duration::from_micros(55)), "55.000us");
    }

    #[test]
    fn byte_units_match_paper() {
        assert_eq!(bytes::mb(12), 12_000_000);
        assert_eq!(bytes::kb(200), 200_000);
    }

    #[test]
    fn checked_accum_and_drain() {
        use checked::{checked_accum, checked_drain};
        let mut c = 1000u64;
        assert!(checked_accum(&mut c, 500));
        assert_eq!(c, 1500);
        assert!(!checked_accum(&mut c, u64::MAX), "overflow rejected");
        assert_eq!(c, 1500, "counter untouched on overflow");
        assert!(checked_drain(&mut c, 1500));
        assert_eq!(c, 0);
        assert!(!checked_drain(&mut c, 1), "underflow rejected");
        assert_eq!(c, 0, "counter untouched on underflow");
    }

    #[test]
    fn scale_bytes_clamps_pathologies() {
        use checked::scale_bytes;
        assert_eq!(scale_bytes(1000, 0.5), 500);
        assert_eq!(scale_bytes(6_265_600, 1.0), 6_265_600);
        assert_eq!(scale_bytes(1000, f64::NAN), 0);
        assert_eq!(scale_bytes(1000, -2.0), 0);
        assert_eq!(scale_bytes(u64::MAX / 2, 1e30), u64::MAX);
        // The paper's dynamic threshold: β/8 · free with β = 8 is identity.
        assert_eq!(scale_bytes(123_456, 8.0 / 8.0), 123_456);
    }

    #[test]
    fn conversion_helpers() {
        use checked::{bytes_to_bits, bytes_to_f64, gbps_to_bytes_per_ns};
        assert_eq!(bytes_to_bits(1500), 12_000);
        assert_eq!(bytes_to_bits(u64::MAX), u64::MAX, "saturates");
        assert_eq!(bytes_to_f64(12_000_000), 12_000_000.0);
        assert_eq!(gbps_to_bytes_per_ns(40.0), 5.0);
        assert_eq!(gbps_to_bytes_per_ns(f64::NAN), 0.0);
        assert_eq!(gbps_to_bytes_per_ns(-1.0), 0.0);
    }
}
