//! Runtime invariant auditor (`sanitize` feature): conservation, ordering
//! and domain checks hooked at event-dispatch boundaries.
//!
//! The simulator's value rests on properties the type system cannot see:
//!
//! * **byte conservation** — a switch's global [`crate::buffer::SharedBuffer`]
//!   occupancy always equals the sum of its per-(port, priority) ingress
//!   counts, and never exceeds the pool (§4's `s ≤ B`),
//! * **event-time monotonicity** — dispatched event times never regress
//!   (determinism depends on the `(time, seq)` total order),
//! * **PFC pairing** — PAUSE/RESUME alternate per ingress (port, priority),
//!   and a PFC-protected (lossless) class never drops a packet,
//! * **go-back-N sanity** — receivers accept PSNs exactly in order, and a
//!   sender always satisfies `una ≤ send ≤ next`,
//! * **DCQCN domains** — `0 ≤ α ≤ 1` and `R_C ≤ R_T ≤ line rate`
//!   (Figure 7's state machine keeps these; Equation 2's decay must never
//!   push α negative).
//!
//! With the feature disabled every [`Auditor`] method is an empty `#[inline]`
//! stub, so call sites stay unconditional at zero cost. With it enabled,
//! violations are *recorded* (with event context) rather than panicking, so
//! tests can both assert that deliberate corruption is caught and that real
//! experiment runs finish clean ([`Auditor::assert_clean`]).

use crate::event::NodeId;
use crate::packet::FlowId;
use crate::units::Time;

/// How often (in dispatched events) the expensive whole-buffer conservation
/// scan runs. Prime so it cannot phase-lock with periodic workloads.
#[cfg(feature = "sanitize")]
const BUFFER_CHECK_PERIOD: u64 = 997;

/// Recorded violations are capped so a systematically broken run cannot
/// allocate without bound; the total count keeps climbing past the cap.
#[cfg(feature = "sanitize")]
const MAX_RECORDED: usize = 64;

/// Which invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// `SharedBuffer.occupied` disagrees with the per-ingress sum, or
    /// exceeds the configured pool size.
    BufferConservation,
    /// An event was dispatched at a time earlier than its predecessor.
    TimeRegression,
    /// PAUSE while already paused, or RESUME while not paused.
    PfcPairing,
    /// A packet was dropped on a PFC-protected (lossless) class.
    LosslessDrop,
    /// A receiver accepted an out-of-order PSN, or a sender's PSN
    /// bookkeeping lost `una ≤ send ≤ next`.
    SequenceError,
    /// A congestion-control algorithm left its documented domain
    /// (α ∉ [0, 1] or the rate ordering broke).
    CcDomain,
    /// A flow's span timeline lost the FCT decomposition identity
    /// (`serializing + queued + pause_blocked + throttled +
    /// retransmitting + timed_out + idle != fct` at a completion).
    SpanAccounting,
    /// The fabric failed to return to its quiescent state after the last
    /// injected fault cleared plus the settling bound: a link still down
    /// or degraded, a watchdog still tripped, a port pause-blocked since
    /// before the settle window, standing queues that never drained, a
    /// live QP making no byte progress, or routes that disagree with a
    /// fresh shortest-path computation over the healed topology (see
    /// `Network::check_convergence`).
    Convergence,
}

/// One recorded invariant violation, with event context.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Simulation time of the violating event.
    pub at: Time,
    /// The invariant that broke.
    pub kind: ViolationKind,
    /// The node the violation is attributed to, when one is identifiable
    /// (drives the telemetry flight-recorder dump; `None` for global
    /// checks like time monotonicity).
    pub node: Option<NodeId>,
    /// Human-readable context: which switch/port/flow, and the values seen.
    pub context: String,
}

#[cfg(feature = "sanitize")]
#[derive(Debug, Default)]
struct AuditState {
    last_event_time: Time,
    events_since_buffer_check: u64,
    /// Currently paused ingress (node, port, priority) triples. A BTree
    /// keeps any future iteration deterministic (simlint: map-iter).
    paused: std::collections::BTreeSet<(usize, usize, usize)>,
    /// Next in-order PSN the auditor expects each receiver to accept.
    expected_psn: std::collections::BTreeMap<u64, u64>,
    violations: Vec<Violation>,
    total_violations: u64,
    fault_drops: u64,
}

/// The invariant auditor. Lives in [`crate::network::Ctx`] so switches and
/// hosts can report to it from inside event handlers.
#[derive(Debug, Default)]
pub struct Auditor {
    #[cfg(feature = "sanitize")]
    state: AuditState,
}

impl Auditor {
    /// True when the `sanitize` feature is compiled in and checks run.
    #[inline]
    pub const fn enabled() -> bool {
        cfg!(feature = "sanitize")
    }

    /// Records a violation (bounded; see `MAX_RECORDED`).
    #[cfg(feature = "sanitize")]
    fn violate(&mut self, at: Time, kind: ViolationKind, node: Option<NodeId>, context: String) {
        self.state.total_violations += 1;
        if self.state.violations.len() < MAX_RECORDED {
            self.state.violations.push(Violation {
                at,
                kind,
                node,
                context,
            });
        }
    }

    /// Records externally computed violations (the convergence checker
    /// builds its list unconditionally so release campaign runs can read
    /// it; this folds them into the auditor when the feature is on, so
    /// `assert_clean`, the report, and the flight-recorder dump sweep all
    /// see them).
    pub fn record_all(&mut self, violations: &[Violation]) {
        #[cfg(feature = "sanitize")]
        for v in violations {
            self.violate(v.at, v.kind, v.node, v.context.clone());
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = violations;
    }

    /// An event is about to be dispatched at `at`: check monotonicity.
    #[inline]
    pub fn on_event(&mut self, at: Time) {
        #[cfg(feature = "sanitize")]
        {
            if at < self.state.last_event_time {
                let last = self.state.last_event_time;
                self.violate(
                    at,
                    ViolationKind::TimeRegression,
                    None,
                    format!("event at {at} after event at {last}"),
                );
            }
            self.state.last_event_time = at;
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = at;
    }

    /// Should the (expensive) per-switch buffer conservation scan run now?
    /// Always false without the feature, so the caller's loop is dead code.
    #[inline]
    pub fn buffer_check_due(&mut self) -> bool {
        #[cfg(feature = "sanitize")]
        {
            self.state.events_since_buffer_check += 1;
            if self.state.events_since_buffer_check >= BUFFER_CHECK_PERIOD {
                self.state.events_since_buffer_check = 0;
                return true;
            }
            false
        }
        #[cfg(not(feature = "sanitize"))]
        false
    }

    /// Conservation check for one switch's shared buffer.
    #[inline]
    pub fn check_buffer(
        &mut self,
        node: NodeId,
        occupied: u64,
        ingress_total: u64,
        pool_bytes: u64,
        at: Time,
    ) {
        #[cfg(feature = "sanitize")]
        {
            if occupied != ingress_total {
                self.violate(
                    at,
                    ViolationKind::BufferConservation,
                    Some(node),
                    format!(
                        "switch {}: occupied {occupied} B != ingress sum {ingress_total} B",
                        node.0
                    ),
                );
            }
            if occupied > pool_bytes {
                self.violate(
                    at,
                    ViolationKind::BufferConservation,
                    Some(node),
                    format!(
                        "switch {}: occupied {occupied} B exceeds pool {pool_bytes} B",
                        node.0
                    ),
                );
            }
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = (node, occupied, ingress_total, pool_bytes, at);
    }

    /// A switch sent PAUSE for ingress (port, priority).
    #[inline]
    pub fn on_pause(&mut self, node: NodeId, port: usize, prio: usize, at: Time) {
        #[cfg(feature = "sanitize")]
        {
            if !self.state.paused.insert((node.0, port, prio)) {
                self.violate(
                    at,
                    ViolationKind::PfcPairing,
                    Some(node),
                    format!(
                        "switch {} port {port} prio {prio}: PAUSE while already paused",
                        node.0
                    ),
                );
            }
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = (node, port, prio, at);
    }

    /// A switch sent RESUME for ingress (port, priority).
    #[inline]
    pub fn on_resume(&mut self, node: NodeId, port: usize, prio: usize, at: Time) {
        #[cfg(feature = "sanitize")]
        {
            if !self.state.paused.remove(&(node.0, port, prio)) {
                self.violate(
                    at,
                    ViolationKind::PfcPairing,
                    Some(node),
                    format!(
                        "switch {} port {port} prio {prio}: RESUME while not paused",
                        node.0
                    ),
                );
            }
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = (node, port, prio, at);
    }

    /// A switch dropped a packet of priority `prio`; `lossless` is whether
    /// that class is PFC-protected there. The paper's premise is that
    /// PFC-protected classes never drop — any such drop is a violation.
    #[inline]
    pub fn on_drop(&mut self, node: NodeId, prio: usize, lossless: bool, at: Time) {
        #[cfg(feature = "sanitize")]
        {
            if lossless {
                self.violate(
                    at,
                    ViolationKind::LosslessDrop,
                    Some(node),
                    format!("switch {}: drop on lossless priority {prio}", node.0),
                );
            }
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = (node, prio, lossless, at);
    }

    /// A frame was destroyed by an *injected* fault (link down or
    /// bit-error) on a lossless class. Unlike [`Auditor::on_drop`], this is
    /// never a violation — the fault engine deliberately breaks the
    /// lossless contract, and the auditor must not confuse injected damage
    /// with simulator bugs. Tagged drops are counted separately so tests
    /// can still assert they happened.
    #[inline]
    pub fn on_fault_drop(&mut self, node: NodeId, prio: usize, at: Time) {
        let _ = (node, prio, at); // context kept for symmetry with on_drop
        #[cfg(feature = "sanitize")]
        {
            self.state.fault_drops += 1;
        }
    }

    /// A link transition (down *or* up) reset all PFC state on `node`'s
    /// `port`: forget any pause-pairing obligations for that ingress so the
    /// next PAUSE after the reset is not misread as a double-pause (and a
    /// RESUME that never comes is not misread as missing).
    #[inline]
    pub fn on_pfc_reset(&mut self, node: NodeId, port: usize) {
        #[cfg(feature = "sanitize")]
        {
            let lo = (node.0, port, 0);
            let hi = (node.0, port, usize::MAX);
            let stale: Vec<_> = self.state.paused.range(lo..=hi).copied().collect();
            for key in stale {
                self.state.paused.remove(&key);
            }
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = (node, port);
    }

    /// Count of fault-tagged lossless drops (0 without the feature).
    pub fn fault_drops(&self) -> u64 {
        #[cfg(feature = "sanitize")]
        {
            self.state.fault_drops
        }
        #[cfg(not(feature = "sanitize"))]
        0
    }

    /// A receiver on `node` accepted `psn` of `flow` in order. Go-back-N
    /// receivers accept exactly 0, 1, 2, … — anything else is a transport
    /// bug.
    #[inline]
    pub fn on_in_order_accept(&mut self, node: NodeId, flow: FlowId, psn: u64, at: Time) {
        #[cfg(feature = "sanitize")]
        {
            let expected = self.state.expected_psn.entry(flow.0).or_insert(0);
            if psn != *expected {
                let want = *expected;
                self.violate(
                    at,
                    ViolationKind::SequenceError,
                    Some(node),
                    format!("flow {}: accepted PSN {psn}, expected {want}", flow.0),
                );
            }
            self.state.expected_psn.insert(flow.0, psn + 1);
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = (node, flow, psn, at);
    }

    /// Sender-side go-back-N bookkeeping on `node` must keep
    /// `una ≤ send ≤ next`.
    #[inline]
    pub fn check_flow_psns(
        &mut self,
        node: NodeId,
        flow: FlowId,
        una: u64,
        send: u64,
        next: u64,
        at: Time,
    ) {
        #[cfg(feature = "sanitize")]
        {
            if !(una <= send && send <= next) {
                self.violate(
                    at,
                    ViolationKind::SequenceError,
                    Some(node),
                    format!(
                        "flow {}: PSN order broke (una {una}, send {send}, next {next})",
                        flow.0
                    ),
                );
            }
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = (node, flow, una, send, next, at);
    }

    /// Domain check on a congestion-control algorithm's self-reported
    /// state (see [`crate::cc::CcAuditInfo`]); `node` is the sending host.
    #[inline]
    pub fn check_cc(
        &mut self,
        node: NodeId,
        flow: FlowId,
        info: &crate::cc::CcAuditInfo,
        at: Time,
    ) {
        #[cfg(feature = "sanitize")]
        {
            if let Some(alpha) = info.alpha {
                if !(0.0..=1.0 + 1e-9).contains(&alpha) || alpha.is_nan() {
                    self.violate(
                        at,
                        ViolationKind::CcDomain,
                        Some(node),
                        format!("flow {}: alpha {alpha} outside [0, 1]", flow.0),
                    );
                }
            }
            if info.rate > info.target || info.target > info.line {
                self.violate(
                    at,
                    ViolationKind::CcDomain,
                    Some(node),
                    format!(
                        "flow {}: rate ordering broke (R_C {} > R_T {} or R_T > line {})",
                        flow.0, info.rate, info.target, info.line
                    ),
                );
            }
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = (node, flow, info, at);
    }

    /// A flow's span timeline settled at a message completion with
    /// `Σ per-state spans != fct` — the causal tracer lost or
    /// double-counted an interval. `node` is the sending host.
    #[inline]
    pub fn on_span_mismatch(
        &mut self,
        node: NodeId,
        flow: FlowId,
        fct: crate::units::Duration,
        sum: crate::units::Duration,
        at: Time,
    ) {
        #[cfg(feature = "sanitize")]
        {
            self.violate(
                at,
                ViolationKind::SpanAccounting,
                Some(node),
                format!("flow {}: span sum {sum} != fct {fct} at completion", flow.0),
            );
        }
        #[cfg(not(feature = "sanitize"))]
        let _ = (node, flow, fct, sum, at);
    }

    /// Violations recorded so far (empty without the feature).
    pub fn violations(&self) -> &[Violation] {
        #[cfg(feature = "sanitize")]
        {
            &self.state.violations
        }
        #[cfg(not(feature = "sanitize"))]
        &[]
    }

    /// Total violation count, including any past the recording cap.
    pub fn total_violations(&self) -> u64 {
        #[cfg(feature = "sanitize")]
        {
            self.state.total_violations
        }
        #[cfg(not(feature = "sanitize"))]
        0
    }

    /// True when no invariant violation has been observed.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Multi-line report of all recorded violations.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for v in self.violations() {
            out.push_str(&format!("[{}] {:?}: {}\n", v.at, v.kind, v.context));
        }
        let total = self.total_violations();
        if total as usize > self.violations().len() {
            out.push_str(&format!(
                "... and {} more\n",
                total - self.violations().len() as u64
            ));
        }
        out
    }

    /// Panics with the full report if any violation was recorded.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "invariant auditor recorded {} violation(s):\n{}",
            self.total_violations(),
            self.report()
        );
    }
}

/// Judges a settle-window series of `(time, total queued bytes)` samples
/// against the convergence drain invariant: by the end of the window the
/// fabric must either be below `threshold` or still visibly draining
/// (strictly less queued than at the window start — a long tail emptying
/// out is not a standing queue). Returns the violation to record, if any.
///
/// Pure so it runs (and is testable) with or without the `sanitize`
/// feature; the caller attributes no node (it is a fabric-wide check).
pub fn check_queue_drain(samples: &[(Time, u64)], threshold: u64) -> Option<Violation> {
    let (&(first_at, first), &(last_at, last)) = (samples.first()?, samples.last()?);
    if last <= threshold || (samples.len() > 1 && last < first) {
        return None;
    }
    Some(Violation {
        at: last_at,
        kind: ViolationKind::Convergence,
        node: None,
        context: format!(
            "queues not draining: {last} B queued at {last_at} \
             (threshold {threshold} B, {first} B at {first_at})"
        ),
    })
}

#[cfg(test)]
mod drain_tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    #[test]
    fn below_threshold_converges() {
        let s = [(t(0), 9000), (t(10), 4000), (t(20), 900)];
        assert!(check_queue_drain(&s, 1000).is_none());
    }

    #[test]
    fn still_draining_tail_is_tolerated() {
        let s = [(t(0), 90_000), (t(10), 60_000), (t(20), 30_000)];
        assert!(check_queue_drain(&s, 1000).is_none());
    }

    #[test]
    fn standing_queue_is_a_violation() {
        let s = [(t(0), 50_000), (t(10), 50_000), (t(20), 50_000)];
        let v = check_queue_drain(&s, 1000).expect("standing queue");
        assert_eq!(v.kind, ViolationKind::Convergence);
        assert!(v.context.contains("not draining"));
    }

    #[test]
    fn growing_queue_is_a_violation() {
        let s = [(t(0), 10_000), (t(20), 80_000)];
        assert!(check_queue_drain(&s, 1000).is_some());
    }

    #[test]
    fn empty_series_is_vacuously_clean() {
        assert!(check_queue_drain(&[], 0).is_none());
    }
}

#[cfg(all(test, feature = "sanitize"))]
mod tests {
    use super::*;

    #[test]
    fn time_regression_is_caught() {
        let mut a = Auditor::default();
        a.on_event(Time::from_micros(10));
        a.on_event(Time::from_micros(10)); // equal is fine
        assert!(a.is_clean());
        a.on_event(Time::from_micros(5));
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.violations()[0].kind, ViolationKind::TimeRegression);
    }

    #[test]
    fn conservation_mismatch_is_caught() {
        let mut a = Auditor::default();
        a.check_buffer(NodeId(3), 1000, 1000, 12_000_000, Time::ZERO);
        assert!(a.is_clean());
        a.check_buffer(NodeId(3), 1000, 900, 12_000_000, Time::ZERO);
        assert_eq!(a.violations()[0].kind, ViolationKind::BufferConservation);
        // Over-pool occupancy is its own violation.
        let mut b = Auditor::default();
        b.check_buffer(NodeId(3), 13_000_000, 13_000_000, 12_000_000, Time::ZERO);
        assert_eq!(b.violations().len(), 1);
    }

    #[test]
    fn pfc_pairing_is_checked() {
        let mut a = Auditor::default();
        a.on_pause(NodeId(1), 2, 3, Time::ZERO);
        a.on_resume(NodeId(1), 2, 3, Time::ZERO);
        assert!(a.is_clean());
        a.on_resume(NodeId(1), 2, 3, Time::ZERO); // resume unpaused
        a.on_pause(NodeId(1), 2, 3, Time::ZERO);
        a.on_pause(NodeId(1), 2, 3, Time::ZERO); // double pause
        assert_eq!(a.violations().len(), 2);
        assert!(a
            .violations()
            .iter()
            .all(|v| v.kind == ViolationKind::PfcPairing));
    }

    #[test]
    fn lossless_drop_is_a_violation_lossy_is_not() {
        let mut a = Auditor::default();
        a.on_drop(NodeId(0), 3, false, Time::ZERO);
        assert!(a.is_clean());
        a.on_drop(NodeId(0), 3, true, Time::ZERO);
        assert_eq!(a.violations()[0].kind, ViolationKind::LosslessDrop);
    }

    #[test]
    fn out_of_order_accept_is_caught() {
        let mut a = Auditor::default();
        a.on_in_order_accept(NodeId(4), FlowId(7), 0, Time::ZERO);
        a.on_in_order_accept(NodeId(4), FlowId(7), 1, Time::ZERO);
        assert!(a.is_clean());
        a.on_in_order_accept(NodeId(4), FlowId(7), 3, Time::ZERO);
        assert_eq!(a.violations()[0].kind, ViolationKind::SequenceError);
        assert_eq!(a.violations()[0].node, Some(NodeId(4)));
    }

    #[test]
    fn psn_order_is_checked() {
        let mut a = Auditor::default();
        a.check_flow_psns(NodeId(0), FlowId(1), 5, 7, 9, Time::ZERO);
        assert!(a.is_clean());
        a.check_flow_psns(NodeId(0), FlowId(1), 8, 7, 9, Time::ZERO);
        assert_eq!(a.violations()[0].kind, ViolationKind::SequenceError);
    }

    #[test]
    fn cc_domains_are_checked() {
        use crate::cc::CcAuditInfo;
        use crate::units::Bandwidth;
        let mut a = Auditor::default();
        let ok = CcAuditInfo {
            rate: Bandwidth::gbps(20),
            target: Bandwidth::gbps(30),
            line: Bandwidth::gbps(40),
            alpha: Some(0.5),
        };
        a.check_cc(NodeId(0), FlowId(0), &ok, Time::ZERO);
        assert!(a.is_clean());
        let bad_alpha = CcAuditInfo {
            alpha: Some(1.5),
            ..ok
        };
        a.check_cc(NodeId(0), FlowId(0), &bad_alpha, Time::ZERO);
        let bad_order = CcAuditInfo {
            rate: Bandwidth::gbps(50),
            ..ok
        };
        a.check_cc(NodeId(0), FlowId(0), &bad_order, Time::ZERO);
        assert_eq!(a.violations().len(), 2);
        assert!(a
            .violations()
            .iter()
            .all(|v| v.kind == ViolationKind::CcDomain));
    }

    #[test]
    fn fault_tagged_drops_are_counted_not_violations() {
        let mut a = Auditor::default();
        a.on_fault_drop(NodeId(2), 3, Time::ZERO);
        a.on_fault_drop(NodeId(2), 3, Time::ZERO);
        assert!(a.is_clean());
        assert_eq!(a.fault_drops(), 2);
        // An *untagged* lossless drop must still be caught: tagging is
        // opt-in per drop, never a blanket exemption.
        a.on_drop(NodeId(2), 3, true, Time::ZERO);
        assert_eq!(a.violations()[0].kind, ViolationKind::LosslessDrop);
        assert_eq!(a.total_violations(), 1);
    }

    #[test]
    fn pfc_reset_clears_pairing_for_that_port_only() {
        let mut a = Auditor::default();
        a.on_pause(NodeId(1), 2, 3, Time::ZERO);
        a.on_pause(NodeId(1), 5, 3, Time::ZERO);
        // Link reset on (node 1, port 2): its pause obligation vanishes.
        a.on_pfc_reset(NodeId(1), 2);
        a.on_pause(NodeId(1), 2, 3, Time::ZERO); // not a double-pause now
        assert!(a.is_clean());
        // Port 5 was untouched: a second PAUSE there still violates.
        a.on_pause(NodeId(1), 5, 3, Time::ZERO);
        assert_eq!(a.violations()[0].kind, ViolationKind::PfcPairing);
    }

    #[test]
    fn span_mismatch_is_a_violation() {
        use crate::units::Duration;
        let mut a = Auditor::default();
        a.on_span_mismatch(
            NodeId(2),
            FlowId(5),
            Duration::from_micros(10),
            Duration::from_micros(11),
            Time::ZERO,
        );
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.violations()[0].kind, ViolationKind::SpanAccounting);
        assert_eq!(a.violations()[0].node, Some(NodeId(2)));
    }

    #[test]
    fn record_all_folds_external_violations_in() {
        let mut a = Auditor::default();
        let vs = vec![Violation {
            at: Time::from_micros(7),
            kind: ViolationKind::Convergence,
            node: Some(NodeId(3)),
            context: "watchdog still tripped".to_string(),
        }];
        a.record_all(&vs);
        assert_eq!(a.total_violations(), 1);
        assert_eq!(a.violations()[0].kind, ViolationKind::Convergence);
        assert!(!a.is_clean());
    }

    #[test]
    fn recording_is_capped_but_counted() {
        let mut a = Auditor::default();
        for _ in 0..200 {
            a.on_drop(NodeId(0), 3, true, Time::ZERO);
        }
        assert_eq!(a.violations().len(), MAX_RECORDED);
        assert_eq!(a.total_violations(), 200);
        assert!(a.report().contains("more"));
    }

    #[test]
    fn buffer_check_cadence() {
        let mut a = Auditor::default();
        let due: u64 = (0..3000).map(|_| a.buffer_check_due() as u64).sum();
        assert_eq!(due, 3000 / BUFFER_CHECK_PERIOD);
    }
}
