#![warn(missing_docs)]

//! # netsim — a deterministic packet-level datacenter fabric simulator
//!
//! The substrate for the DCQCN reproduction (Zhu et al., SIGCOMM 2015):
//! a discrete-event simulator modelling exactly the machinery the paper's
//! hardware testbed provides.
//!
//! * **links**: full-duplex, store-and-forward, exact integer serialization
//!   timing (picosecond clock),
//! * **switches**: shared-buffer (Trident II-style) with per-ingress PFC
//!   accounting, static/dynamic (β) PAUSE thresholds, RED/ECN marking on
//!   instantaneous egress queues, strict-priority scheduling, and ECMP,
//! * **hosts**: NICs with per-flow hardware-style rate limiters, a RoCE-like
//!   go-back-N reliable transport, the DCQCN notification point (CNP
//!   generation), and pluggable per-flow congestion control via the
//!   [`cc::CongestionControl`] trait,
//! * **measurement**: per-flow goodput counters, queue-depth samplers,
//!   PAUSE/drop/mark counters.
//!
//! Runs are fully deterministic: a run is a function of the topology, the
//! workload and a single seed. The core is synchronous and single-threaded
//! by design — congestion-control research needs reproducibility first.
//!
//! ## Quick example
//!
//! ```
//! use netsim::prelude::*;
//!
//! // Two hosts through one switch, one greedy flow, no congestion control.
//! let mut star = netsim::topology::star(
//!     2,
//!     netsim::topology::LinkParams::default(),
//!     HostConfig::default(),
//!     SwitchConfig::paper_default(),
//!     42,
//! );
//! let flow = star.net.add_flow(star.hosts[0], star.hosts[1], DATA_PRIORITY, |line| {
//!     Box::new(NoCc::new(line))
//! });
//! star.net.send_message(flow, u64::MAX, Time::ZERO);
//! star.net.run_until(Time::from_millis(2));
//! let gbps = star.net.flow_stats(flow).delivered_bytes as f64 * 8.0 / 2e-3 / 1e9;
//! assert!(gbps > 35.0, "goodput {gbps:.1} Gbps");
//! ```

pub mod audit;
pub mod buffer;
pub mod cc;
pub mod chaos;
pub mod ecn;
pub mod event;
pub mod faults;
pub mod host;
pub mod network;
pub mod packet;
pub mod port;
pub mod rng;
pub mod routing;
pub mod slab;
pub mod stats;
pub mod switch;
pub mod telemetry;
pub mod topology;
pub mod trace;
pub mod units;

/// The common imports experiments need.
pub mod prelude {
    pub use crate::buffer::{BufferConfig, PfcThreshold};
    pub use crate::cc::{CcActions, CongestionControl, NoCc};
    pub use crate::ecn::RedConfig;
    pub use crate::event::{LinkId, NodeId, PortId};
    pub use crate::faults::{FaultConfig, FaultPlan};
    pub use crate::host::HostConfig;
    pub use crate::network::{Network, NetworkBuilder};
    pub use crate::packet::{FlowId, CONTROL_PRIORITY, DATA_PRIORITY, HEADER_BYTES};
    pub use crate::stats::{median, percentile, FlowStats, SamplerConfig};
    pub use crate::switch::{PfcWatchdogConfig, SwitchConfig};
    pub use crate::telemetry::{Json, Metrics};
    pub use crate::units::{bytes, Bandwidth, Duration, Time};
}
