//! Route computation: shortest-path next-hop sets with equal-cost
//! multipath.
//!
//! The paper's testbed routes with BGP + ECMP over a Clos; in a Clos all
//! minimal paths are shortest paths, so plain BFS per destination yields
//! exactly the up/down ECMP route sets the testbed uses. Path selection
//! among equal-cost ports is done at the switch by hashing the flow id
//! (standing in for the 5-tuple) with a per-run salt.

use crate::event::{NodeId, PortId};
use std::collections::VecDeque;

/// An undirected edge: (node a, port on a, node b, port on b).
pub type Edge = (NodeId, PortId, NodeId, PortId);

/// Per-node routing table: destination node → equal-cost egress ports.
///
/// Stored flat, indexed by the (dense) destination node id: the lookup on
/// every switch hop is one bounds-checked array read instead of a hash.
/// An empty port list means "no route" — `get` treats both out-of-range
/// and empty as unroutable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteTable {
    ports: Vec<Vec<PortId>>,
}

impl RouteTable {
    /// An empty table (everything unroutable).
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Sets the equal-cost egress port set toward `dst`.
    pub fn insert(&mut self, dst: NodeId, ports: Vec<PortId>) {
        if dst.0 >= self.ports.len() {
            self.ports.resize_with(dst.0 + 1, Vec::new);
        }
        self.ports[dst.0] = ports;
    }

    /// The egress port set toward `dst`, or `None` when unroutable.
    #[inline]
    pub fn get(&self, dst: &NodeId) -> Option<&Vec<PortId>> {
        self.ports.get(dst.0).filter(|p| !p.is_empty())
    }

    /// Is `dst` routable from here?
    pub fn contains_key(&self, dst: &NodeId) -> bool {
        self.get(dst).is_some()
    }

    /// Number of routable destinations.
    pub fn len(&self) -> usize {
        self.ports.iter().filter(|p| !p.is_empty()).count()
    }

    /// True when no destination is routable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Index<&NodeId> for RouteTable {
    type Output = Vec<PortId>;
    fn index(&self, dst: &NodeId) -> &Vec<PortId> {
        self.get(dst).expect("no route to destination")
    }
}

/// Computes, for every node, the set of equal-cost shortest-path egress
/// ports toward each destination in `dests`.
///
/// Port lists are sorted for determinism. Unreachable destinations simply
/// have no entry.
pub fn compute_routes(num_nodes: usize, edges: &[Edge], dests: &[NodeId]) -> Vec<RouteTable> {
    compute_routes_masked(num_nodes, edges, &[], dests)
}

/// [`compute_routes`] over the surviving topology: edge `i` is skipped when
/// `down[i]` is true (indices past `down.len()` are treated as up). This is
/// route failover — after a link failure the network recomputes with the
/// dead link masked, and surviving ECMP members absorb its flows.
pub fn compute_routes_masked(
    num_nodes: usize,
    edges: &[Edge],
    down: &[bool],
    dests: &[NodeId],
) -> Vec<RouteTable> {
    // adjacency[u] = (neighbor, egress port on u)
    let mut adjacency: Vec<Vec<(NodeId, PortId)>> = vec![Vec::new(); num_nodes];
    for (i, &(a, pa, b, pb)) in edges.iter().enumerate() {
        if down.get(i).copied().unwrap_or(false) {
            continue;
        }
        adjacency[a.0].push((b, pa));
        adjacency[b.0].push((a, pb));
    }
    for adj in &mut adjacency {
        adj.sort_by_key(|&(n, p)| (n.0, p.0));
    }

    let mut tables: Vec<RouteTable> = vec![RouteTable::new(); num_nodes];
    for &dst in dests {
        // BFS from dst; dist[u] = hops from u to dst.
        let mut dist = vec![usize::MAX; num_nodes];
        dist[dst.0] = 0;
        let mut queue = VecDeque::from([dst]);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &adjacency[u.0] {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    queue.push_back(v);
                }
            }
        }
        for u in 0..num_nodes {
            if u == dst.0 || dist[u] == usize::MAX {
                continue;
            }
            let mut ports: Vec<PortId> = adjacency[u]
                .iter()
                .filter(|&&(v, _)| dist[v.0] + 1 == dist[u])
                .map(|&(_, p)| p)
                .collect();
            if !ports.is_empty() {
                ports.sort_by_key(|p| p.0);
                tables[u].insert(dst, ports);
            }
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }
    fn p(i: usize) -> PortId {
        PortId(i)
    }

    /// H0 -- S2 -- H1 (a single switch).
    #[test]
    fn star_routes() {
        let edges = vec![(n(0), p(0), n(2), p(0)), (n(1), p(0), n(2), p(1))];
        let t = compute_routes(3, &edges, &[n(0), n(1)]);
        assert_eq!(t[2][&n(0)], vec![p(0)]);
        assert_eq!(t[2][&n(1)], vec![p(1)]);
        assert_eq!(t[0][&n(1)], vec![p(0)]);
        assert!(!t[0].contains_key(&n(0)), "no route to self");
    }

    /// Two equal-cost middle switches:
    ///     H0 - A - {M1, M2} - B - H1
    #[test]
    fn ecmp_route_sets() {
        // nodes: 0=H0 1=H1 2=A 3=B 4=M1 5=M2
        let edges = vec![
            (n(0), p(0), n(2), p(0)),
            (n(1), p(0), n(3), p(0)),
            (n(2), p(1), n(4), p(0)),
            (n(2), p(2), n(5), p(0)),
            (n(3), p(1), n(4), p(1)),
            (n(3), p(2), n(5), p(1)),
        ];
        let t = compute_routes(6, &edges, &[n(0), n(1)]);
        // A has two equal-cost uplinks toward H1.
        assert_eq!(t[2][&n(1)], vec![p(1), p(2)]);
        // M1/M2 route down to B for H1.
        assert_eq!(t[4][&n(1)], vec![p(1)]);
        assert_eq!(t[5][&n(1)], vec![p(1)]);
        // B never routes H1-bound traffic back up.
        assert_eq!(t[3][&n(1)], vec![p(0)]);
        // And symmetric for H0.
        assert_eq!(t[3][&n(0)], vec![p(1), p(2)]);
    }

    #[test]
    fn unreachable_destinations_have_no_entry() {
        let edges = vec![(n(0), p(0), n(1), p(0))];
        let t = compute_routes(3, &edges, &[n(2)]);
        assert!(!t[0].contains_key(&n(2)));
        assert!(!t[1].contains_key(&n(2)));
    }

    #[test]
    fn routes_only_computed_for_requested_dests() {
        let edges = vec![(n(0), p(0), n(1), p(0))];
        let t = compute_routes(2, &edges, &[n(1)]);
        assert!(t[0].contains_key(&n(1)));
        assert!(!t[1].contains_key(&n(0)));
    }

    #[test]
    fn masking_an_edge_shrinks_the_ecmp_set() {
        // H0 - A - {M1, M2} - B - H1, then kill the A–M1 link (edge 2).
        let edges = vec![
            (n(0), p(0), n(2), p(0)),
            (n(1), p(0), n(3), p(0)),
            (n(2), p(1), n(4), p(0)),
            (n(2), p(2), n(5), p(0)),
            (n(3), p(1), n(4), p(1)),
            (n(3), p(2), n(5), p(1)),
        ];
        let mut down = vec![false; edges.len()];
        down[2] = true;
        let t = compute_routes_masked(6, &edges, &down, &[n(0), n(1)]);
        // The only surviving path in either direction goes via M2: M1 can
        // no longer reach A at all, so B's ECMP set shrinks too.
        assert_eq!(t[2][&n(1)], vec![p(2)]);
        assert_eq!(t[3][&n(0)], vec![p(2)]);
        // All-up mask reproduces compute_routes exactly.
        let all_up = compute_routes_masked(6, &edges, &[false; 6], &[n(0), n(1)]);
        let plain = compute_routes(6, &edges, &[n(0), n(1)]);
        assert_eq!(all_up[2][&n(1)], plain[2][&n(1)]);
    }

    #[test]
    fn masking_the_only_path_removes_the_route() {
        let edges = vec![(n(0), p(0), n(1), p(0))];
        let t = compute_routes_masked(2, &edges, &[true], &[n(1)]);
        assert!(!t[0].contains_key(&n(1)), "no route over a dead link");
    }

    /// The convergence auditor compares a switch's live table against a
    /// fresh computation; that only works if recomputing over the same
    /// topology yields a structurally identical table (and a masked one
    /// compares unequal).
    #[test]
    fn recomputed_tables_compare_equal() {
        let edges = vec![
            (n(0), p(0), n(2), p(0)),
            (n(1), p(0), n(3), p(0)),
            (n(2), p(1), n(4), p(0)),
            (n(2), p(2), n(5), p(0)),
            (n(3), p(1), n(4), p(1)),
            (n(3), p(2), n(5), p(1)),
        ];
        let dests = [n(0), n(1)];
        let a = compute_routes_masked(6, &edges, &[], &dests);
        let b = compute_routes_masked(6, &edges, &[false; 6], &dests);
        assert_eq!(a, b);
        let mut down = vec![false; 6];
        down[2] = true;
        let c = compute_routes_masked(6, &edges, &down, &dests);
        assert_ne!(a[2], c[2], "masking a link must change the table");
    }

    #[test]
    fn port_lists_are_sorted_and_deterministic() {
        // Same topology built with edges in different orders must produce
        // identical tables.
        let edges1 = vec![
            (n(0), p(0), n(2), p(0)),
            (n(2), p(2), n(3), p(0)),
            (n(2), p(1), n(4), p(0)),
            (n(3), p(1), n(1), p(0)),
            (n(4), p(1), n(1), p(1)),
        ];
        let mut edges2 = edges1.clone();
        edges2.reverse();
        let t1 = compute_routes(5, &edges1, &[n(1)]);
        let t2 = compute_routes(5, &edges2, &[n(1)]);
        assert_eq!(t1[0][&n(1)], t2[0][&n(1)]);
        assert_eq!(t1[2][&n(1)], vec![p(1), p(2)]);
    }
}
