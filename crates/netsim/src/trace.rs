//! Packet-level event tracing.
//!
//! A bounded, allocation-light record of what happened to packets —
//! marks, pauses, drops, deliveries — for debugging protocols and for
//! fine-grained assertions in tests. Disabled by default; enabling it
//! costs one branch per recorded event.
//!
//! ```
//! use netsim::prelude::*;
//! use netsim::trace::TraceKind;
//!
//! let mut star = netsim::topology::star(
//!     3,
//!     netsim::topology::LinkParams::default(),
//!     HostConfig { cnp_interval: None, ..HostConfig::default() },
//!     SwitchConfig::paper_default(),
//!     1,
//! );
//! star.net.enable_trace(10_000);
//! let f = star.net.add_flow(star.hosts[0], star.hosts[2], DATA_PRIORITY, |l| {
//!     Box::new(NoCc::new(l))
//! });
//! star.net.send_message(f, 5_000, Time::ZERO);
//! star.net.run_until(Time::from_millis(1));
//! let delivered = star
//!     .net
//!     .trace()
//!     .iter()
//!     .filter(|e| e.kind == TraceKind::Delivered)
//!     .count();
//! assert_eq!(delivered, 4, "5000 B = 4 packets (3×1436 + 692)");
//! ```

use crate::event::NodeId;
use crate::packet::FlowId;
use crate::units::Time;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A data packet was ECN-marked at a switch egress.
    Marked,
    /// A switch sent a PAUSE upstream.
    PauseSent,
    /// A switch sent a RESUME upstream.
    ResumeSent,
    /// A packet was dropped (pool exhaustion or lossy-mode overflow).
    Dropped,
    /// An in-order data packet was accepted by its receiver.
    Delivered,
    /// A receiver sent a go-back-N NAK.
    NackSent,
    /// An NP generated a CNP.
    CnpSent,
    /// A sender's retransmission timeout fired.
    Timeout,
    /// A link went down (fault injection); detail is the link index.
    LinkDown,
    /// A link came back up; detail is the link index.
    LinkUp,
    /// A frame was lost to an injected fault (detail 0 = link down,
    /// 1 = bit-error/CRC).
    FaultDropped,
    /// A switch's PFC storm watchdog tripped (detail is the class).
    WatchdogTrip,
}

/// One trace record.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Time,
    /// Where (switch or host).
    pub node: NodeId,
    /// The flow involved (`FlowId(u64::MAX)` when not flow-specific).
    pub flow: FlowId,
    /// What happened.
    pub kind: TraceKind,
    /// Event-specific detail: PSN for Delivered/NackSent, queue depth in
    /// bytes for Marked, priority class for Pause/Resume, 0 otherwise.
    pub detail: u64,
}

/// A bounded ring of trace events (oldest evicted first).
#[derive(Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    enabled: bool,
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Enables tracing with space for `capacity` events.
    ///
    /// A `capacity` of 0 means "no tracing": the tracer is reset to its
    /// disabled state. (It used to become an always-empty "enabled"
    /// ring, which recorded nothing yet still paid the enabled-path cost
    /// on every record.)
    pub fn enable(&mut self, capacity: usize) {
        if capacity == 0 {
            *self = Tracer::default();
            return;
        }
        self.events = Vec::with_capacity(capacity.min(1 << 20));
        self.capacity = capacity;
        self.head = 0;
        self.enabled = true;
    }

    /// Is tracing on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// The recorded events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.events.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, oldest first.
    pub fn of_kind(&self, kind: TraceKind) -> Vec<TraceEvent> {
        self.iter().filter(|e| e.kind == kind).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: Time::from_micros(t),
            node: NodeId(0),
            flow: FlowId(1),
            kind,
            detail: t,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(ev(1, TraceKind::Marked));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn records_in_order() {
        let mut t = Tracer::disabled();
        t.enable(10);
        for i in 0..5 {
            t.record(ev(i, TraceKind::Delivered));
        }
        let details: Vec<u64> = t.iter().map(|e| e.detail).collect();
        assert_eq!(details, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::disabled();
        t.enable(3);
        for i in 0..7 {
            t.record(ev(i, TraceKind::Marked));
        }
        let details: Vec<u64> = t.iter().map(|e| e.detail).collect();
        assert_eq!(details, vec![4, 5, 6]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn kind_filter() {
        let mut t = Tracer::disabled();
        t.enable(10);
        t.record(ev(1, TraceKind::Marked));
        t.record(ev(2, TraceKind::Dropped));
        t.record(ev(3, TraceKind::Marked));
        assert_eq!(t.of_kind(TraceKind::Marked).len(), 2);
        assert_eq!(t.of_kind(TraceKind::Dropped).len(), 1);
        assert_eq!(t.of_kind(TraceKind::Timeout).len(), 0);
    }

    #[test]
    fn zero_capacity_means_disabled() {
        let mut t = Tracer::disabled();
        t.enable(0);
        assert!(!t.is_enabled());
        t.record(ev(1, TraceKind::Marked));
        assert!(t.is_empty());
    }

    #[test]
    fn enable_zero_after_enable_disables_and_clears() {
        let mut t = Tracer::disabled();
        t.enable(4);
        t.record(ev(1, TraceKind::Marked));
        assert_eq!(t.len(), 1);
        t.enable(0);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        t.record(ev(2, TraceKind::Marked));
        assert!(t.is_empty(), "a zero-capacity tracer records nothing");
    }

    #[test]
    fn wraparound_at_exact_capacity_boundary() {
        let mut t = Tracer::disabled();
        t.enable(4);
        for i in 0..4 {
            t.record(ev(i, TraceKind::Marked));
        }
        // Exactly full: everything retained, nothing evicted yet.
        assert_eq!(t.len(), 4);
        let details: Vec<u64> = t.iter().map(|e| e.detail).collect();
        assert_eq!(details, vec![0, 1, 2, 3]);
        // The next record is the first wrap: oldest out, order intact.
        t.record(ev(4, TraceKind::Marked));
        let details: Vec<u64> = t.iter().map(|e| e.detail).collect();
        assert_eq!(details, vec![1, 2, 3, 4]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn re_enable_clears_and_resizes() {
        let mut t = Tracer::disabled();
        t.enable(8);
        for i in 0..5 {
            t.record(ev(i, TraceKind::Marked));
        }
        // Re-enabling starts a fresh ring at the new capacity; old
        // events are gone and the new bound applies immediately.
        t.enable(2);
        assert!(t.is_enabled());
        assert!(t.is_empty());
        for i in 10..13 {
            t.record(ev(i, TraceKind::Delivered));
        }
        let details: Vec<u64> = t.iter().map(|e| e.detail).collect();
        assert_eq!(details, vec![11, 12]);
    }

    #[test]
    fn disabled_tracer_stays_empty_under_load() {
        // The one-branch guarantee: a disabled tracer records nothing no
        // matter how many events flow past it, and never allocates.
        let mut t = Tracer::disabled();
        for i in 0..10_000 {
            t.record(ev(i, TraceKind::Delivered));
        }
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.iter().count(), 0);
    }
}
