//! The network: nodes, links, the event loop, and the experiment-facing
//! API (build a topology, add flows, inject messages, run, read stats).

use crate::audit::{check_queue_drain, Auditor, Violation, ViolationKind};
use crate::cc::CongestionControl;
use crate::ecn::RedConfig;
use crate::event::{Event, EventQueue, LinkId, NodeId, PortId, TimerKind};
use crate::faults::{FaultAction, FaultConfig, FaultEngine, FaultPlan, FaultStats, WireFate};
use crate::host::{Host, HostConfig};
use crate::packet::{FlowId, Packet, Priority, NUM_PRIORITIES};
use crate::port::Attachment;
use crate::rng::SplitMix64;
use crate::routing::{compute_routes_masked, Edge};
use crate::slab::PacketPool;
use crate::stats::{FlowStats, SamplerConfig, SwitchStats};
use crate::switch::{Switch, SwitchConfig};
use crate::telemetry::profile::Profiler;
use crate::telemetry::recorder::{FlightDump, FlightRecorder};
use crate::telemetry::registry::CounterId;
use crate::telemetry::spans::{CongestionTree, Spans, NUM_SPAN_STATES};
use crate::telemetry::timeline::{Timeline, TimelineSet, TrackId, TrackKind, DEFAULT_POINT_BUDGET};
use crate::telemetry::{Dashboard, Json, Metrics, Series};
use crate::trace::{TraceEvent, TraceKind, Tracer};
use crate::units::{Bandwidth, Duration, Time};
use std::collections::HashMap;

/// Trace-ring capacity per node when the flight recorder is enabled
/// automatically alongside the sanitize auditor.
const DEFAULT_FLIGHT_CAPACITY: usize = 64;

/// A node is either a switch or a host.
pub enum Node {
    /// A shared-buffer switch.
    Switch(Switch),
    /// An end host with one NIC.
    Host(Host),
}

/// Mutable context threaded through node callbacks: the event queue, the
/// simulator RNG, and global per-flow statistics. Kept separate from the
/// node table so node methods can borrow both.
pub struct Ctx {
    /// The event queue (also the clock).
    pub queue: EventQueue,
    /// Simulator-internal randomness (RED sampling).
    pub rng: SplitMix64,
    /// Per-run ECMP hash salt.
    pub ecmp_salt: u64,
    /// Per-flow counters, indexed by flow id (ids are handed out
    /// sequentially from 0, so a flat Vec beats hashing on every packet).
    pub flow_stats: Vec<FlowStats>,
    /// Packet-level event tracer (disabled unless enabled on the network).
    pub tracer: Tracer,
    /// Runtime invariant auditor (active only with the `sanitize`
    /// feature; otherwise every call is an inlined no-op).
    pub audit: Auditor,
    /// The telemetry metrics registry. Hot-path updates go through the
    /// `Copy` handles in `metrics.h` — one array index, no hashing.
    pub metrics: Metrics,
    /// Per-node flight recorder (disabled by default; auto-enabled when
    /// the sanitize auditor is compiled in).
    pub flight: FlightRecorder,
    /// Span-based causal tracer (disabled unless enabled on the network;
    /// every hook is one branch when off).
    pub spans: Spans,
    /// Slab of in-flight packets: `Event::Deliver` carries a handle into
    /// this pool, recycled when the event dispatches.
    pub pool: PacketPool,
}

impl Ctx {
    /// Mutable access to a flow's counters (created on first touch).
    pub fn stats(&mut self, id: FlowId) -> &mut FlowStats {
        let i = id.0 as usize;
        if i >= self.flow_stats.len() {
            self.flow_stats.resize_with(i + 1, FlowStats::default);
        }
        &mut self.flow_stats[i]
    }

    /// Records a trace event to both the packet tracer and the flight
    /// recorder (each is one branch when disabled).
    #[inline]
    pub fn record_trace(&mut self, event: TraceEvent) {
        self.tracer.record(event);
        self.flight.record(event);
    }

    /// Settles a flow's span timeline at a message completion and routes
    /// any FCT-decomposition mismatch (`Σ spans != fct`) to the sanitize
    /// auditor. One branch when span tracing is disabled.
    #[inline]
    pub fn complete_span(&mut self, flow: FlowId, host: NodeId, now: Time) {
        if let Some((fct, sum)) = self.spans.on_complete(flow, now) {
            self.audit.on_span_mismatch(host, flow, fct, sum, now);
        }
    }
}

/// One-shot mutation executed at a scheduled time (start flows, flip
/// configuration mid-run).
pub type Hook = Box<dyn FnMut(&mut Network)>;

/// Declarative network construction.
pub struct NetworkBuilder {
    seed: u64,
    nodes: Vec<NodeSpec>,
    links: Vec<(NodeId, NodeId, Bandwidth, Duration)>,
}

enum NodeSpec {
    Host(HostConfig),
    Switch(SwitchConfig),
}

impl NetworkBuilder {
    /// Starts a build; `seed` fixes all simulator randomness (RED sampling
    /// and the ECMP salt).
    pub fn new(seed: u64) -> NetworkBuilder {
        NetworkBuilder {
            seed,
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Adds a host.
    pub fn host(&mut self, config: HostConfig) -> NodeId {
        self.nodes.push(NodeSpec::Host(config));
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a switch (port count is inferred from its links).
    pub fn switch(&mut self, config: SwitchConfig) -> NodeId {
        self.nodes.push(NodeSpec::Switch(config));
        NodeId(self.nodes.len() - 1)
    }

    /// Connects two nodes with a full-duplex link and returns its id (for
    /// fault injection; links are numbered in declaration order).
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: Bandwidth,
        delay: Duration,
    ) -> LinkId {
        self.links.push((a, b, bandwidth, delay));
        LinkId(self.links.len() - 1)
    }

    /// Materializes the network: allocates ports, attaches links, computes
    /// shortest-path ECMP routes toward every host.
    pub fn build(self) -> Network {
        let n = self.nodes.len();
        // Assign port indices per node in link-declaration order.
        let mut port_count = vec![0usize; n];
        let mut edges: Vec<Edge> = Vec::with_capacity(self.links.len());
        let mut attach: Vec<(NodeId, usize, Attachment)> = Vec::new();
        for (li, &(a, b, bw, delay)) in self.links.iter().enumerate() {
            let pa = PortId(port_count[a.0]);
            let pb = PortId(port_count[b.0]);
            port_count[a.0] += 1;
            port_count[b.0] += 1;
            edges.push((a, pa, b, pb));
            attach.push((
                a,
                pa.0,
                Attachment {
                    link: LinkId(li),
                    peer: b,
                    peer_port: pb,
                    bandwidth: bw,
                    delay,
                },
            ));
            attach.push((
                b,
                pb.0,
                Attachment {
                    link: LinkId(li),
                    peer: a,
                    peer_port: pa,
                    bandwidth: bw,
                    delay,
                },
            ));
        }

        let mut nodes: Vec<Node> = self
            .nodes
            .into_iter()
            .enumerate()
            .map(|(i, spec)| match spec {
                NodeSpec::Host(cfg) => {
                    assert!(
                        port_count[i] <= 1,
                        "host {i} has {} links; hosts have one NIC",
                        port_count[i]
                    );
                    Node::Host(Host::new(NodeId(i), cfg))
                }
                NodeSpec::Switch(cfg) => Node::Switch(Switch::new(NodeId(i), port_count[i], cfg)),
            })
            .collect();

        for (node, port, att) in attach {
            match &mut nodes[node.0] {
                Node::Host(h) => h.port.attach = Some(att),
                Node::Switch(s) => s.ports[port].attach = Some(att),
            }
        }

        // Routes toward every host.
        let dests: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, Node::Host(_)))
            .map(|(i, _)| NodeId(i))
            .collect();
        let tables = compute_routes_masked(n, &edges, &[], &dests);
        for (i, table) in tables.into_iter().enumerate() {
            if let Node::Switch(s) = &mut nodes[i] {
                s.routes = table;
            }
        }

        let mut rng = SplitMix64::new(self.seed);
        let ecmp_salt = rng.next_u64();
        let num_links = edges.len();
        let mut flight = FlightRecorder::new(n);
        if Auditor::enabled() {
            // With the auditor compiled in, a violation must always yield
            // an event history — enable the recorder from the start.
            flight.enable(DEFAULT_FLIGHT_CAPACITY);
        }
        Network {
            nodes,
            ctx: Ctx {
                queue: EventQueue::new(),
                rng,
                ecmp_salt,
                flow_stats: Vec::new(),
                tracer: Tracer::disabled(),
                audit: Auditor::default(),
                metrics: Metrics::standard(),
                flight,
                spans: Spans::disabled(),
                pool: PacketPool::new(),
            },
            edges,
            dests,
            faults: FaultEngine::inactive(num_links),
            flow_locator: HashMap::new(),
            flow_order: Vec::new(),
            next_flow_id: 0,
            sampler: Sampler::default(),
            sample_interval: None,
            timelines: TimelineSet::new(),
            hooks: Vec::new(),
            profiler: Profiler::new(),
            dumped_violations: 0,
            batch: Vec::new(),
        }
    }
}

/// A flow whose instantaneous CC rate the sampler records, resolved to
/// its host/slot once at registration so the per-tick read is two array
/// indexes.
#[derive(Debug, Clone, Copy)]
struct RateTap {
    flow: FlowId,
    host: NodeId,
    slot: usize,
    track: TrackId,
}

/// A registry counter sampled as per-interval deltas (PAUSE/ECN/CNP/drop
/// rates). `prev` is the counter value at the previous tick.
#[derive(Debug, Clone, Copy)]
struct CounterTap {
    id: CounterId,
    track: TrackId,
    prev: u64,
}

/// The periodic sampler's resolved state: every watched quantity bound
/// to its timeline track at `enable_sampling` time (cold), so
/// `take_sample` is pure index arithmetic — no map lookups, no
/// allocation, matching the registry's hot-path discipline.
#[derive(Debug, Clone, Default)]
struct Sampler {
    /// Record delivered bytes for every flow (including ones added after
    /// sampling was enabled).
    all: bool,
    queues: Vec<(NodeId, PortId, TrackId)>,
    rates: Vec<RateTap>,
    counters: Vec<CounterTap>,
    /// Delivered-bytes track per flow, indexed by flow id (`None` for
    /// unsampled flows).
    bytes: Vec<Option<TrackId>>,
}

/// A fully built network plus its simulation state.
pub struct Network {
    /// All nodes.
    pub nodes: Vec<Node>,
    /// Event queue, RNG, per-flow stats.
    pub ctx: Ctx,
    /// Bounded-memory time-series tracks (populated when sampling is
    /// enabled; see `telemetry::timeline`).
    pub timelines: TimelineSet,
    /// All links, indexed by [`LinkId`] (declaration order).
    edges: Vec<Edge>,
    /// Route destinations (every host), kept for failover recomputation.
    dests: Vec<NodeId>,
    /// Fault-injection engine. Inactive (one dead branch on the Deliver
    /// path) unless a fault plan is installed or a link is toggled.
    faults: FaultEngine,
    flow_locator: HashMap<FlowId, (NodeId, usize)>,
    /// Flow ids in registration order. Ids are handed out sequentially,
    /// so this is always sorted — `take_sample` iterates it instead of
    /// collecting and sorting `flow_stats` keys every tick.
    flow_order: Vec<FlowId>,
    next_flow_id: u64,
    sampler: Sampler,
    sample_interval: Option<Duration>,
    hooks: Vec<Option<Hook>>,
    /// Event-loop self-profiler (`--features profile`; no-op otherwise).
    profiler: Profiler,
    /// How many recorded auditor violations have already triggered a
    /// flight-recorder dump (cursor into `audit.violations()`).
    dumped_violations: usize,
    /// Reusable buffer for same-timestamp event cohorts (see `run_until`);
    /// held on the network so the allocation survives across calls.
    batch: Vec<Event>,
}

impl Network {
    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.ctx.queue.now()
    }

    /// Borrow a host.
    pub fn host(&self, id: NodeId) -> &Host {
        match &self.nodes[id.0] {
            Node::Host(h) => h,
            Node::Switch(_) => panic!("node {} is a switch", id.0),
        }
    }

    /// Mutably borrow a host.
    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match &mut self.nodes[id.0] {
            Node::Host(h) => h,
            Node::Switch(_) => panic!("node {} is a switch", id.0),
        }
    }

    /// Borrow a switch.
    pub fn switch(&self, id: NodeId) -> &Switch {
        match &self.nodes[id.0] {
            Node::Switch(s) => s,
            Node::Host(_) => panic!("node {} is a host", id.0),
        }
    }

    /// Mutably borrow a switch.
    pub fn switch_mut(&mut self, id: NodeId) -> &mut Switch {
        match &mut self.nodes[id.0] {
            Node::Switch(s) => s,
            Node::Host(_) => panic!("node {} is a host", id.0),
        }
    }

    /// A switch's counters.
    pub fn switch_stats(&self, id: NodeId) -> SwitchStats {
        self.switch(id).stats
    }

    /// Line rate of a host's NIC.
    pub fn line_rate(&self, host: NodeId) -> Bandwidth {
        self.host(host).line_rate()
    }

    /// Registers a flow from `src` to `dst`; `make_cc` receives the NIC
    /// line rate and returns the flow's congestion-control instance.
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        priority: Priority,
        make_cc: impl FnOnce(Bandwidth) -> Box<dyn CongestionControl>,
    ) -> FlowId {
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let line = self.line_rate(src);
        let idx = self
            .host_mut(src)
            .add_flow(id, dst, priority, make_cc(line));
        self.flow_locator.insert(id, (src, idx));
        self.flow_order.push(id);
        self.ctx.stats(id); // materialize the flow's counters
        if self.sample_interval.is_some() && self.sampler.all {
            // Sampling all flows: bind the newcomer to its bytes track
            // so flows added mid-run are recorded too.
            let track = self.bytes_track(id);
            self.set_bytes_track(id, track);
        }
        id
    }

    /// Schedules `bytes` to be handed to `flow` at time `at` (clamped to
    /// now). Use `u64::MAX` for a greedy, never-ending flow.
    pub fn send_message(&mut self, flow: FlowId, bytes: u64, at: Time) {
        let (host, idx) = self.flow_locator[&flow];
        let at = at.max(self.ctx.queue.now());
        self.ctx.queue.schedule(
            at,
            Event::Timer {
                node: host,
                kind: TimerKind::MessageArrival { flow: idx, bytes },
            },
        );
    }

    /// A flow's counters.
    pub fn flow_stats(&self, flow: FlowId) -> &FlowStats {
        &self.ctx.flow_stats[flow.0 as usize]
    }

    /// A flow's current CC rate.
    pub fn flow_rate(&self, flow: FlowId) -> Bandwidth {
        let (host, idx) = self.flow_locator[&flow];
        self.host(host).flows[idx].current_rate()
    }

    /// Average receiver goodput of a flow over `[from, to]`, in Gbps,
    /// computed from delivered bytes. Requires `from < to`.
    ///
    /// Uses the flow's sampled delivered-bytes timeline when available
    /// (exact at the boundaries while the track's bucket width is finer
    /// than the sampling interval — true for every experiment cadence in
    /// the harness), else the flow's total counters.
    pub fn goodput_gbps(&self, flow: FlowId, from: Time, to: Time) -> f64 {
        let dt = (to - from).as_secs_f64();
        if let Some(tl) = self.flow_bytes_timeline(flow) {
            if tl.count() > 0 {
                let at = |t: Time| tl.value_at(t).unwrap_or(0.0);
                return (at(to) - at(from)) * 8.0 / dt / 1e9;
            }
        }
        let st = &self.ctx.flow_stats[flow.0 as usize];
        st.delivered_bytes as f64 * 8.0 / dt / 1e9
    }

    /// The queue-depth timeline of a watched `(node, port)` (`None`
    /// unless sampling was enabled with that queue).
    pub fn queue_timeline(&self, node: NodeId, port: PortId) -> Option<&Timeline> {
        self.sampler
            .queues
            .iter()
            .find(|&&(n, p, _)| n == node && p == port)
            .map(|&(_, _, track)| self.timelines.get(track))
    }

    /// A flow's cumulative delivered-bytes timeline (`None` unless the
    /// sampler records it).
    pub fn flow_bytes_timeline(&self, flow: FlowId) -> Option<&Timeline> {
        self.sampler
            .bytes
            .get(flow.0 as usize)
            .copied()
            .flatten()
            .map(|track| self.timelines.get(track))
    }

    /// A flow's instantaneous CC-rate timeline in Gbps (`None` unless it
    /// was listed in `SamplerConfig::rate_flows`).
    pub fn flow_rate_timeline(&self, flow: FlowId) -> Option<&Timeline> {
        self.sampler
            .rates
            .iter()
            .find(|tap| tap.flow == flow)
            .map(|tap| self.timelines.get(tap.track))
    }

    /// Registers (or re-finds) a flow's delivered-bytes track. Cold.
    fn bytes_track(&mut self, id: FlowId) -> TrackId {
        self.timelines.track(
            &format!("flow_bytes/{}", id.0),
            TrackKind::Cumulative,
            1.0,
            DEFAULT_POINT_BUDGET,
        )
    }

    /// Binds a flow id to its bytes track, growing the id-indexed slot
    /// table as needed.
    fn set_bytes_track(&mut self, id: FlowId, track: TrackId) {
        let i = id.0 as usize;
        if i >= self.sampler.bytes.len() {
            self.sampler.bytes.resize(i + 1, None);
        }
        self.sampler.bytes[i] = Some(track);
    }

    /// Enables packet-level tracing with a ring of `capacity` events.
    ///
    /// A `capacity` of 0 means "no tracing": the tracer is returned to
    /// its disabled state (one branch per record) rather than an
    /// always-empty ring that still pays the record cost.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.ctx.tracer.enable(capacity);
    }

    /// The recorded trace (empty unless [`Network::enable_trace`] was
    /// called).
    pub fn trace(&self) -> &Tracer {
        &self.ctx.tracer
    }

    /// Enables span-based causal tracing (see `telemetry::spans`): up to
    /// `capacity` closed spans per flow plus bounded hop spans and
    /// PAUSE-propagation edges. A `capacity` of 0 disables it.
    pub fn enable_spans(&mut self, capacity: usize) {
        self.ctx.spans.enable(capacity);
    }

    /// The causal-tracing recorder (inert unless
    /// [`Network::enable_spans`] was called).
    pub fn spans(&self) -> &Spans {
        &self.ctx.spans
    }

    /// A flow's per-state attributed time as of the current simulation
    /// time (see `telemetry::spans` for the decomposition identity).
    pub fn span_breakdown(&self, flow: FlowId) -> Option<[Duration; NUM_SPAN_STATES]> {
        self.ctx.spans.breakdown(flow, self.now())
    }

    /// Folds recorded PAUSE/RESUME edges into the run's congestion tree:
    /// root port(s), aggregated who-paused-whom edges, and victim flows.
    pub fn congestion_tree(&self) -> CongestionTree {
        self.ctx.spans.congestion_tree(self.now())
    }

    /// Renders everything the span tracer recorded as deterministic
    /// Chrome trace-event JSON (loads in Perfetto / `about://tracing`).
    pub fn chrome_trace(&self) -> Json {
        self.ctx.spans.chrome_trace(self.now())
    }

    /// Enables periodic sampling every `interval`: each watched queue,
    /// flow and counter named by `config` becomes a bounded-memory
    /// track in [`Network::timelines`]. Registration (name formatting,
    /// track allocation) happens here, once; the per-tick sample is
    /// index arithmetic only.
    ///
    /// # Panics
    /// Panics when `config.counters` names a counter that is not
    /// registered — a config typo, caught up front.
    pub fn enable_sampling(&mut self, interval: Duration, config: SamplerConfig) {
        let use_all = config.all_flows || config.flows.is_empty();
        let mut sampler = Sampler {
            all: use_all,
            ..Sampler::default()
        };
        for &(node, port) in &config.queues {
            let track = self.timelines.track(
                &format!("queue_bytes/{}:{}", node.0, port.0),
                TrackKind::Gauge,
                1.0,
                DEFAULT_POINT_BUDGET,
            );
            sampler.queues.push((node, port, track));
        }
        for &id in &config.rate_flows {
            let (host, slot) = self.flow_locator[&id];
            let track = self.timelines.track(
                &format!("flow_rate_gbps/{}", id.0),
                TrackKind::Gauge,
                1e-6, // micro-Gbps fixed point
                DEFAULT_POINT_BUDGET,
            );
            sampler.rates.push(RateTap {
                flow: id,
                host,
                slot,
                track,
            });
        }
        for name in &config.counters {
            let id = self
                .ctx
                .metrics
                .registry
                .counter_id(name)
                .unwrap_or_else(|| panic!("enable_sampling: unknown counter '{name}'"));
            let track = self.timelines.track(
                &format!("rate/{name}"),
                TrackKind::Counter,
                1.0,
                DEFAULT_POINT_BUDGET,
            );
            sampler.counters.push(CounterTap {
                id,
                track,
                prev: self.ctx.metrics.registry.counter_get(id),
            });
        }
        self.sampler = sampler;
        let byte_flows: Vec<FlowId> = if use_all {
            self.flow_order.clone()
        } else {
            config.flows.clone()
        };
        for id in byte_flows {
            let track = self.bytes_track(id);
            self.set_bytes_track(id, track);
        }
        self.sample_interval = Some(interval);
        let at = self.ctx.queue.now() + interval;
        self.ctx.queue.schedule(at, Event::Sample);
    }

    /// Installs a fault plan: activates the fault engine (with `config`'s
    /// failover policy and bit-error seed) and schedules every planned
    /// action on the event queue. Actions planned in the past fire
    /// immediately (clamped to now).
    ///
    /// # Panics
    /// Panics when the plan fails [`FaultPlan::validate`] (overlapping or
    /// nested events on the same link/storm — their interleaving would be
    /// undefined, so they are rejected up front with the validator's
    /// message rather than silently reordered).
    pub fn install_faults(&mut self, plan: &FaultPlan, config: FaultConfig) {
        if let Err(msg) = plan.validate() {
            panic!("{msg}");
        }
        self.faults.activate(config);
        let now = self.ctx.queue.now();
        for &(at, action) in plan.actions() {
            self.ctx
                .queue
                .schedule(at.max(now), Event::Fault { action });
        }
    }

    /// Fault-engine counters (all zero when no faults were injected).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats
    }

    /// Is `link` currently up? (Always true before any fault injection.)
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.faults.link_up(link)
    }

    /// The link connecting `a` and `b` directly (either order), if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.edges
            .iter()
            .position(|&(x, _, y, _)| (x == a && y == b) || (x == b && y == a))
            .map(LinkId)
    }

    /// Administratively sets one link up or down, immediately.
    ///
    /// A transition (either direction) fails both directions at once and
    /// resets PFC state on both endpoints — a repaired link comes back
    /// with a clean slate, and a dead one cannot leave its neighbor
    /// stuck honoring a PAUSE whose RESUME will never arrive. With
    /// failover enabled (the default) routes are recomputed over the
    /// surviving topology. Packets already in flight on the link when it
    /// dies are lost (counted as fault drops).
    pub fn set_link_state(&mut self, link: LinkId, up: bool) {
        if self.faults.links[link.0].up == up {
            return;
        }
        self.faults.active = true;
        self.faults.links[link.0].up = up;
        self.faults.stats.transitions += 1;
        let (a, pa, b, pb) = self.edges[link.0];
        self.reset_pfc_at(a, pa);
        self.reset_pfc_at(b, pb);
        self.ctx.metrics.inc(self.ctx.metrics.h.link_transitions);
        self.ctx.record_trace(TraceEvent {
            at: self.ctx.queue.now(),
            node: a,
            flow: FlowId(u64::MAX),
            kind: if up {
                TraceKind::LinkUp
            } else {
                TraceKind::LinkDown
            },
            detail: link.0 as u64,
        });
        if self.faults.config.failover {
            self.recompute_routes();
        }
    }

    /// Recomputes every switch's routing table over the currently-up
    /// links (route failover / restoration).
    pub fn recompute_routes(&mut self) {
        let down: Vec<bool> = self.faults.links.iter().map(|l| !l.up).collect();
        let tables = compute_routes_masked(self.nodes.len(), &self.edges, &down, &self.dests);
        for (i, table) in tables.into_iter().enumerate() {
            if let Node::Switch(s) = &mut self.nodes[i] {
                s.routes = table;
            }
        }
        self.faults.stats.reroutes += 1;
    }

    /// Clears all PFC state on one endpoint of a transitioning link and
    /// kicks its transmitter (it may have been pause-blocked).
    fn reset_pfc_at(&mut self, node: NodeId, port: PortId) {
        let Network { nodes, ctx, .. } = self;
        ctx.audit.on_pfc_reset(node, port.0);
        match &mut nodes[node.0] {
            Node::Switch(s) => s.reset_link_pfc(ctx, port),
            Node::Host(h) => {
                h.port.reset_pfc();
                h.try_send(ctx);
                h.update_spans(ctx);
            }
        }
    }

    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::LinkDown { link } => self.set_link_state(link, false),
            FaultAction::LinkUp { link } => self.set_link_state(link, true),
            FaultAction::SetBitError { link, drop_prob } => {
                self.faults.active = true;
                self.faults.links[link.0].drop_prob = drop_prob;
            }
            FaultAction::EcnOff { switch } => {
                // The §5 misconfiguration case: marking silently stops.
                self.switch_mut(switch).config.red = RedConfig::disabled();
            }
            FaultAction::PauseStormTick {
                host,
                class,
                until,
                refresh,
            } => {
                let now = self.ctx.queue.now();
                let Network {
                    nodes, ctx, faults, ..
                } = self;
                if let Node::Host(h) = &mut nodes[host.0] {
                    if let Some(att) = h.port.attach {
                        h.port
                            .pfc_queue
                            .push_back(Packet::pfc(host, att.peer, class, true));
                        faults.stats.storm_pauses += 1;
                        ctx.metrics.inc(ctx.metrics.h.storm_pauses);
                        if ctx.spans.is_enabled() {
                            ctx.spans.record_pause_edge(crate::faults::storm_pause_edge(
                                host, att, class, now,
                            ));
                        }
                        h.try_send(ctx);
                        h.update_spans(ctx);
                    }
                }
                let next = now + refresh;
                if refresh > Duration::ZERO && next <= until {
                    self.ctx.queue.schedule(next, Event::Fault { action });
                }
            }
            FaultAction::WedgeWatchdog {
                switch,
                port,
                class,
            } => {
                let Network { nodes, ctx, .. } = self;
                if let Node::Switch(s) = &mut nodes[switch.0] {
                    s.wedge_watchdog(ctx, port, class as usize);
                }
            }
        }
    }

    /// Schedules a one-shot mutation of the network at time `at`.
    pub fn schedule_hook(&mut self, at: Time, hook: Hook) {
        let id = self.hooks.len();
        self.hooks.push(Some(hook));
        self.ctx.queue.schedule(at, Event::Hook { id });
    }

    /// Runs the simulation until (and including) events at `until`.
    pub fn run_until(&mut self, until: Time) {
        // Events sharing a timestamp are drained from the queue as one
        // cohort and dispatched back-to-back, skipping the scheduler's
        // bucket/heap machinery between them. Order is unchanged: anything
        // a dispatch schedules at the same timestamp gets a higher seq
        // than the whole drained cohort and forms the *next* cohort.
        // The buffer is taken out of `self` so `dispatch` (which may run
        // arbitrary hooks) can borrow the network freely.
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(t) = self.ctx.queue.pop_batch(until, &mut batch) {
            for event in batch.drain(..) {
                self.ctx.audit.on_event(t);
                let kind = if Profiler::enabled() {
                    event.kind_index()
                } else {
                    0
                };
                // `mark` is `()` without the profile feature.
                #[allow(clippy::let_unit_value)]
                let mark = self.profiler.mark();
                self.dispatch(event);
                self.profiler.on_event(kind, mark);
                if self.ctx.audit.buffer_check_due() {
                    self.audit_buffers_now();
                }
                // Dead branch without the sanitize feature (`violations()`
                // is a constant empty slice).
                if self.ctx.audit.violations().len() != self.dumped_violations {
                    self.flight_dump_new_violations();
                }
            }
        }
        self.batch = batch;
        // The loop leaves the clock at the last *popped* event, which may
        // fall well short of `until` (or never move at all in an idle
        // window). Land on the horizon itself so spans, telemetry
        // timestamps, and back-to-back `run_until` calls all measure the
        // window the caller asked for.
        self.ctx.queue.advance_clock(until);
    }

    /// Snapshots the flight recorder for every newly recorded auditor
    /// violation that names a node. Cold path.
    fn flight_dump_new_violations(&mut self) {
        let Ctx { audit, flight, .. } = &mut self.ctx;
        let violations = audit.violations();
        for v in violations.iter().skip(self.dumped_violations) {
            if let Some(node) = v.node {
                flight.dump(node, v.at, &format!("{:?}: {}", v.kind, v.context));
            }
        }
        self.dumped_violations = violations.len();
    }

    /// The runtime invariant auditor's findings (always empty without the
    /// `sanitize` feature).
    pub fn audit(&self) -> &Auditor {
        &self.ctx.audit
    }

    /// Runs the shared-buffer conservation check on every switch right
    /// now. The event loop does this periodically on its own; tests call
    /// it directly to audit a hand-corrupted state.
    pub fn audit_buffers_now(&mut self) {
        let now = self.ctx.queue.now();
        let Network { nodes, ctx, .. } = self;
        for node in nodes.iter() {
            if let Node::Switch(s) = node {
                ctx.audit.check_buffer(
                    s.id,
                    s.buffer.occupied(),
                    s.buffer.ingress_total(),
                    s.buffer.config().total_bytes,
                    now,
                );
            }
        }
        // Tests call this directly (outside the event loop), so sweep for
        // dumps here too, not only in `run_until`.
        if self.ctx.audit.violations().len() != self.dumped_violations {
            self.flight_dump_new_violations();
        }
    }

    /// Number of links in the fabric (fault injection targets).
    pub fn num_links(&self) -> usize {
        self.edges.len()
    }

    /// Sum of queued bytes across every port of every node (switch egress
    /// queues plus host NICs). The convergence drain samples read this.
    pub fn total_queued_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Switch(s) => s.ports.iter().map(|p| p.total_queued_bytes()).sum(),
                Node::Host(h) => h.port.total_queued_bytes(),
            })
            .sum()
    }

    /// Per-flow delivered-byte counters indexed by flow id. The
    /// convergence stuck-QP check snapshots this at the start of the
    /// settle window and compares at the end.
    pub fn delivered_snapshot(&self) -> Vec<u64> {
        self.ctx
            .flow_stats
            .iter()
            .map(|s| s.delivered_bytes)
            .collect()
    }

    /// Post-fault convergence audit. Call after the last planned fault
    /// has cleared plus a settling bound: `settle_start` is when the
    /// settle window began (all faults cleared), `baseline` a
    /// [`Network::delivered_snapshot`] taken at `settle_start`, and
    /// `queue_samples` periodic `(time, total_queued_bytes)` probes taken
    /// across the window. Checks, in order:
    ///
    /// 1. every link is up and carries no residual bit-error probability,
    /// 2. every PFC watchdog has restored (no `pfc_ignore` anywhere),
    /// 3. no port has been pause-blocked continuously since before the
    ///    settle window (transient PAUSE under live traffic is normal),
    /// 4. queues drained below `queue_threshold`, or are at least still
    ///    visibly draining (see [`check_queue_drain`]),
    /// 5. every live, unfinished QP made byte progress across the window
    ///    (torn-down QPs are legitimate degradation, not stuck state),
    /// 6. every switch's routes equal a fresh [`compute_routes_masked`]
    ///    over the current link state.
    ///
    /// The list is returned unconditionally so release campaign runs can
    /// read it; with the `sanitize` feature the violations are also
    /// folded into the auditor as [`ViolationKind::Convergence`] and the
    /// flight recorder is dumped for each violation that names a node.
    ///
    /// The settling bound must exceed the watchdog recovery interval and
    /// the worst-case RTO backoff gap (`rto × rto_backoff_cap`), or
    /// healthy in-progress recovery can be misread as stuck state.
    pub fn check_convergence(
        &mut self,
        settle_start: Time,
        queue_threshold: u64,
        baseline: &[u64],
        queue_samples: &[(Time, u64)],
    ) -> Vec<Violation> {
        let now = self.ctx.queue.now();
        let mut violations: Vec<Violation> = Vec::new();
        let conv = |node: Option<NodeId>, context: String| Violation {
            at: now,
            kind: ViolationKind::Convergence,
            node,
            context,
        };

        // 1. Link health.
        for (i, l) in self.faults.links.iter().enumerate() {
            let (a, _, b, _) = self.edges[i];
            if !l.up {
                violations.push(conv(
                    Some(a),
                    format!("link {i} ({}-{}) still down at convergence check", a.0, b.0),
                ));
            }
            if l.drop_prob > 0.0 {
                let p = l.drop_prob;
                violations.push(conv(
                    Some(a),
                    format!(
                        "link {i} ({}-{}) still degraded (bit-error p={p})",
                        a.0, b.0
                    ),
                ));
            }
        }

        // 2 + 3. Port pause state: wedged watchdogs and standing pauses.
        for (ni, node) in self.nodes.iter().enumerate() {
            let mut check_port = |pid: usize, port: &crate::port::Port| {
                for c in 0..NUM_PRIORITIES {
                    if port.pfc_ignore[c] {
                        violations.push(conv(
                            Some(NodeId(ni)),
                            format!(
                                "node {ni} port {pid} class {c}: watchdog still \
                                 tripped (PAUSE ignored) after settle window"
                            ),
                        ));
                    }
                    if port.rx_paused[c] && port.rx_paused_since[c] <= settle_start {
                        let since = port.rx_paused_since[c];
                        violations.push(conv(
                            Some(NodeId(ni)),
                            format!(
                                "node {ni} port {pid} class {c}: pause-blocked \
                                 continuously since {since} (before settle window)"
                            ),
                        ));
                    }
                }
            };
            match node {
                Node::Switch(s) => {
                    for (pid, p) in s.ports.iter().enumerate() {
                        check_port(pid, p);
                    }
                }
                Node::Host(h) => check_port(0, &h.port),
            }
        }

        // 4. Queue drain across the settle window.
        if let Some(v) = check_queue_drain(queue_samples, queue_threshold) {
            violations.push(v);
        }

        // 5. Stuck QPs: live, unfinished flows must have moved bytes.
        for node in &self.nodes {
            if let Node::Host(h) = node {
                for f in &h.flows {
                    if f.dead || f.is_idle() {
                        continue;
                    }
                    let i = f.id.0 as usize;
                    let before = baseline.get(i).copied().unwrap_or(0);
                    let after = self.ctx.flow_stats.get(i).map_or(0, |s| s.delivered_bytes);
                    if after <= before {
                        violations.push(conv(
                            Some(h.id),
                            format!(
                                "flow {} on host {}: live QP made no byte progress \
                                 across the settle window ({after} B delivered)",
                                f.id.0, h.id.0
                            ),
                        ));
                    }
                }
            }
        }

        // 6. Route consistency with the (healed) topology.
        let down: Vec<bool> = self.faults.links.iter().map(|l| !l.up).collect();
        let fresh = compute_routes_masked(self.nodes.len(), &self.edges, &down, &self.dests);
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Switch(s) = node {
                if s.routes != fresh[i] {
                    violations.push(conv(
                        Some(s.id),
                        format!(
                            "switch {i}: routes differ from a fresh computation \
                             over the current topology (stale failover state)"
                        ),
                    ));
                }
            }
        }

        self.ctx.metrics.inc(self.ctx.metrics.h.convergence_checks);
        self.ctx.metrics.add(
            self.ctx.metrics.h.convergence_violations,
            violations.len() as u64,
        );
        self.ctx.audit.record_all(&violations);
        if self.ctx.audit.violations().len() != self.dumped_violations {
            self.flight_dump_new_violations();
        }
        violations
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.ctx.queue.events_executed()
    }

    /// High-water mark of pending events, tracked under
    /// `--features profile` (0 otherwise).
    pub fn peak_pending_events(&self) -> usize {
        self.ctx.queue.peak_pending()
    }

    /// Enables the per-node flight recorder with `capacity` events per
    /// node (on by default when the `sanitize` feature is compiled in).
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        self.ctx.flight.enable(capacity);
    }

    /// Flight-recorder dumps taken so far (violations and QP teardowns).
    pub fn flight_dumps(&self) -> &[FlightDump] {
        self.ctx.flight.dumps()
    }

    /// Cold name-based counter lookup (0 for unknown names). The hot path
    /// never uses this — it updates through `ctx.metrics.h` handles.
    pub fn metric(&self, name: &str) -> u64 {
        // Post-run accessor, never inside the dispatch loop (the call
        // graph proves it cold, so no suppression is needed).
        self.ctx.metrics.registry.counter_value(name).unwrap_or(0)
    }

    /// Builds the machine-readable run report: every registered counter,
    /// gauge and histogram, per-flow stats, fault/audit tallies, and (with
    /// `--features profile`) the event-loop profile. Deterministic for a
    /// deterministic run — same topology, workload and seed ⇒ identical
    /// JSON (the profile section is host-clock data and is only present
    /// when that feature is compiled in).
    pub fn telemetry_report(&self) -> Json {
        let now = self.ctx.queue.now();
        let reg = &self.ctx.metrics.registry;

        let mut counters = Json::obj(vec![]);
        for (name, value) in reg.counters() {
            counters.push(name, Json::UInt(value));
        }
        let mut gauges = Json::obj(vec![]);
        for (name, value) in reg.gauges() {
            gauges.push(name, Json::UInt(value));
        }
        let mut histograms = Json::obj(vec![]);
        for (name, hist) in reg.histograms() {
            let buckets = Json::Arr(
                hist.nonzero_buckets()
                    .map(|(floor, count)| {
                        Json::obj(vec![
                            ("count", Json::UInt(count)),
                            ("ge", Json::UInt(floor)),
                        ])
                    })
                    .collect(),
            );
            histograms.push(
                name,
                Json::obj(vec![
                    ("buckets", buckets),
                    ("count", Json::UInt(hist.count())),
                    ("max", Json::UInt(hist.max())),
                    ("mean", Json::Float(hist.mean())),
                    ("min", Json::UInt(hist.min())),
                    ("p50", Json::UInt(hist.percentile(50.0))),
                    ("p50_mid", Json::Float(hist.percentile_midpoint(50.0))),
                    ("p99", Json::UInt(hist.percentile(99.0))),
                    ("p99_mid", Json::Float(hist.percentile_midpoint(99.0))),
                ]),
            );
        }

        let secs = now.as_secs_f64();
        let flows = Json::Arr(
            self.flow_order
                .iter()
                .map(|&id| {
                    let st = &self.ctx.flow_stats[id.0 as usize];
                    let goodput = if secs > 0.0 {
                        st.delivered_bytes as f64 * 8.0 / secs / 1e9
                    } else {
                        0.0
                    };
                    Json::obj(vec![
                        ("aborted", Json::Bool(st.aborted)),
                        ("cnps_sent", Json::UInt(st.cnps_sent)),
                        ("completions", Json::UInt(st.completions.len() as u64)),
                        ("delivered_bytes", Json::UInt(st.delivered_bytes)),
                        ("goodput_gbps", Json::Float(goodput)),
                        ("id", Json::UInt(id.0)),
                        ("nacks_sent", Json::UInt(st.nacks_sent)),
                        ("retx_pkts", Json::UInt(st.retx_pkts)),
                        ("sent_pkts", Json::UInt(st.sent_pkts)),
                        ("timeouts", Json::UInt(st.timeouts)),
                    ])
                })
                .collect(),
        );

        let audit = Json::obj(vec![
            ("fault_drops", Json::UInt(self.ctx.audit.fault_drops())),
            (
                "flight_dumps",
                Json::UInt(self.ctx.flight.dumps().len() as u64),
            ),
            ("violations", Json::UInt(self.ctx.audit.total_violations())),
        ]);
        let fs = self.faults.stats;
        let faults = Json::obj(vec![
            ("crc_drops", Json::UInt(fs.crc_drops)),
            ("link_drops", Json::UInt(fs.link_drops)),
            ("reroutes", Json::UInt(fs.reroutes)),
            ("storm_pauses", Json::UInt(fs.storm_pauses)),
            ("transitions", Json::UInt(fs.transitions)),
        ]);

        let mut report = Json::obj(vec![
            ("audit", audit),
            ("counters", counters),
            ("events_executed", Json::UInt(self.events_executed())),
            ("faults", faults),
            ("flows", flows),
            ("gauges", gauges),
            ("histograms", histograms),
            ("sim_time_us", Json::Float(now.as_micros_f64())),
            ("timelines", self.timelines.summary_json()),
        ]);
        if let Some(profile) = self.profiler.report(self.ctx.queue.peak_pending()) {
            report.push("profile", profile);
        }
        report
    }

    /// Builds the run's dashboard: one chart per sampled track family
    /// (queue depth, CC rate, goodput, counter rates), span attribution
    /// when span tracing is enabled, and a counter-totals table. A pure
    /// function of the run state, so the rendered file is byte-identical
    /// across machines and `REPRO_THREADS` settings (the CI
    /// `dash-determinism` job pins this).
    pub fn dashboard(&self, title: &str) -> Dashboard {
        let now = self.now();
        let mut d = Dashboard::new(title);
        d.fact("sim time", &format!("{:.1} \u{b5}s", now.as_micros_f64()));
        d.fact("events", &self.events_executed().to_string());
        d.fact("flows", &self.flow_order.len().to_string());

        // Queue depth in KB. Plotted at the per-bucket max: the peaks
        // are what PFC/ECN thresholds react to (Fig. 13-class plots).
        let qseries: Vec<Series> = self
            .sampler
            .queues
            .iter()
            .map(|&(node, port, track)| Series {
                label: format!("sw{}:p{}", node.0, port.0),
                points: self
                    .timelines
                    .get(track)
                    .buckets()
                    .map(|b| (b.last.as_micros_f64(), b.max / 1000.0))
                    .collect(),
            })
            .collect();
        if !qseries.is_empty() {
            d.chart("queue depth", "KB", qseries);
        }

        // Instantaneous CC rates (Fig. 7/10/13-class rate traces).
        let rseries: Vec<Series> = self
            .sampler
            .rates
            .iter()
            .map(|tap| Series {
                label: format!("flow {}", tap.flow.0),
                points: self
                    .timelines
                    .get(tap.track)
                    .buckets()
                    .map(|b| (b.last.as_micros_f64(), b.mean()))
                    .collect(),
            })
            .collect();
        if !rseries.is_empty() {
            d.chart("CC rate", "Gbps", rseries);
        }

        // Goodput derived from delivered bytes; cap the panel at 8 flows
        // (deterministically the lowest ids) to keep the file readable.
        let mut gseries = Vec::new();
        let mut sampled_flows = 0usize;
        for (i, slot) in self.sampler.bytes.iter().enumerate() {
            let Some(track) = slot else { continue };
            let tl = self.timelines.get(*track);
            if tl.count() < 2 {
                continue;
            }
            sampled_flows += 1;
            if gseries.len() >= 8 {
                continue;
            }
            let rates = tl.series().to_rate_gbps();
            gseries.push(Series {
                label: format!("flow {i}"),
                points: rates
                    .times
                    .iter()
                    .zip(&rates.values)
                    .map(|(t, v)| (t.as_micros_f64(), *v))
                    .collect(),
            });
        }
        if !gseries.is_empty() {
            let title = if sampled_flows > 8 {
                format!("goodput (first 8 of {sampled_flows} flows)")
            } else {
                "goodput".to_string()
            };
            d.chart(&title, "Gbps", gseries);
        }

        // Control-plane rates: sampled counter deltas per interval.
        let cseries: Vec<Series> = self
            .sampler
            .counters
            .iter()
            .map(|tap| Series {
                label: self
                    .timelines
                    .name(tap.track)
                    .trim_start_matches("rate/")
                    .to_string(),
                points: self
                    .timelines
                    .get(tap.track)
                    .buckets()
                    .map(|b| (b.last.as_micros_f64(), b.sum))
                    .collect(),
            })
            .collect();
        if !cseries.is_empty() {
            d.chart("control frames / interval", "count", cseries);
        }

        // Span attribution: where each flow's time went (first 8 flows
        // with any attributed time).
        if self.ctx.spans.is_enabled() {
            let categories: Vec<String> = crate::telemetry::spans::SpanState::ALL
                .iter()
                .map(|s| s.name().to_string())
                .collect();
            let mut rows = Vec::new();
            for &id in &self.flow_order {
                if rows.len() >= 8 {
                    break;
                }
                if let Some(parts) = self.ctx.spans.breakdown(id, now) {
                    let vals: Vec<f64> = parts.iter().map(|p| p.as_secs_f64() * 1e6).collect();
                    if vals.iter().sum::<f64>() > 0.0 {
                        rows.push((format!("flow {}", id.0), vals));
                    }
                }
            }
            if !rows.is_empty() {
                d.stacked("span attribution (\u{b5}s per state)", categories, rows);
            }
        }

        // End-of-run counter totals (nonzero only, registration order).
        let totals: Vec<(String, String)> = self
            .ctx
            .metrics
            .registry
            .counters()
            .filter(|&(_, v)| v > 0)
            .map(|(name, v)| (name.to_string(), v.to_string()))
            .collect();
        if !totals.is_empty() {
            d.table("counters", totals);
        }
        d
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Deliver { node, port, pkt } => {
                let Network {
                    nodes, ctx, faults, ..
                } = self;
                // Reclaim the pooled slot first: dropped-by-fault packets
                // must recycle too, or the slab would leak per drop.
                let pkt = ctx.pool.take(pkt);
                // One dead branch when no faults are injected: with the
                // engine inactive this path is byte-identical to a
                // fault-free build.
                if faults.active {
                    let att = match &nodes[node.0] {
                        Node::Switch(s) => s.ports[port.0].attach,
                        Node::Host(h) => h.port.attach,
                    };
                    if let Some(att) = att {
                        let fate = faults.wire_fate(att.link);
                        if fate != WireFate::Deliver {
                            ctx.audit
                                .on_fault_drop(node, pkt.priority as usize, ctx.queue.now());
                            ctx.metrics.inc(ctx.metrics.h.fault_drops);
                            ctx.record_trace(TraceEvent {
                                at: ctx.queue.now(),
                                node,
                                flow: pkt.flow,
                                kind: TraceKind::FaultDropped,
                                detail: (fate == WireFate::CrcDrop) as u64,
                            });
                            return;
                        }
                    }
                }
                match &mut nodes[node.0] {
                    Node::Switch(s) => s.receive(ctx, port, pkt),
                    Node::Host(h) => h.receive(ctx, pkt),
                }
            }
            Event::TxDone { node, port } => {
                let Network { nodes, ctx, .. } = self;
                match &mut nodes[node.0] {
                    Node::Switch(s) => s.tx_done(ctx, port),
                    Node::Host(h) => h.tx_done(ctx),
                }
            }
            Event::Timer { node, kind } => {
                let Network { nodes, ctx, .. } = self;
                match &mut nodes[node.0] {
                    Node::Host(h) => h.timer(ctx, kind),
                    Node::Switch(_) => unreachable!("switches have no timers"),
                }
            }
            Event::Sample => {
                self.take_sample();
                if let Some(interval) = self.sample_interval {
                    let at = self.ctx.queue.now() + interval;
                    self.ctx.queue.schedule(at, Event::Sample);
                }
            }
            Event::Hook { id } => {
                if let Some(mut hook) = self.hooks[id].take() {
                    hook(self);
                }
            }
            Event::Fault { action } => self.apply_fault(action),
            Event::Watchdog {
                node,
                port,
                class,
                restore,
            } => {
                let Network { nodes, ctx, .. } = self;
                match &mut nodes[node.0] {
                    Node::Switch(s) => s.watchdog(ctx, port, class, restore),
                    // Hosts have no watchdog; a stray event is a no-op.
                    Node::Host(_) => {}
                }
            }
        }
    }

    /// One periodic sampler tick. Every watched quantity was bound to
    /// its track at `enable_sampling`/`add_flow` time, so this is pure
    /// index arithmetic plus integer adds — no lookups, no allocation
    /// (beyond a track's one-time, budget-capped bucket growth).
    fn take_sample(&mut self) {
        let now = self.ctx.queue.now();
        let Network {
            nodes,
            ctx,
            timelines,
            sampler,
            ..
        } = self;
        for k in 0..sampler.queues.len() {
            let (node, port, track) = sampler.queues[k];
            let depth = match &nodes[node.0] {
                Node::Switch(s) => s.ports[port.0].total_queued_bytes(),
                Node::Host(h) => h.port.total_queued_bytes(),
            };
            timelines.record(track, now, depth);
        }
        // `bytes` is indexed by flow id, ascending — same deterministic
        // order the sorted `flow_order` walk used to give.
        for i in 0..sampler.bytes.len() {
            if let Some(track) = sampler.bytes[i] {
                let bytes = ctx.flow_stats.get(i).map_or(0, |s| s.delivered_bytes);
                timelines.record(track, now, bytes);
            }
        }
        for k in 0..sampler.rates.len() {
            let tap = sampler.rates[k];
            let rate = match &nodes[tap.host.0] {
                Node::Host(h) => h.flows[tap.slot].current_rate().as_gbps_f64(),
                Node::Switch(_) => 0.0,
            };
            timelines.record_f64(tap.track, now, rate);
        }
        for k in 0..sampler.counters.len() {
            let tap = &mut sampler.counters[k];
            let value = ctx.metrics.registry.counter_get(tap.id);
            timelines.record(tap.track, now, value - tap.prev);
            tap.prev = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::NoCc;
    use crate::packet::DATA_PRIORITY;

    fn tiny() -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(1);
        let sw = b.switch(crate::switch::SwitchConfig::paper_default());
        let h1 = b.host(crate::host::HostConfig::default());
        let h2 = b.host(crate::host::HostConfig::default());
        b.connect(h1, sw, Bandwidth::gbps(40), Duration::from_micros(1));
        b.connect(h2, sw, Bandwidth::gbps(40), Duration::from_micros(1));
        (b.build(), h1, h2)
    }

    #[test]
    fn builder_assigns_ports_in_link_order() {
        let (net, h1, _) = tiny();
        let sw = net.switch(NodeId(0));
        assert_eq!(sw.ports.len(), 2);
        assert_eq!(sw.ports[0].attach.unwrap().peer, h1);
        let host = net.host(h1);
        assert_eq!(host.port.attach.unwrap().peer, NodeId(0));
        assert_eq!(host.line_rate(), Bandwidth::gbps(40));
    }

    #[test]
    fn flow_ids_are_sequential_and_locatable() {
        let (mut net, h1, h2) = tiny();
        let f0 = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        let f1 = net.add_flow(h2, h1, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        assert_eq!(
            (f0, f1),
            (crate::packet::FlowId(0), crate::packet::FlowId(1))
        );
        assert_eq!(net.flow_rate(f0), Bandwidth::gbps(40));
        assert_eq!(net.flow_stats(f1).sent_pkts, 0);
    }

    #[test]
    fn run_until_respects_the_horizon() {
        let (mut net, h1, h2) = tiny();
        let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        net.send_message(f, u64::MAX, Time::ZERO);
        net.run_until(Time::from_micros(100));
        assert!(net.now() <= Time::from_micros(100));
        let sent_100us = net.flow_stats(f).sent_pkts;
        net.run_until(Time::from_micros(200));
        assert!(net.flow_stats(f).sent_pkts > sent_100us, "resumable");
    }

    /// Regression: `run_until` used to leave `now()` at the last popped
    /// event, so an idle window (or the gap after the final event) was
    /// invisible to spans and telemetry, and repeated calls compounded
    /// the shortfall.
    #[test]
    fn run_until_advances_the_clock_to_the_horizon() {
        let (mut net, h1, h2) = tiny();
        let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        // A short message drains long before 1 ms.
        net.send_message(f, 3000, Time::ZERO);
        net.run_until(Time::from_millis(1));
        assert_eq!(net.now(), Time::from_millis(1));
        // A completely idle window must still advance the clock.
        net.run_until(Time::from_millis(2));
        assert_eq!(net.now(), Time::from_millis(2));
        // And events scheduled after idle windows still run in order.
        net.send_message(f, 3000, net.now());
        net.run_until(Time::from_millis(3));
        assert_eq!(net.now(), Time::from_millis(3));
        assert_eq!(net.flow_stats(f).completions.len(), 2);
    }

    #[test]
    #[should_panic(expected = "is a switch")]
    fn host_accessor_rejects_switches() {
        let (net, _, _) = tiny();
        let _ = net.host(NodeId(0));
    }

    #[test]
    #[should_panic(expected = "is a host")]
    fn switch_accessor_rejects_hosts() {
        let (net, h1, _) = tiny();
        let _ = net.switch(h1);
    }

    #[test]
    #[should_panic(expected = "hosts have one NIC")]
    fn hosts_cannot_be_multihomed() {
        let mut b = NetworkBuilder::new(1);
        let sw = b.switch(crate::switch::SwitchConfig::paper_default());
        let h = b.host(crate::host::HostConfig::default());
        b.connect(h, sw, Bandwidth::gbps(40), Duration::from_micros(1));
        b.connect(h, sw, Bandwidth::gbps(40), Duration::from_micros(1));
        let _ = b.build();
    }

    #[test]
    fn send_message_clamps_past_times_to_now() {
        let (mut net, h1, h2) = tiny();
        let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        net.send_message(f, 1000, Time::ZERO);
        net.run_until(Time::from_millis(1));
        // Scheduling "in the past" now must not panic.
        net.send_message(f, 1000, Time::ZERO);
        net.run_until(Time::from_millis(2));
        assert_eq!(net.flow_stats(f).completions.len(), 2);
    }
}
