//! Pooled storage for in-flight packets.
//!
//! A packet spends its wire time inside a [`Event::Deliver`] entry in the
//! event queue. Storing the `Packet` inline there made every event-queue
//! slot packet-sized and forced a move of ~64 bytes per hop; storing a
//! `Box<Packet>` would cost an alloc/free pair per packet per hop. The
//! pool splits the difference: packets park in a slab indexed by a 4-byte
//! [`PacketRef`], slots are recycled through a free list, and steady-state
//! simulation performs **zero** packet allocations — the slab grows to the
//! in-flight high-water mark and stays there.
//!
//! [`Event::Deliver`]: crate::event::Event::Deliver

use crate::packet::Packet;

/// Handle to a packet parked in a [`PacketPool`].
///
/// Holding a `PacketRef` is a claim of ownership: exactly one `take` must
/// follow each `insert`. The event dispatcher upholds this by reclaiming
/// the slot when the `Deliver` event fires (or when a fault drops it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef(u32);

/// Free-list slab of in-flight packets. See the module docs.
#[derive(Default)]
pub struct PacketPool {
    slots: Vec<Packet>,
    free: Vec<u32>,
    #[cfg(feature = "profile")]
    peak_live: usize,
}

impl PacketPool {
    /// Creates an empty pool.
    pub fn new() -> PacketPool {
        PacketPool::default()
    }

    /// Parks `pkt` in the pool, returning its handle.
    pub fn insert(&mut self, pkt: Packet) -> PacketRef {
        let r = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = pkt;
                PacketRef(i)
            }
            None => {
                // > 4 billion concurrently-live packets cannot happen on
                // any simulable topology; the debug assert documents the
                // limit without a release-mode branch.
                debug_assert!(
                    self.slots.len() < u32::MAX as usize,
                    "pool exceeds u32 slots"
                );
                let i = self.slots.len() as u32;
                self.slots.push(pkt);
                PacketRef(i)
            }
        };
        #[cfg(feature = "profile")]
        {
            self.peak_live = self.peak_live.max(self.live());
        }
        r
    }

    /// Takes the packet back out, recycling its slot.
    pub fn take(&mut self, r: PacketRef) -> Packet {
        debug_assert!(
            !self.free.contains(&r.0),
            "double take of packet slot {}",
            r.0
        );
        let pkt = self.slots[r.0 as usize];
        self.free.push(r.0);
        pkt
    }

    /// Read-only view of a parked packet.
    pub fn get(&self, r: PacketRef) -> &Packet {
        &self.slots[r.0 as usize]
    }

    /// Number of packets currently parked.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (the in-flight high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// High-water mark of simultaneously parked packets, tracked under
    /// `--features profile` (0 otherwise).
    pub fn peak_live(&self) -> usize {
        #[cfg(feature = "profile")]
        {
            self.peak_live
        }
        #[cfg(not(feature = "profile"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NodeId;
    use crate::packet::{FlowId, Packet, PacketKind};

    fn pkt(psn: u64) -> Packet {
        Packet::data(NodeId(0), NodeId(1), FlowId(0), 3, psn, 1000)
    }

    fn psn_of(p: &Packet) -> u64 {
        match p.kind {
            PacketKind::Data { psn, .. } => psn,
            _ => unreachable!(),
        }
    }

    #[test]
    fn insert_take_roundtrips() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        let b = pool.insert(pkt(2));
        assert_eq!(pool.live(), 2);
        assert_eq!(psn_of(pool.get(a)), 1);
        assert_eq!(psn_of(&pool.take(a)), 1);
        assert_eq!(psn_of(&pool.take(b)), 2);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn slots_are_recycled_not_grown() {
        let mut pool = PacketPool::new();
        for round in 0..100u64 {
            let r = pool.insert(pkt(round));
            assert_eq!(psn_of(&pool.take(r)), round);
        }
        // One packet in flight at a time: the slab never grew past 1 slot.
        assert_eq!(pool.capacity(), 1);
    }
}
