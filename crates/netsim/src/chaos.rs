//! Chaos campaign cases: randomized fault scenarios with automatic
//! convergence auditing and case shrinking.
//!
//! A [`ChaosCase`] is a fully self-describing scenario — topology pick,
//! workload, congestion-control scheme name, fault schedule, and the
//! convergence-audit parameters — expressed entirely in integers (µs,
//! ppm, bytes) so a case round-trips exactly through the deterministic
//! JSON emitter. Cases are generated from a campaign seed on dedicated
//! [`SplitMix64`] streams, so case `i` of seed `s` is the same scenario
//! forever, regardless of how many cases run or in what order.
//!
//! The executor ([`run_case`]) builds the topology, installs the faults,
//! runs past the last fault plus a settling window, and asks
//! [`Network::check_convergence`] whether the fabric healed. A failing
//! case can be [shrunk](shrink_case) to a minimal reproduction and
//! written to a replayable `CHAOS_REPRO_<seed>.json` file.
//!
//! The congestion-control factory is a parameter: this crate knows the
//! case *vocabulary*; the experiments crate maps scheme names to
//! configured CC instances.

use crate::cc::CongestionControl;
use crate::event::{LinkId, NodeId, PortId};
use crate::faults::{FaultConfig, FaultPlan};
use crate::host::HostConfig;
use crate::network::Network;
use crate::packet::DATA_PRIORITY;
use crate::rng::{mix64, SplitMix64};
use crate::switch::{PfcWatchdogConfig, SwitchConfig};
use crate::telemetry::Json;
use crate::topology::{self, LinkParams};
use crate::units::{Bandwidth, Duration, Time};

/// Stream constants: each concern draws from its own generator so adding
/// a draw to one stream never perturbs another.
const STREAM_TOPO: u64 = 0x0010_7001;
const STREAM_WORKLOAD: u64 = 0x0030_8102;
const STREAM_FAULTS: u64 = 0x00FA_1703;

/// Which topology a case runs on. Small enough to enumerate; the shape
/// (host/switch/link counts) is derivable without building the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoPick {
    /// `hosts` hosts around one switch.
    Star {
        /// Number of hosts.
        hosts: u32,
    },
    /// The paper's 3-tier Clos testbed (4 ToRs, 4 leaves, 2 spines).
    Clos {
        /// Hosts under each ToR.
        hosts_per_tor: u32,
    },
    /// The two-switch multi-bottleneck parking lot.
    ParkingLot,
}

/// Node/link counts of a topology, without building it.
///
/// All three builders create every switch before any host, so host `i`
/// is `NodeId(switches + i)`; links are created in a fixed documented
/// order per builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoShape {
    /// Number of hosts (indices `0..hosts` map to node ids
    /// `switches..switches+hosts`).
    pub hosts: usize,
    /// Number of switches (node ids `0..switches`).
    pub switches: usize,
    /// Number of links.
    pub links: usize,
}

impl TopoPick {
    /// The shape this pick builds.
    pub fn shape(self) -> TopoShape {
        match self {
            TopoPick::Star { hosts } => TopoShape {
                hosts: hosts as usize,
                switches: 1,
                links: hosts as usize,
            },
            TopoPick::Clos { hosts_per_tor } => TopoShape {
                hosts: 4 * hosts_per_tor as usize,
                switches: 10,
                // 8 ToR↔leaf + 8 leaf↔spine + one access link per host.
                links: 16 + 4 * hosts_per_tor as usize,
            },
            TopoPick::ParkingLot => TopoShape {
                hosts: 5,
                switches: 2,
                links: 6,
            },
        }
    }

    /// Builds the picked topology. Hosts are returned flattened in
    /// creation order, matching [`TopoShape`] index arithmetic.
    pub fn build(
        self,
        host_cfg: HostConfig,
        switch_cfg: SwitchConfig,
        seed: u64,
    ) -> (Network, Vec<NodeId>) {
        let link = LinkParams::default();
        match self {
            TopoPick::Star { hosts } => {
                let star = topology::star(hosts as usize, link, host_cfg, switch_cfg, seed);
                (star.net, star.hosts)
            }
            TopoPick::Clos { hosts_per_tor } => {
                let t = topology::clos_testbed(
                    hosts_per_tor as usize,
                    link,
                    host_cfg,
                    switch_cfg,
                    seed,
                );
                let hosts = t.hosts.into_iter().flatten().collect();
                (t.net, hosts)
            }
            TopoPick::ParkingLot => {
                let p = topology::parking_lot(link, host_cfg, switch_cfg, seed);
                (p.net, vec![p.h1, p.h2, p.h3, p.r1, p.r2])
            }
        }
    }

    fn label(self) -> &'static str {
        match self {
            TopoPick::Star { .. } => "star",
            TopoPick::Clos { .. } => "clos",
            TopoPick::ParkingLot => "parking_lot",
        }
    }
}

/// Congestion-control scheme name, as pure data. The experiments crate
/// maps these to configured host/switch/CC parameter sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants are scheme names
pub enum CcName {
    None,
    Dcqcn,
    Dctcp,
    Timely,
}

impl CcName {
    /// Stable lowercase label (used in JSON and summaries).
    pub fn label(self) -> &'static str {
        match self {
            CcName::None => "none",
            CcName::Dcqcn => "dcqcn",
            CcName::Dctcp => "dctcp",
            CcName::Timely => "timely",
        }
    }

    /// Parses a [`label`](CcName::label) back.
    pub fn from_label(s: &str) -> Option<CcName> {
        match s {
            "none" => Some(CcName::None),
            "dcqcn" => Some(CcName::Dcqcn),
            "dctcp" => Some(CcName::Dctcp),
            "timely" => Some(CcName::Timely),
            _ => None,
        }
    }
}

/// One flow of a case's workload. `src`/`dst` are host *indices* into
/// the topology's flattened host list, not node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosFlow {
    /// Source host index.
    pub src: u32,
    /// Destination host index (≠ `src`).
    pub dst: u32,
    /// Message size in bytes (`u64::MAX` = greedy, never-ending).
    pub bytes: u64,
    /// Message arrival time, µs.
    pub start_us: u64,
}

/// One high-level fault of a case.
///
/// Specs are *groups*, not raw [`FaultPlan`] events: a flap is one spec
/// regardless of its repeat count, and a bit-error spec carries its own
/// heal time. Shrinking removes whole specs, so every shrunk schedule
/// still passes [`FaultPlan::validate`] by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Flap `link` `times` times: down at `at_us + k·period_us`, up
    /// `down_us` later.
    Flap {
        /// Link index.
        link: u32,
        /// First down time, µs.
        at_us: u64,
        /// Outage length per flap, µs (must be < `period_us`).
        down_us: u64,
        /// Number of down/up cycles.
        times: u32,
        /// Cycle period, µs.
        period_us: u64,
    },
    /// Corrupt frames on `link` with probability `prob_ppm`·10⁻⁶ from
    /// `from_us` until healed at `until_us`.
    BitError {
        /// Link index.
        link: u32,
        /// Degradation start, µs.
        from_us: u64,
        /// Heal time, µs.
        until_us: u64,
        /// Per-frame corruption probability, parts per million.
        prob_ppm: u32,
    },
    /// Host `host` emits a continuous PFC PAUSE storm on `class` from
    /// `from_us` until `until_us`, one frame every `refresh_us`.
    Storm {
        /// Host index.
        host: u32,
        /// PFC priority class.
        class: u8,
        /// Storm start, µs.
        from_us: u64,
        /// Storm end, µs.
        until_us: u64,
        /// PAUSE refresh interval, µs.
        refresh_us: u64,
    },
    /// Wedge the PFC watchdog on `switch`'s port `port`, class `class`:
    /// tripped forever, no restore. **Test-only** — emulates a recovery
    /// bug; the generator never emits it, but replay files may carry it.
    Wedge {
        /// Switch node id (switches are `0..shape.switches`).
        switch: u32,
        /// Port index on that switch.
        port: u32,
        /// PFC priority class.
        class: u8,
        /// Wedge time, µs.
        at_us: u64,
    },
}

/// A complete, self-describing chaos scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosCase {
    /// Simulation seed (drives ECMP hashing, fault RNG, etc.).
    pub seed: u64,
    /// Topology pick.
    pub topo: TopoPick,
    /// Congestion-control scheme.
    pub cc: CcName,
    /// Workload.
    pub flows: Vec<ChaosFlow>,
    /// Fault schedule.
    pub faults: Vec<FaultSpec>,
    /// Nominal run length, µs (the run extends past this if a fault
    /// clears later).
    pub duration_us: u64,
    /// Settling window after the last fault clears, µs. Must exceed the
    /// watchdog recovery plus the worst-case RTO backoff gap, or healthy
    /// recoveries are flagged.
    pub settle_us: u64,
    /// Queued-bytes threshold for the drain check.
    pub queue_threshold: u64,
}

impl ChaosCase {
    /// Expands the fault specs into a concrete [`FaultPlan`].
    pub fn plan(&self) -> FaultPlan {
        let shape = self.topo.shape();
        let mut plan = FaultPlan::new();
        for &spec in &self.faults {
            match spec {
                FaultSpec::Flap {
                    link,
                    at_us,
                    down_us,
                    times,
                    period_us,
                } => {
                    plan = plan.link_flap(
                        LinkId(link as usize),
                        Time::from_micros(at_us),
                        Duration::from_micros(down_us),
                        Duration::from_micros(period_us),
                        times,
                    );
                }
                FaultSpec::BitError {
                    link,
                    from_us,
                    until_us,
                    prob_ppm,
                } => {
                    let l = LinkId(link as usize);
                    plan = plan
                        .bit_error(Time::from_micros(from_us), l, prob_ppm as f64 / 1e6)
                        .bit_error(Time::from_micros(until_us), l, 0.0);
                }
                FaultSpec::Storm {
                    host,
                    class,
                    from_us,
                    until_us,
                    refresh_us,
                } => {
                    plan = plan.pause_storm(
                        NodeId(shape.switches + host as usize),
                        class,
                        Time::from_micros(from_us),
                        Time::from_micros(until_us),
                        Duration::from_micros(refresh_us),
                    );
                }
                FaultSpec::Wedge {
                    switch,
                    port,
                    class,
                    at_us,
                } => {
                    plan = plan.wedge_watchdog(
                        Time::from_micros(at_us),
                        NodeId(switch as usize),
                        PortId(port as usize),
                        class,
                    );
                }
            }
        }
        plan
    }

    /// One-line deterministic description for campaign summaries.
    pub fn describe(&self) -> String {
        format!(
            "seed={:#018x} topo={} cc={} flows={} faults={}",
            self.seed,
            self.topo.label(),
            self.cc.label(),
            self.flows.len(),
            self.faults.len()
        )
    }

    /// Serializes the case to the deterministic JSON document written to
    /// `CHAOS_REPRO_<seed>.json` files.
    pub fn to_json(&self) -> Json {
        let topo = match self.topo {
            TopoPick::Star { hosts } => Json::obj(vec![
                ("hosts", Json::UInt(hosts as u64)),
                ("kind", Json::str("star")),
            ]),
            TopoPick::Clos { hosts_per_tor } => Json::obj(vec![
                ("hosts_per_tor", Json::UInt(hosts_per_tor as u64)),
                ("kind", Json::str("clos")),
            ]),
            TopoPick::ParkingLot => Json::obj(vec![("kind", Json::str("parking_lot"))]),
        };
        let flows = self
            .flows
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("bytes", Json::UInt(f.bytes)),
                    ("dst", Json::UInt(f.dst as u64)),
                    ("src", Json::UInt(f.src as u64)),
                    ("start_us", Json::UInt(f.start_us)),
                ])
            })
            .collect();
        let faults = self
            .faults
            .iter()
            .map(|&s| match s {
                FaultSpec::Flap {
                    link,
                    at_us,
                    down_us,
                    times,
                    period_us,
                } => Json::obj(vec![
                    ("at_us", Json::UInt(at_us)),
                    ("down_us", Json::UInt(down_us)),
                    ("kind", Json::str("flap")),
                    ("link", Json::UInt(link as u64)),
                    ("period_us", Json::UInt(period_us)),
                    ("times", Json::UInt(times as u64)),
                ]),
                FaultSpec::BitError {
                    link,
                    from_us,
                    until_us,
                    prob_ppm,
                } => Json::obj(vec![
                    ("from_us", Json::UInt(from_us)),
                    ("kind", Json::str("bit_error")),
                    ("link", Json::UInt(link as u64)),
                    ("prob_ppm", Json::UInt(prob_ppm as u64)),
                    ("until_us", Json::UInt(until_us)),
                ]),
                FaultSpec::Storm {
                    host,
                    class,
                    from_us,
                    until_us,
                    refresh_us,
                } => Json::obj(vec![
                    ("class", Json::UInt(class as u64)),
                    ("from_us", Json::UInt(from_us)),
                    ("host", Json::UInt(host as u64)),
                    ("kind", Json::str("storm")),
                    ("refresh_us", Json::UInt(refresh_us)),
                    ("until_us", Json::UInt(until_us)),
                ]),
                FaultSpec::Wedge {
                    switch,
                    port,
                    class,
                    at_us,
                } => Json::obj(vec![
                    ("at_us", Json::UInt(at_us)),
                    ("class", Json::UInt(class as u64)),
                    ("kind", Json::str("wedge")),
                    ("port", Json::UInt(port as u64)),
                    ("switch", Json::UInt(switch as u64)),
                ]),
            })
            .collect();
        Json::obj(vec![
            ("cc", Json::str(self.cc.label())),
            ("duration_us", Json::UInt(self.duration_us)),
            ("faults", Json::Arr(faults)),
            ("flows", Json::Arr(flows)),
            ("queue_threshold", Json::UInt(self.queue_threshold)),
            ("seed", Json::UInt(self.seed)),
            ("settle_us", Json::UInt(self.settle_us)),
            ("topo", topo),
        ])
    }

    /// Deserializes a case from a [`to_json`](ChaosCase::to_json)
    /// document (e.g. a repro file).
    pub fn from_json(j: &Json) -> Result<ChaosCase, String> {
        fn u(j: &Json, key: &str) -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{key}'"))
        }
        fn kind(j: &Json) -> Result<&str, String> {
            j.get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing 'kind'".to_string())
        }
        let topo_j = j.get("topo").ok_or("missing 'topo'")?;
        let topo = match kind(topo_j)? {
            "star" => TopoPick::Star {
                hosts: u(topo_j, "hosts")? as u32,
            },
            "clos" => TopoPick::Clos {
                hosts_per_tor: u(topo_j, "hosts_per_tor")? as u32,
            },
            "parking_lot" => TopoPick::ParkingLot,
            k => return Err(format!("unknown topo kind '{k}'")),
        };
        let cc_label = j.get("cc").and_then(Json::as_str).ok_or("missing 'cc'")?;
        let cc = CcName::from_label(cc_label).ok_or_else(|| format!("unknown cc '{cc_label}'"))?;
        let flows = j
            .get("flows")
            .and_then(Json::as_arr)
            .ok_or("missing 'flows'")?
            .iter()
            .map(|f| {
                Ok(ChaosFlow {
                    src: u(f, "src")? as u32,
                    dst: u(f, "dst")? as u32,
                    bytes: u(f, "bytes")?,
                    start_us: u(f, "start_us")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let faults = j
            .get("faults")
            .and_then(Json::as_arr)
            .ok_or("missing 'faults'")?
            .iter()
            .map(|f| {
                Ok(match kind(f)? {
                    "flap" => FaultSpec::Flap {
                        link: u(f, "link")? as u32,
                        at_us: u(f, "at_us")?,
                        down_us: u(f, "down_us")?,
                        times: u(f, "times")? as u32,
                        period_us: u(f, "period_us")?,
                    },
                    "bit_error" => FaultSpec::BitError {
                        link: u(f, "link")? as u32,
                        from_us: u(f, "from_us")?,
                        until_us: u(f, "until_us")?,
                        prob_ppm: u(f, "prob_ppm")? as u32,
                    },
                    "storm" => FaultSpec::Storm {
                        host: u(f, "host")? as u32,
                        class: u(f, "class")? as u8,
                        from_us: u(f, "from_us")?,
                        until_us: u(f, "until_us")?,
                        refresh_us: u(f, "refresh_us")?,
                    },
                    "wedge" => FaultSpec::Wedge {
                        switch: u(f, "switch")? as u32,
                        port: u(f, "port")? as u32,
                        class: u(f, "class")? as u8,
                        at_us: u(f, "at_us")?,
                    },
                    k => return Err(format!("unknown fault kind '{k}'")),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ChaosCase {
            seed: u(j, "seed")?,
            topo,
            cc,
            flows,
            faults,
            duration_us: u(j, "duration_us")?,
            settle_us: u(j, "settle_us")?,
            queue_threshold: u(j, "queue_threshold")?,
        })
    }
}

/// Generates case `index` of the campaign identified by `campaign_seed`.
///
/// Each case derives a per-case seed and draws topology, workload and
/// faults from three independent streams. `quick` halves the run length
/// and fault budget (CI smoke mode).
///
/// The generator's fault vocabulary is flap + healed bit-error + bounded
/// storm: everything it schedules *clears*, so a converged end state is
/// always reachable. [`FaultSpec::Wedge`] is deliberately excluded — it
/// models a recovery bug and exists for tests and hand-written repro
/// files.
pub fn generate_case(campaign_seed: u64, index: u64, quick: bool) -> ChaosCase {
    let case_seed = mix64(campaign_seed ^ mix64(index.wrapping_add(1)));
    let mut topo_rng = SplitMix64::new(case_seed ^ STREAM_TOPO);
    let mut work_rng = SplitMix64::new(case_seed ^ STREAM_WORKLOAD);
    let mut fault_rng = SplitMix64::new(case_seed ^ STREAM_FAULTS);

    let topo = match topo_rng.below(3) {
        0 => TopoPick::Star {
            hosts: 4 + topo_rng.below(5) as u32, // 4..=8
        },
        1 => TopoPick::Clos {
            hosts_per_tor: 2 + topo_rng.below(2) as u32, // 2..=3
        },
        _ => TopoPick::ParkingLot,
    };
    let shape = topo.shape();
    let cc = *topo_rng.pick(&[CcName::Dcqcn, CcName::Dcqcn, CcName::Dctcp, CcName::Timely]);

    let duration_us: u64 = if quick { 20_000 } else { 40_000 };
    // The executor's host config uses rto = 2 ms, backoff cap 4: worst
    // retry gap 8 ms. Watchdog recovery is 4 ms. 20 ms clears both.
    let settle_us: u64 = 20_000;

    // Workload: 2..=hosts flows, distinct (src, dst) hosts, finite
    // messages so completions are reachable.
    let n_flows = 2 + work_rng.below(shape.hosts as u64 - 1) as usize;
    let mut flows = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        let src = work_rng.below(shape.hosts as u64) as u32;
        let mut dst = work_rng.below(shape.hosts as u64 - 1) as u32;
        if dst >= src {
            dst += 1;
        }
        let bytes = (64 * 1024) << work_rng.below(6); // 64 KB .. 2 MB
        let start_us = work_rng.below(duration_us / 4);
        flows.push(ChaosFlow {
            src,
            dst,
            bytes,
            start_us,
        });
    }

    // Faults: 1..=3 specs (1..=2 in quick mode). Flaps claim distinct
    // links and storms distinct (host, class) pairs so the expanded plan
    // passes FaultPlan::validate by construction; every spec clears
    // before `duration_us`.
    let n_faults = 1 + fault_rng.below(if quick { 2 } else { 3 }) as usize;
    let mut links: Vec<u64> = (0..shape.links as u64).collect();
    fault_rng.shuffle(&mut links);
    let mut storm_hosts: Vec<u64> = (0..shape.hosts as u64).collect();
    fault_rng.shuffle(&mut storm_hosts);
    let mut faults = Vec::with_capacity(n_faults);
    for _ in 0..n_faults {
        match fault_rng.below(3) {
            0 => {
                let Some(link) = links.pop() else { continue };
                let times = 1 + fault_rng.below(3) as u32; // 1..=3 flaps
                let down_us = 200 + fault_rng.below(1_800); // 0.2..2 ms
                let period_us = down_us + 500 + fault_rng.below(2_000);
                let span = period_us * (times as u64 - 1) + down_us;
                let at_us = 1_000 + fault_rng.below(duration_us / 2);
                let at_us = at_us.min(duration_us.saturating_sub(span + 1_000));
                faults.push(FaultSpec::Flap {
                    link: link as u32,
                    at_us,
                    down_us,
                    times,
                    period_us,
                });
            }
            1 => {
                let Some(link) = links.pop() else { continue };
                let from_us = 1_000 + fault_rng.below(duration_us / 2);
                let until_us = from_us + 2_000 + fault_rng.below(duration_us / 4);
                let until_us = until_us.min(duration_us - 1_000);
                faults.push(FaultSpec::BitError {
                    link: link as u32,
                    from_us,
                    until_us: until_us.max(from_us + 500),
                    prob_ppm: 1_000 + fault_rng.below(99_000) as u32, // 0.1%..10%
                });
            }
            _ => {
                let Some(host) = storm_hosts.pop() else {
                    continue;
                };
                let from_us = 1_000 + fault_rng.below(duration_us / 2);
                let until_us = from_us + 2_000 + fault_rng.below(6_000);
                let until_us = until_us.min(duration_us - 1_000);
                faults.push(FaultSpec::Storm {
                    host: host as u32,
                    class: DATA_PRIORITY,
                    from_us,
                    until_us: until_us.max(from_us + 500),
                    refresh_us: 10 + fault_rng.below(40),
                });
            }
        }
    }

    ChaosCase {
        seed: case_seed,
        topo,
        cc,
        flows,
        faults,
        duration_us,
        settle_us,
        queue_threshold: 64 * 1024,
    }
}

/// The executor's host config: short RTO (2 ms, backoff cap 4) so the
/// worst-case retry gap (8 ms) fits comfortably inside the settling
/// window, and a bounded retry count so black-holed flows tear down
/// rather than hang.
pub fn chaos_host_config() -> HostConfig {
    HostConfig {
        rto: Duration::from_millis(2),
        rto_backoff_cap: 4,
        max_retries: 7,
        ..HostConfig::default()
    }
}

/// Outcome of one executed case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Convergence violations (empty = the fabric healed).
    pub violations: Vec<crate::audit::Violation>,
    /// Completed messages.
    pub completions: u64,
    /// QPs torn down (retry exhaustion) — legitimate degradation, not a
    /// convergence failure, but worth surfacing.
    pub teardowns: u64,
    /// Watchdog trips observed.
    pub watchdog_trips: u64,
    /// Total bytes delivered across all flows.
    pub delivered_bytes: u64,
    /// Events executed (a cheap full-trajectory fingerprint: two runs of
    /// the same case must agree exactly).
    pub events: u64,
}

impl CaseReport {
    /// Did the fabric converge?
    pub fn converged(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line deterministic summary (no wall-clock content).
    pub fn describe(&self) -> String {
        format!(
            "{} violations={} completions={} teardowns={} wd_trips={} delivered={} events={}",
            if self.converged() { "PASS" } else { "FAIL" },
            self.violations.len(),
            self.completions,
            self.teardowns,
            self.watchdog_trips,
            self.delivered_bytes,
            self.events
        )
    }
}

/// Executes one case: build, load, inject, settle, audit.
///
/// `switch_cfg` should carry the scheme's ECN/PFC parameters; a PFC
/// watchdog is forced on (the convergence auditor assumes storms are
/// survivable). `make_cc` builds one CC instance per flow from the NIC
/// line rate. Returns `Err` if the expanded fault schedule fails
/// [`FaultPlan::validate`].
pub fn run_case(
    case: &ChaosCase,
    host_cfg: HostConfig,
    switch_cfg: SwitchConfig,
    make_cc: &dyn Fn(Bandwidth) -> Box<dyn CongestionControl>,
) -> Result<CaseReport, String> {
    let plan = case.plan();
    plan.validate()?;

    let mut switch_cfg = switch_cfg;
    if switch_cfg.watchdog.is_none() {
        switch_cfg = switch_cfg.with_watchdog(PfcWatchdogConfig::default());
    }
    let (mut net, hosts) = case.topo.build(host_cfg, switch_cfg, case.seed);
    net.enable_flight_recorder(64);

    let shape = case.topo.shape();
    for f in &case.flows {
        if f.src as usize >= shape.hosts || f.dst as usize >= shape.hosts {
            return Err(format!(
                "flow references host {} but topology has {}",
                f.src.max(f.dst),
                shape.hosts
            ));
        }
        let flow = net.add_flow(
            hosts[f.src as usize],
            hosts[f.dst as usize],
            DATA_PRIORITY,
            |line| make_cc(line),
        );
        net.send_message(flow, f.bytes, Time::from_micros(f.start_us));
    }

    if !plan.is_empty() {
        net.install_faults(
            &plan,
            FaultConfig {
                seed: case.seed ^ STREAM_FAULTS,
                ..FaultConfig::default()
            },
        );
    }

    // Run to the later of the nominal duration and the last fault event,
    // then sample queue depth at four checkpoints across the settling
    // window and audit convergence at its end.
    let settle_start = Time::from_micros(case.duration_us).max(plan.horizon());
    net.run_until(settle_start);
    let baseline = net.delivered_snapshot();
    let mut samples = Vec::with_capacity(4);
    for k in 1..=4u64 {
        let t = settle_start + Duration::from_micros(case.settle_us * k / 4);
        net.run_until(t);
        samples.push((net.now(), net.total_queued_bytes()));
    }
    let violations = net.check_convergence(settle_start, case.queue_threshold, &baseline, &samples);

    Ok(CaseReport {
        violations,
        completions: net.metric("completions"),
        teardowns: net.metric("qp_teardowns"),
        watchdog_trips: net.metric("watchdog_trips"),
        delivered_bytes: net.delivered_snapshot().iter().sum(),
        events: net.events_executed(),
    })
}

/// Maximum shrink rounds (each round tries every reduction once).
const MAX_SHRINK_ROUNDS: usize = 16;

/// Shrinks a failing case to a minimal reproduction.
///
/// Greedy delta-debugging to a fixpoint: drop fault specs one at a time,
/// then flows, then halve the nominal duration — keeping any reduction
/// for which `still_fails` returns true. The oracle re-runs the
/// candidate, so shrinking costs one simulation per attempted reduction.
/// Because reductions operate on whole [`FaultSpec`] groups, every
/// candidate remains a valid plan.
pub fn shrink_case(case: &ChaosCase, still_fails: &mut dyn FnMut(&ChaosCase) -> bool) -> ChaosCase {
    let mut best = case.clone();
    for _round in 0..MAX_SHRINK_ROUNDS {
        let mut changed = false;

        // Drop fault specs, one at a time, last first (later specs are
        // more likely incidental).
        let mut i = best.faults.len();
        while i > 0 {
            i -= 1;
            if best.faults.len() <= 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.faults.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                changed = true;
            }
        }

        // Drop flows, one at a time.
        let mut i = best.flows.len();
        while i > 0 {
            i -= 1;
            if best.flows.len() <= 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.flows.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                changed = true;
            }
        }

        // Halve the nominal duration (floor 5 ms; the fault horizon
        // still extends the run as needed).
        if best.duration_us > 10_000 {
            let mut candidate = best.clone();
            candidate.duration_us /= 2;
            if still_fails(&candidate) {
                best = candidate;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_expand_to_valid_plans() {
        for seed in 0..8u64 {
            for index in 0..16u64 {
                let case = generate_case(seed, index, index % 2 == 0);
                assert!(!case.flows.is_empty(), "case must have workload");
                assert!(!case.faults.is_empty(), "case must have faults");
                let plan = case.plan();
                assert!(
                    plan.validate().is_ok(),
                    "seed {seed} case {index}: {:?}",
                    plan.validate()
                );
                // Every generated fault clears within the nominal run.
                assert!(plan.horizon() <= Time::from_micros(case.duration_us));
                // Indices stay inside the topology.
                let shape = case.topo.shape();
                for f in &case.flows {
                    assert!((f.src as usize) < shape.hosts);
                    assert!((f.dst as usize) < shape.hosts);
                    assert_ne!(f.src, f.dst);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_indexed() {
        let a = generate_case(7, 3, false);
        let b = generate_case(7, 3, false);
        assert_eq!(a, b);
        assert_ne!(a, generate_case(7, 4, false));
        assert_ne!(a, generate_case(8, 3, false));
    }

    #[test]
    fn json_round_trip_is_exact() {
        for index in 0..12u64 {
            let case = generate_case(0xC0FFEE, index, false);
            let j = case.to_json();
            let back = ChaosCase::from_json(&Json::parse(&j.render()).unwrap()).unwrap();
            assert_eq!(back, case);
            // And the rendered form is a fixpoint (byte-identical files).
            assert_eq!(back.to_json().render(), j.render());
        }
    }

    #[test]
    fn from_json_rejects_malformed_cases() {
        let case = generate_case(1, 0, true);
        let good = case.to_json().render();
        let j = Json::parse(&good.replace("\"dcqcn\"", "\"warp\"")).unwrap();
        assert!(ChaosCase::from_json(&j).is_err());
        let j = Json::parse(&good.replace("\"seed\"", "\"dees\"")).unwrap();
        assert!(ChaosCase::from_json(&j).is_err());
    }

    #[test]
    fn topo_shape_matches_built_network() {
        for topo in [
            TopoPick::Star { hosts: 5 },
            TopoPick::Clos { hosts_per_tor: 2 },
            TopoPick::ParkingLot,
        ] {
            let shape = topo.shape();
            let (net, hosts) = topo.build(chaos_host_config(), SwitchConfig::paper_default(), 42);
            assert_eq!(hosts.len(), shape.hosts, "{topo:?}");
            assert_eq!(net.num_links(), shape.links, "{topo:?}");
            // Hosts follow switches in the node-id space.
            for (i, h) in hosts.iter().enumerate() {
                assert_eq!(h.0, shape.switches + i, "{topo:?}");
            }
        }
    }

    #[test]
    fn shrinker_reaches_a_minimal_failing_case() {
        let mut case = generate_case(99, 0, false);
        // Pad with extra specs; the synthetic oracle only cares that a
        // Storm spec survives.
        case.faults = vec![
            FaultSpec::Flap {
                link: 0,
                at_us: 1_000,
                down_us: 500,
                times: 2,
                period_us: 2_000,
            },
            FaultSpec::Storm {
                host: 0,
                class: DATA_PRIORITY,
                from_us: 5_000,
                until_us: 9_000,
                refresh_us: 20,
            },
            FaultSpec::BitError {
                link: 1,
                from_us: 2_000,
                until_us: 8_000,
                prob_ppm: 5_000,
            },
        ];
        let mut oracle_calls = 0usize;
        let shrunk = shrink_case(&case, &mut |c| {
            oracle_calls += 1;
            c.faults
                .iter()
                .any(|f| matches!(f, FaultSpec::Storm { .. }))
        });
        assert_eq!(shrunk.faults.len(), 1, "only the storm should survive");
        assert!(matches!(shrunk.faults[0], FaultSpec::Storm { .. }));
        assert_eq!(shrunk.flows.len(), 1, "flows halve to the floor");
        assert_eq!(shrunk.duration_us, 10_000, "duration halves to the floor");
        assert!(oracle_calls > 0 && oracle_calls < 200);
    }

    #[test]
    fn clean_case_converges_under_nocc() {
        use crate::cc::NoCc;
        let case = ChaosCase {
            seed: 5,
            topo: TopoPick::Star { hosts: 4 },
            cc: CcName::None,
            flows: vec![ChaosFlow {
                src: 0,
                dst: 1,
                bytes: 256 * 1024,
                start_us: 0,
            }],
            faults: vec![FaultSpec::Flap {
                link: 0,
                at_us: 1_000,
                down_us: 500,
                times: 1,
                period_us: 1_000,
            }],
            duration_us: 10_000,
            settle_us: 20_000,
            queue_threshold: 64 * 1024,
        };
        let report = run_case(
            &case,
            chaos_host_config(),
            SwitchConfig::paper_default(),
            &|line| Box::new(NoCc::new(line)),
        )
        .unwrap();
        assert!(
            report.converged(),
            "clean flap should converge: {:?}",
            report.violations
        );
        assert_eq!(report.completions, 1, "the message should complete");

        // Determinism: the same case replays to the same fingerprint.
        let again = run_case(
            &case,
            chaos_host_config(),
            SwitchConfig::paper_default(),
            &|line| Box::new(NoCc::new(line)),
        )
        .unwrap();
        assert_eq!(again.events, report.events);
        assert_eq!(again.describe(), report.describe());
    }

    #[test]
    fn wedged_watchdog_is_caught_as_convergence_violation() {
        use crate::audit::ViolationKind;
        use crate::cc::NoCc;
        let case = ChaosCase {
            seed: 6,
            topo: TopoPick::Star { hosts: 4 },
            cc: CcName::None,
            flows: vec![ChaosFlow {
                src: 0,
                dst: 1,
                bytes: 128 * 1024,
                start_us: 0,
            }],
            faults: vec![FaultSpec::Wedge {
                switch: 0,
                port: 1,
                class: DATA_PRIORITY,
                at_us: 2_000,
            }],
            duration_us: 10_000,
            settle_us: 20_000,
            queue_threshold: 64 * 1024,
        };
        let report = run_case(
            &case,
            chaos_host_config(),
            SwitchConfig::paper_default(),
            &|line| Box::new(NoCc::new(line)),
        )
        .unwrap();
        assert!(!report.converged(), "a wedged watchdog never heals");
        assert!(report
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::Convergence));
        assert!(report
            .violations
            .iter()
            .any(|v| v.context.contains("watchdog still tripped")));
    }
}
