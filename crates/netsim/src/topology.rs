//! Topology builders for the paper's testbeds.
//!
//! * [`star`] — N hosts on one switch (incast microbenchmarks, Figs 10–13, 19),
//! * [`clos_testbed`] — the 3-tier Clos of Figure 2 (4 ToRs, 4 leaves,
//!   2 spines, 40 Gbps everywhere),
//! * [`parking_lot`] — the two-bottleneck chain of Figure 20(a).

use crate::event::NodeId;
use crate::host::HostConfig;
use crate::network::{Network, NetworkBuilder};
use crate::switch::SwitchConfig;
use crate::units::{Bandwidth, Duration};

/// Common link parameters for a topology build.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Bandwidth of every link.
    pub bandwidth: Bandwidth,
    /// One-way propagation + pipeline delay of every link.
    pub delay: Duration,
}

impl Default for LinkParams {
    /// The paper's testbed: 40 Gbps links; ~1 µs per hop covers propagation
    /// plus switch pipeline latency.
    fn default() -> LinkParams {
        LinkParams {
            bandwidth: Bandwidth::gbps(40),
            delay: Duration::from_micros(1),
        }
    }
}

/// A star: `n` hosts on a single switch.
pub struct Star {
    /// The built network.
    pub net: Network,
    /// The switch.
    pub switch: NodeId,
    /// The hosts, in creation order.
    pub hosts: Vec<NodeId>,
}

/// Builds a star of `n` hosts around one switch.
pub fn star(
    n: usize,
    link: LinkParams,
    host_cfg: HostConfig,
    switch_cfg: SwitchConfig,
    seed: u64,
) -> Star {
    let mut b = NetworkBuilder::new(seed);
    let switch = b.switch(switch_cfg);
    let hosts: Vec<NodeId> = (0..n).map(|_| b.host(host_cfg)).collect();
    for &h in &hosts {
        b.connect(h, switch, link.bandwidth, link.delay);
    }
    Star {
        net: b.build(),
        switch,
        hosts,
    }
}

/// The paper's Figure 2 testbed.
pub struct ClosTestbed {
    /// The built network.
    pub net: Network,
    /// Top-of-rack switches T1–T4.
    pub tors: [NodeId; 4],
    /// Leaf switches L1–L4.
    pub leaves: [NodeId; 4],
    /// Spine switches S1–S2.
    pub spines: [NodeId; 2],
    /// `hosts[t]` are the hosts under ToR `t`.
    pub hosts: Vec<Vec<NodeId>>,
}

/// Builds the 3-tier Clos of Figure 2 with `hosts_per_tor` hosts under each
/// ToR.
///
/// Wiring (all 40 Gbps in the paper): T1 and T2 uplink to L1 and L2; T3 and
/// T4 uplink to L3 and L4; every leaf uplinks to both spines. Each ToR is
/// its own IP subnet; routing is shortest-path with ECMP, as BGP computes
/// on the real testbed.
pub fn clos_testbed(
    hosts_per_tor: usize,
    link: LinkParams,
    host_cfg: HostConfig,
    switch_cfg: SwitchConfig,
    seed: u64,
) -> ClosTestbed {
    let mut b = NetworkBuilder::new(seed);
    let tors = [
        b.switch(switch_cfg.clone()),
        b.switch(switch_cfg.clone()),
        b.switch(switch_cfg.clone()),
        b.switch(switch_cfg.clone()),
    ];
    let leaves = [
        b.switch(switch_cfg.clone()),
        b.switch(switch_cfg.clone()),
        b.switch(switch_cfg.clone()),
        b.switch(switch_cfg.clone()),
    ];
    let spines = [b.switch(switch_cfg.clone()), b.switch(switch_cfg)];

    // ToR ↔ leaf: pods of two ToRs × two leaves.
    for (t, ls) in [(0, [0, 1]), (1, [0, 1]), (2, [2, 3]), (3, [2, 3])] {
        for l in ls {
            b.connect(tors[t], leaves[l], link.bandwidth, link.delay);
        }
    }
    // Leaf ↔ spine: full mesh.
    for &leaf in &leaves {
        for &spine in &spines {
            b.connect(leaf, spine, link.bandwidth, link.delay);
        }
    }
    // Hosts.
    let mut hosts = Vec::with_capacity(4);
    for &t in &tors {
        let mut rack = Vec::with_capacity(hosts_per_tor);
        for _ in 0..hosts_per_tor {
            let h = b.host(host_cfg);
            b.connect(h, t, link.bandwidth, link.delay);
            rack.push(h);
        }
        hosts.push(rack);
    }

    ClosTestbed {
        net: b.build(),
        tors,
        leaves,
        spines,
        hosts,
    }
}

/// The two-bottleneck "parking lot" of Figure 20(a).
pub struct ParkingLot {
    /// The built network.
    pub net: Network,
    /// First-bottleneck switch (H1/H2 attach here).
    pub sw1: NodeId,
    /// Second-bottleneck switch (H3/R1/R2 attach here).
    pub sw2: NodeId,
    /// Sender of f1 (one bottleneck: SW1→SW2).
    pub h1: NodeId,
    /// Sender of f2 (two bottlenecks: SW1→SW2 and SW2→R2).
    pub h2: NodeId,
    /// Sender of f3 (one bottleneck: SW2→R2).
    pub h3: NodeId,
    /// Receiver of f1.
    pub r1: NodeId,
    /// Receiver of f2 and f3.
    pub r2: NodeId,
}

/// Builds the multi-bottleneck scenario: f2 (H2→R2) crosses both the
/// SW1→SW2 link (shared with f1) and the SW2→R2 link (shared with f3).
/// Max-min fairness gives every flow half the link rate.
pub fn parking_lot(
    link: LinkParams,
    host_cfg: HostConfig,
    switch_cfg: SwitchConfig,
    seed: u64,
) -> ParkingLot {
    let mut b = NetworkBuilder::new(seed);
    let sw1 = b.switch(switch_cfg.clone());
    let sw2 = b.switch(switch_cfg);
    let h1 = b.host(host_cfg);
    let h2 = b.host(host_cfg);
    let h3 = b.host(host_cfg);
    let r1 = b.host(host_cfg);
    let r2 = b.host(host_cfg);
    b.connect(sw1, sw2, link.bandwidth, link.delay);
    b.connect(h1, sw1, link.bandwidth, link.delay);
    b.connect(h2, sw1, link.bandwidth, link.delay);
    b.connect(h3, sw2, link.bandwidth, link.delay);
    b.connect(r1, sw2, link.bandwidth, link.delay);
    b.connect(r2, sw2, link.bandwidth, link.delay);
    ParkingLot {
        net: b.build(),
        sw1,
        sw2,
        h1,
        h2,
        h3,
        r1,
        r2,
    }
}

/// A k-ary fat tree (beyond the paper's testbed: for scalability studies).
pub struct FatTree {
    /// The built network.
    pub net: Network,
    /// Core switches ((k/2)² of them).
    pub cores: Vec<NodeId>,
    /// Aggregation switches, k/2 per pod.
    pub aggs: Vec<NodeId>,
    /// Edge switches, k/2 per pod.
    pub edges: Vec<NodeId>,
    /// Hosts, k/2 per edge switch (k³/4 total).
    pub hosts: Vec<NodeId>,
}

/// Builds a k-ary fat tree (`k` even): `k` pods of `k/2` edge and `k/2`
/// aggregation switches, `(k/2)²` cores, and `k³/4` hosts. Every
/// host-to-host path outside a rack has `(k/2)`-way (intra-pod) or
/// `(k/2)²`-way (inter-pod) ECMP.
pub fn fat_tree(
    k: usize,
    link: LinkParams,
    host_cfg: HostConfig,
    switch_cfg: SwitchConfig,
    seed: u64,
) -> FatTree {
    assert!(k >= 2 && k.is_multiple_of(2), "fat tree arity must be even");
    let half = k / 2;
    let mut b = NetworkBuilder::new(seed);
    let cores: Vec<NodeId> = (0..half * half)
        .map(|_| b.switch(switch_cfg.clone()))
        .collect();
    let mut aggs = Vec::with_capacity(k * half);
    let mut edges = Vec::with_capacity(k * half);
    let mut hosts = Vec::with_capacity(k * half * half);
    for _pod in 0..k {
        let pod_aggs: Vec<NodeId> = (0..half).map(|_| b.switch(switch_cfg.clone())).collect();
        let pod_edges: Vec<NodeId> = (0..half).map(|_| b.switch(switch_cfg.clone())).collect();
        // Edge ↔ agg: full bipartite mesh within the pod.
        for &e in &pod_edges {
            for &a in &pod_aggs {
                b.connect(e, a, link.bandwidth, link.delay);
            }
        }
        // Agg i ↔ cores [i·half, (i+1)·half).
        for (i, &a) in pod_aggs.iter().enumerate() {
            for j in 0..half {
                b.connect(a, cores[i * half + j], link.bandwidth, link.delay);
            }
        }
        // Hosts.
        for &e in &pod_edges {
            for _ in 0..half {
                let h = b.host(host_cfg);
                b.connect(h, e, link.bandwidth, link.delay);
                hosts.push(h);
            }
        }
        aggs.extend(pod_aggs);
        edges.extend(pod_edges);
    }
    FatTree {
        net: b.build(),
        cores,
        aggs,
        edges,
        hosts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Node;

    #[test]
    fn star_structure() {
        let s = star(
            4,
            LinkParams::default(),
            HostConfig::default(),
            SwitchConfig::paper_default(),
            1,
        );
        assert_eq!(s.hosts.len(), 4);
        let sw = s.net.switch(s.switch);
        assert_eq!(sw.ports.len(), 4);
        assert!(sw.ports.iter().all(|p| p.attach.is_some()));
        // Every host routes through its single port; the switch routes to
        // all four hosts.
        assert_eq!(sw.routes.len(), 4);
    }

    #[test]
    fn clos_structure_matches_figure_2() {
        let tb = clos_testbed(
            5,
            LinkParams::default(),
            HostConfig::default(),
            SwitchConfig::paper_default(),
            1,
        );
        let (mut switches, mut hosts) = (0, 0);
        for n in &tb.net.nodes {
            match n {
                Node::Switch(_) => switches += 1,
                Node::Host(_) => hosts += 1,
            }
        }
        assert_eq!(switches, 10, "4 ToRs + 4 leaves + 2 spines");
        assert_eq!(hosts, 20);
        // Port counts: ToR = 2 uplinks + 5 hosts, leaf = 2 ToRs + 2
        // spines, spine = 4 leaves.
        assert_eq!(tb.net.switch(tb.tors[0]).ports.len(), 7);
        assert_eq!(tb.net.switch(tb.leaves[0]).ports.len(), 4);
        assert_eq!(tb.net.switch(tb.spines[0]).ports.len(), 4);
    }

    #[test]
    fn clos_inter_pod_paths_have_ecmp_2() {
        let tb = clos_testbed(
            2,
            LinkParams::default(),
            HostConfig::default(),
            SwitchConfig::paper_default(),
            1,
        );
        let far = tb.hosts[3][0];
        // T1 → L1/L2 (2 ways), L1 → S1/S2 (2 ways), S → L3 or L4 (1 way
        // each, since T4 hangs off both L3 and L4... via the spine the
        // shortest path continues through either leaf).
        assert_eq!(tb.net.switch(tb.tors[0]).routes[&far].len(), 2);
        assert_eq!(tb.net.switch(tb.leaves[0]).routes[&far].len(), 2);
        // Intra-pod: T1 → T2 via L1 or L2, no spine crossing.
        let near = tb.hosts[1][0];
        assert_eq!(tb.net.switch(tb.tors[0]).routes[&near].len(), 2);
        let spine_routes = &tb.net.switch(tb.spines[0]).routes[&near];
        assert_eq!(spine_routes.len(), 2, "spine can reach T2 via L1 or L2");
    }

    #[test]
    fn parking_lot_structure() {
        let pl = parking_lot(
            LinkParams::default(),
            HostConfig::default(),
            SwitchConfig::paper_default(),
            1,
        );
        // f2's path crosses both switches: SW1 routes r2-bound traffic
        // over the trunk, SW2 delivers it.
        let sw1 = pl.net.switch(pl.sw1);
        assert_eq!(sw1.routes[&pl.r2].len(), 1);
        let sw2 = pl.net.switch(pl.sw2);
        assert_eq!(sw2.routes[&pl.r2].len(), 1);
        assert_eq!(sw1.ports.len(), 3, "trunk + H1 + H2");
        assert_eq!(sw2.ports.len(), 4, "trunk + H3 + R1 + R2");
    }

    #[test]
    fn fat_tree_structure() {
        let ft = fat_tree(
            4,
            LinkParams::default(),
            HostConfig::default(),
            SwitchConfig::paper_default(),
            1,
        );
        assert_eq!(ft.cores.len(), 4);
        assert_eq!(ft.aggs.len(), 8);
        assert_eq!(ft.edges.len(), 8);
        assert_eq!(ft.hosts.len(), 16);
        // Inter-pod ECMP: an edge switch reaches a remote host via its 2
        // aggs; an agg via its 2 cores.
        let remote = ft.hosts[15];
        assert_eq!(ft.net.switch(ft.edges[0]).routes[&remote].len(), 2);
        assert_eq!(ft.net.switch(ft.aggs[0]).routes[&remote].len(), 2);
        // Intra-rack: direct.
        let local = ft.hosts[0];
        assert_eq!(ft.net.switch(ft.edges[0]).routes[&local].len(), 1);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_rejects_odd_arity() {
        let _ = fat_tree(
            3,
            LinkParams::default(),
            HostConfig::default(),
            SwitchConfig::paper_default(),
            1,
        );
    }

    #[test]
    fn default_link_params_are_the_testbed() {
        let lp = LinkParams::default();
        assert_eq!(lp.bandwidth, Bandwidth::gbps(40));
        assert_eq!(lp.delay, Duration::from_micros(1));
    }
}
