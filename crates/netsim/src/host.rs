//! The end host: a NIC with per-flow hardware-style rate limiters, a
//! RoCE-like go-back-N reliable transport, the receiver-side notification
//! point (NP) that generates CNPs, and a pluggable per-flow congestion
//! control algorithm (the RP).
//!
//! Sending is *pull-based*: the NIC hands a packet to the wire only when the
//! transmitter is idle, choosing round-robin among flows that (a) have data,
//! (b) are not PFC-paused, (c) fit their congestion window (window-based
//! algorithms), and (d) have passed their pacing deadline (rate-based
//! algorithms). This mirrors NIC hardware, where rate limiting is "on a
//! per-packet granularity" (§3.3).

use crate::cc::{CcActions, CongestionControl};
use crate::event::{Event, NodeId, PortId, TimerKind};
use crate::network::Ctx;
use crate::packet::{Ecn, FlowId, Packet, PacketKind, Priority, HEADER_BYTES};
use crate::port::{Port, Queued};
use crate::trace::{TraceEvent, TraceKind};
use crate::units::{Bandwidth, Duration, Time};
use std::collections::{HashMap, VecDeque};

/// Host/NIC configuration.
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Generate a cumulative ACK every this many in-order data packets
    /// (message tails are always ACKed immediately).
    pub ack_every: u32,
    /// Go-back-N retransmission timeout.
    pub rto: Duration,
    /// Consecutive timeouts without progress before the QP is torn down
    /// (InfiniBand transport retry count; RoCE flows that exhaust it are
    /// "simply unable to recover" — §6.2).
    pub max_retries: u32,
    /// Cap on the exponential RTO backoff multiplier: the k-th consecutive
    /// timeout of a stalled flow waits `rto · min(2^(k−1), cap)` before
    /// retrying again, so a black-holed flow stops hammering the fabric
    /// with go-back-N bursts. 1 disables backoff.
    pub rto_backoff_cap: u32,
    /// NP CNP pacing interval (`N` in the paper, 50 µs); `None` disables
    /// CNP generation entirely (e.g. DCTCP hosts).
    pub cnp_interval: Option<Duration>,
    /// Minimum gap between repeated NAKs for the same expected PSN.
    pub nack_min_interval: Duration,
    /// Generate out-of-sequence NAKs at all. ConnectX-3-era NICs
    /// effectively recovered only via the retransmission timeout; disable
    /// this to model that (used by the Figure 18 loss study).
    pub nack_enabled: bool,
    /// After this much idle time a flow's congestion state resets to line
    /// rate (the paper's flows start at line rate). `None` keeps state
    /// forever.
    pub idle_reset: Option<Duration>,
    /// Data payload bytes per packet (MTU minus headers).
    pub mtu_payload: u64,
    /// Priority class for ACKs/NAKs. RoCE deployments ride them on the
    /// control class (the default); RTT-based schemes like TIMELY measure
    /// through the data class, so their hosts set `DATA_PRIORITY` here.
    pub ack_priority: Priority,
}

impl Default for HostConfig {
    fn default() -> HostConfig {
        HostConfig {
            ack_every: 4,
            rto: Duration::from_millis(16),
            max_retries: 7,
            rto_backoff_cap: 8,
            cnp_interval: Some(Duration::from_micros(50)),
            nack_min_interval: Duration::from_micros(100),
            nack_enabled: true,
            idle_reset: Some(Duration::from_millis(1)),
            mtu_payload: 1500 - HEADER_BYTES,
            ack_priority: crate::packet::CONTROL_PRIORITY,
        }
    }
}

/// A message handed to a flow for transmission.
#[derive(Debug, Clone, Copy)]
pub struct PendingMessage {
    /// Bytes not yet cut into packets.
    pub remaining: u64,
    /// Original size.
    pub total: u64,
    /// When the message was handed to the flow.
    pub arrived: Time,
}

/// Metadata for a sent-but-unacknowledged packet (needed for go-back-N
/// retransmission).
#[derive(Debug, Clone, Copy)]
struct SentPkt {
    payload: u32,
    eom: bool,
    /// When the packet was (first) put on the wire.
    sent_at: Time,
    /// Karn's rule: RTT samples from retransmitted packets are discarded.
    retransmitted: bool,
}

/// A message fully cut into packets, awaiting cumulative acknowledgement.
#[derive(Debug, Clone, Copy)]
struct UnfinishedMsg {
    last_psn: u64,
    total: u64,
    arrived: Time,
}

/// Sender-side state of one flow.
pub struct Flow {
    /// Global flow id.
    pub id: FlowId,
    /// Destination host.
    pub dst: NodeId,
    /// PFC / scheduling class of the data packets.
    pub priority: Priority,
    /// The congestion-control algorithm (DCQCN RP, DCTCP, ...).
    pub cc: Box<dyn CongestionControl>,
    /// Messages waiting to be packetized.
    pub messages: VecDeque<PendingMessage>,
    /// Lowest unacknowledged PSN.
    pub una_psn: u64,
    /// Next PSN to put on the wire (rewinds on NAK/timeout).
    pub send_psn: u64,
    /// Next never-sent PSN.
    pub next_psn: u64,
    /// Wire bytes in `[una_psn, next_psn)` (window accounting).
    pub inflight_wire: u64,
    /// Pacing: earliest time the next packet may start.
    pub next_eligible: Time,
    /// Armed RTO deadline (`Time::NEVER` = disarmed).
    pub rto_deadline: Time,
    /// Armed CC timers: id → deadline.
    pub cc_timers: Vec<(u32, Time)>,
    /// Last send or ACK activity (drives idle reset).
    pub last_activity: Time,
    /// Consecutive retransmission timeouts without ACK progress.
    pub consecutive_timeouts: u32,
    /// The QP exhausted its retry budget and was torn down.
    pub dead: bool,
    unacked: VecDeque<SentPkt>,
    unfinished: VecDeque<UnfinishedMsg>,
}

impl Flow {
    fn new(id: FlowId, dst: NodeId, priority: Priority, cc: Box<dyn CongestionControl>) -> Flow {
        Flow {
            id,
            dst,
            priority,
            cc,
            messages: VecDeque::new(),
            una_psn: 0,
            send_psn: 0,
            next_psn: 0,
            inflight_wire: 0,
            next_eligible: Time::ZERO,
            rto_deadline: Time::NEVER,
            cc_timers: Vec::new(),
            last_activity: Time::ZERO,
            consecutive_timeouts: 0,
            dead: false,
            unacked: VecDeque::new(),
            unfinished: VecDeque::new(),
        }
    }

    /// Does this flow have a packet it could send right now (ignoring
    /// pacing/pause/window)?
    pub fn has_data(&self) -> bool {
        !self.dead
            && (self.send_psn < self.next_psn
                || self.messages.front().is_some_and(|m| m.remaining > 0))
    }

    /// Nothing outstanding and nothing to send.
    pub fn is_idle(&self) -> bool {
        self.una_psn == self.next_psn && !self.has_data()
    }

    /// Current sending rate as reported by the CC algorithm.
    pub fn current_rate(&self) -> Bandwidth {
        self.cc.rate()
    }

    fn window_permits(&self) -> bool {
        match self.cc.window() {
            // Strictly-below comparison: the window may be overshot by at
            // most one MTU, like a real segment-granularity sender.
            Some(w) => self.inflight_wire < w,
            None => true,
        }
    }
}

/// Receiver-side state of one flow (transport reassembly point + NP).
pub struct FlowReceiver {
    /// The sending host (ACKs/CNPs go there).
    pub src: NodeId,
    /// Next PSN expected in order.
    pub expected_psn: u64,
    /// When the NP last generated a CNP (`None` = never).
    pub last_cnp: Option<Time>,
    pkts_since_ack: u32,
    marked_since_ack: u32,
    last_nack_psn: u64,
    last_nack_at: Time,
}

impl FlowReceiver {
    fn new(src: NodeId) -> FlowReceiver {
        FlowReceiver {
            src,
            expected_psn: 0,
            last_cnp: None,
            pkts_since_ack: 0,
            marked_since_ack: 0,
            last_nack_psn: u64::MAX,
            last_nack_at: Time::ZERO,
        }
    }
}

/// An end host with one NIC port.
pub struct Host {
    /// This host's node id.
    pub id: NodeId,
    /// The NIC port (data + control egress queues).
    pub port: Port,
    /// Configuration.
    pub config: HostConfig,
    /// Sender-side flows originating here.
    pub flows: Vec<Flow>,
    /// Receiver-side state per incoming flow.
    pub receivers: HashMap<FlowId, FlowReceiver>,
    /// Flow id → index in `flows`; keeps per-ACK/CNP lookups O(1).
    flow_ids: HashMap<FlowId, usize>,
    rr_cursor: usize,
    wakeup_at: Time,
    /// Reusable CC-action buffer: cleared before every callback so the
    /// per-packet path performs no allocation.
    scratch: CcActions,
}

impl Host {
    /// Creates a host.
    pub fn new(id: NodeId, config: HostConfig) -> Host {
        Host {
            id,
            port: Port::new(),
            config,
            flows: Vec::new(),
            receivers: HashMap::new(),
            flow_ids: HashMap::new(),
            rr_cursor: 0,
            wakeup_at: Time::NEVER,
            scratch: CcActions::default(),
        }
    }

    /// Line rate of the NIC.
    pub fn line_rate(&self) -> Bandwidth {
        // Topology-construction precondition (hosts are built attached),
        // queried at flow-registration time — not the packet path (the
        // call graph proves it cold, so no suppression is needed).
        self.port.attach.expect("host NIC not attached").bandwidth
    }

    /// Registers a new outgoing flow; returns its local index.
    pub fn add_flow(
        &mut self,
        id: FlowId,
        dst: NodeId,
        priority: Priority,
        cc: Box<dyn CongestionControl>,
    ) -> usize {
        self.flows.push(Flow::new(id, dst, priority, cc));
        let idx = self.flows.len() - 1;
        self.flow_ids.insert(id, idx);
        idx
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Handles a packet delivered to this host.
    pub fn receive(&mut self, ctx: &mut Ctx, pkt: Packet) {
        match pkt.kind {
            PacketKind::Pfc { class, pause } => {
                let now = ctx.queue.now();
                let paused_since = self.port.rx_paused_since[class as usize];
                let released = self.port.apply_pfc(class, pause, now);
                if released {
                    if paused_since != Time::NEVER {
                        ctx.metrics.observe(
                            ctx.metrics.h.pause_duration_us,
                            now.saturating_since(paused_since).as_micros_f64() as u64,
                        );
                    }
                    self.try_send(ctx);
                }
            }
            PacketKind::Data { psn, payload, eom } => {
                self.receive_data(ctx, &pkt, psn, payload, eom);
            }
            PacketKind::Ack {
                cum_psn,
                acked,
                marked,
            } => {
                self.receive_ack(ctx, pkt.flow, cum_psn, acked, marked);
            }
            PacketKind::Nack { expected_psn } => {
                self.receive_nack(ctx, pkt.flow, expected_psn);
            }
            PacketKind::Cnp => {
                let now = ctx.queue.now();
                ctx.stats(pkt.flow).cnps_received += 1;
                if let Some(i) = self.flow_index(pkt.flow) {
                    self.scratch.clear();
                    self.flows[i].cc.on_cnp(now, &mut self.scratch);
                    self.apply_cc_actions(ctx, i);
                }
            }
            PacketKind::QcnFeedback { fb } => {
                let now = ctx.queue.now();
                if let Some(i) = self.flow_index(pkt.flow) {
                    self.scratch.clear();
                    self.flows[i].cc.on_qcn_feedback(now, fb, &mut self.scratch);
                    self.apply_cc_actions(ctx, i);
                }
            }
        }
        self.update_spans(ctx);
    }

    fn flow_index(&self, id: FlowId) -> Option<usize> {
        self.flow_ids.get(&id).copied()
    }

    fn receive_data(&mut self, ctx: &mut Ctx, pkt: &Packet, psn: u64, payload: u64, eom: bool) {
        let now = ctx.queue.now();
        let cnp_interval = self.config.cnp_interval;
        let ack_every = self.config.ack_every;
        let nack_min = self.config.nack_min_interval;
        let nack_enabled = self.config.nack_enabled;
        let ack_priority = self.config.ack_priority;
        let host_id = self.id;
        let rcv = self
            .receivers
            .entry(pkt.flow)
            .or_insert_with(|| FlowReceiver::new(pkt.src));

        // Notification point: CE-marked arrival may trigger a CNP, rate
        // limited to one per `cnp_interval` per flow (§3.1, Figure 6).
        let mut control: Option<Packet> = None;
        let mut cnp: Option<Packet> = None;
        if pkt.ecn == Ecn::Ce {
            ctx.stats(pkt.flow).marked_pkts += 1;
            if let Some(n) = cnp_interval {
                let due = match rcv.last_cnp {
                    None => true,
                    Some(last) => now - last >= n,
                };
                if due {
                    if let Some(last) = rcv.last_cnp {
                        ctx.metrics.observe(
                            ctx.metrics.h.cnp_interarrival_us,
                            (now - last).as_micros_f64() as u64,
                        );
                    }
                    rcv.last_cnp = Some(now);
                    cnp = Some(Packet::cnp(host_id, rcv.src, pkt.flow));
                    ctx.stats(pkt.flow).cnps_sent += 1;
                    ctx.metrics.inc(ctx.metrics.h.cnps_sent);
                    ctx.record_trace(TraceEvent {
                        at: now,
                        node: host_id,
                        flow: pkt.flow,
                        kind: TraceKind::CnpSent,
                        detail: 0,
                    });
                }
            }
        }

        if psn == rcv.expected_psn {
            // In-order: accept.
            ctx.audit.on_in_order_accept(host_id, pkt.flow, psn, now);
            rcv.expected_psn += 1;
            rcv.last_nack_psn = u64::MAX;
            rcv.pkts_since_ack += 1;
            if pkt.ecn == Ecn::Ce {
                rcv.marked_since_ack += 1;
            }
            let st = ctx.stats(pkt.flow);
            st.delivered_pkts += 1;
            st.delivered_bytes += payload;
            ctx.record_trace(TraceEvent {
                at: now,
                node: host_id,
                flow: pkt.flow,
                kind: TraceKind::Delivered,
                detail: psn,
            });
            if eom || rcv.pkts_since_ack >= ack_every {
                let mut ack = Packet::ack(
                    host_id,
                    rcv.src,
                    pkt.flow,
                    rcv.expected_psn,
                    rcv.pkts_since_ack,
                    rcv.marked_since_ack,
                );
                ack.priority = ack_priority;
                control = Some(ack);
                rcv.pkts_since_ack = 0;
                rcv.marked_since_ack = 0;
            }
        } else if psn > rcv.expected_psn {
            // Gap: go-back-N receivers discard and NAK (once per episode).
            let expected = rcv.expected_psn;
            if nack_enabled && (rcv.last_nack_psn != expected || now - rcv.last_nack_at >= nack_min)
            {
                rcv.last_nack_psn = expected;
                rcv.last_nack_at = now;
                control = Some(Packet::nack(host_id, rcv.src, pkt.flow, expected));
                ctx.stats(pkt.flow).nacks_sent += 1;
                ctx.metrics.inc(ctx.metrics.h.nacks_sent);
                ctx.record_trace(TraceEvent {
                    at: now,
                    node: host_id,
                    flow: pkt.flow,
                    kind: TraceKind::NackSent,
                    detail: expected,
                });
            }
        } else {
            // Duplicate of an already-delivered packet (post-rewind
            // overlap): re-ACK so the sender advances.
            let mut ack = Packet::ack(host_id, rcv.src, pkt.flow, rcv.expected_psn, 0, 0);
            ack.priority = ack_priority;
            control = Some(ack);
        }

        for c in [cnp, control].into_iter().flatten() {
            self.port.enqueue(Queued::new(c, None));
        }
        self.try_send(ctx);
    }

    fn receive_ack(&mut self, ctx: &mut Ctx, id: FlowId, cum_psn: u64, acked: u32, marked: u32) {
        let now = ctx.queue.now();
        let Some(i) = self.flow_index(id) else { return };
        let f = &mut self.flows[i];
        let mut acked_bytes = 0u64;
        let mut rtt: Option<Duration> = None;
        while f.una_psn < cum_psn {
            let Some(meta) = f.unacked.pop_front() else {
                break;
            };
            let wire = meta.payload as u64 + HEADER_BYTES;
            debug_assert!(f.inflight_wire >= wire);
            f.inflight_wire -= wire;
            acked_bytes += wire;
            f.una_psn += 1;
            // RTT sample from the newest covered, never-retransmitted
            // packet (Karn's rule).
            rtt = if meta.retransmitted {
                None
            } else {
                Some(now.saturating_since(meta.sent_at))
            };
        }
        f.send_psn = f.send_psn.max(f.una_psn);
        f.last_activity = now;
        if acked_bytes > 0 {
            f.consecutive_timeouts = 0;
        }

        // Message completions.
        while f.unfinished.front().is_some_and(|m| m.last_psn < f.una_psn) {
            let Some(m) = f.unfinished.pop_front() else {
                break;
            };
            ctx.stats(id).completions.push(crate::stats::Completion {
                at: now,
                started: m.arrived,
                bytes: m.total,
            });
            ctx.metrics.inc(ctx.metrics.h.completions);
            ctx.metrics.observe(
                ctx.metrics.h.fct_us,
                now.saturating_since(m.arrived).as_micros_f64() as u64,
            );
            ctx.complete_span(id, self.id, now);
        }

        // RTO management: progress pushes the (soft) deadline out, full
        // acknowledgement disarms. The pending timer event re-checks the
        // stored deadline when it fires, so no rescheduling is needed here.
        if f.una_psn == f.next_psn {
            f.rto_deadline = Time::NEVER;
        } else if acked_bytes > 0 {
            f.rto_deadline = now + self.config.rto;
        }

        if acked > 0 || acked_bytes > 0 {
            self.scratch.clear();
            self.flows[i]
                .cc
                .on_ack(now, acked_bytes, acked, marked, rtt, &mut self.scratch);
            self.apply_cc_actions(ctx, i);
        }
        self.try_send(ctx);
    }

    fn receive_nack(&mut self, ctx: &mut Ctx, id: FlowId, expected_psn: u64) {
        // A NAK is a cumulative ACK for everything below `expected_psn`
        // plus a rewind request (go-back-N).
        self.receive_ack(ctx, id, expected_psn, 0, 0);
        let now = ctx.queue.now();
        let Some(i) = self.flow_index(id) else { return };
        let f = &mut self.flows[i];
        if expected_psn >= f.una_psn && expected_psn < f.next_psn {
            // Rewind to the NAKed PSN (never below the cumulative ACK).
            f.send_psn = expected_psn.max(f.una_psn);
            self.scratch.clear();
            f.cc.on_loss(now, &mut self.scratch);
            self.apply_cc_actions(ctx, i);
            self.try_send(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Dispatches a fired host timer.
    pub fn timer(&mut self, ctx: &mut Ctx, kind: TimerKind) {
        let now = ctx.queue.now();
        match kind {
            TimerKind::Cc { flow, id } => {
                let Some(f) = self.flows.get_mut(flow) else {
                    return;
                };
                let armed = f.cc_timers.iter().any(|&(tid, at)| tid == id && at == now);
                if armed {
                    // Consume the deadline, then let the algorithm re-arm.
                    if let Some(slot) = f.cc_timers.iter_mut().find(|(tid, _)| *tid == id) {
                        slot.1 = Time::NEVER;
                    }
                    self.scratch.clear();
                    f.cc.on_timer(now, id, &mut self.scratch);
                    self.apply_cc_actions(ctx, flow);
                    self.try_send(ctx);
                }
            }
            TimerKind::Retransmit { flow } => {
                let Some(f) = self.flows.get_mut(flow) else {
                    return;
                };
                if f.rto_deadline == Time::NEVER {
                    return; // disarmed: the chain dies here
                }
                if f.rto_deadline > now {
                    // Deadline was pushed out by sends/ACKs since this
                    // event was scheduled: keep the chain alive.
                    let at = f.rto_deadline;
                    ctx.queue.schedule(
                        at,
                        Event::Timer {
                            node: self.id,
                            kind: TimerKind::Retransmit { flow },
                        },
                    );
                    return;
                }
                if f.una_psn < f.next_psn {
                    // Genuine stall: go-back-N from the first unacked PSN.
                    f.consecutive_timeouts += 1;
                    if f.consecutive_timeouts > self.config.max_retries {
                        // Transport retry count exhausted: QP error.
                        f.dead = true;
                        f.rto_deadline = Time::NEVER;
                        let id = f.id;
                        ctx.stats(id).aborted = true;
                        ctx.metrics.inc(ctx.metrics.h.qp_teardowns);
                        ctx.flight
                            .dump(self.id, now, &format!("qp_teardown flow={}", id.0));
                        self.update_spans(ctx);
                        return;
                    }
                    f.send_psn = f.una_psn;
                    ctx.stats(f.id).timeouts += 1;
                    ctx.metrics.inc(ctx.metrics.h.timeouts);
                    ctx.record_trace(TraceEvent {
                        at: now,
                        node: self.id,
                        flow: f.id,
                        kind: TraceKind::Timeout,
                        detail: f.una_psn,
                    });
                    // The stall that just ended was RTO wait: re-attribute
                    // the open interval before the rewind changes state.
                    ctx.spans.on_timeout(f.id, now);
                    // Exponential backoff: the k-th consecutive timeout
                    // waits min(2^(k−1), cap) × rto. ACK progress resets
                    // the count (receive_ack), returning to the base RTO.
                    let shift = (f.consecutive_timeouts - 1).min(31);
                    let factor = (1u64 << shift).min(u64::from(self.config.rto_backoff_cap.max(1)));
                    let deadline = now + self.config.rto.saturating_mul(factor);
                    f.rto_deadline = deadline;
                    ctx.queue.schedule(
                        deadline,
                        Event::Timer {
                            node: self.id,
                            kind: TimerKind::Retransmit { flow },
                        },
                    );
                    self.scratch.clear();
                    f.cc.on_loss(now, &mut self.scratch);
                    self.apply_cc_actions(ctx, flow);
                    self.try_send(ctx);
                } else {
                    f.rto_deadline = Time::NEVER;
                }
            }
            TimerKind::NicWakeup => {
                if self.wakeup_at <= now {
                    self.wakeup_at = Time::NEVER;
                }
                self.try_send(ctx);
            }
            TimerKind::MessageArrival { flow, bytes } => {
                self.inject_message(ctx, flow, bytes);
            }
            TimerKind::IdleReset { flow } => {
                // Optional explicit reset hook (unused by default: resets
                // happen lazily on message arrival).
                let Some(f) = self.flows.get_mut(flow) else {
                    return;
                };
                if f.is_idle() {
                    self.scratch.clear();
                    f.cc.reset(now, &mut self.scratch);
                    self.apply_cc_actions(ctx, flow);
                }
            }
        }
        self.update_spans(ctx);
    }

    /// Hands `bytes` to flow `flow` for transmission, resetting congestion
    /// state first if the flow has been idle long enough (line-rate start).
    pub fn inject_message(&mut self, ctx: &mut Ctx, flow: usize, bytes: u64) {
        let now = ctx.queue.now();
        let f = &mut self.flows[flow];
        if let Some(idle) = self.config.idle_reset {
            if f.is_idle() && now.saturating_since(f.last_activity) >= idle {
                self.scratch.clear();
                f.cc.reset(now, &mut self.scratch);
                f.next_eligible = now;
                self.apply_cc_actions(ctx, flow);
            }
        }
        let f = &mut self.flows[flow];
        f.messages.push_back(PendingMessage {
            remaining: bytes,
            total: bytes,
            arrived: now,
        });
        self.try_send(ctx);
        self.update_spans(ctx);
    }

    /// Applies the timer actions accumulated in `self.scratch` (filled by
    /// the preceding CC callback), then empties it for reuse.
    fn apply_cc_actions(&mut self, ctx: &mut Ctx, flow: usize) {
        for k in 0..self.scratch.timers.len() {
            let (id, at) = self.scratch.timers[k];
            let f = &mut self.flows[flow];
            match f.cc_timers.iter_mut().find(|(tid, _)| *tid == id) {
                Some(slot) => slot.1 = at,
                None => f.cc_timers.push((id, at)),
            }
            if at != Time::NEVER {
                ctx.queue.schedule(
                    at,
                    Event::Timer {
                        node: self.id,
                        kind: TimerKind::Cc { flow, id },
                    },
                );
            }
        }
        self.scratch.timers.clear();
        // Every CC callback routes through here, so this one hook audits
        // the sender's go-back-N bookkeeping and the algorithm's domain
        // after each state change. Compiled out without `sanitize`.
        if cfg!(feature = "sanitize") {
            let now = ctx.queue.now();
            let f = &self.flows[flow];
            ctx.audit
                .check_flow_psns(self.id, f.id, f.una_psn, f.send_psn, f.next_psn, now);
            if let Some(info) = f.cc.audit_info() {
                ctx.audit.check_cc(self.id, f.id, &info, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    /// The NIC scheduler: sends one packet if the transmitter is idle and
    /// anything is eligible; otherwise arms a wakeup for the earliest
    /// pacing deadline.
    pub fn try_send(&mut self, ctx: &mut Ctx) {
        if self.port.busy {
            return;
        }
        // Control frames (ACK/NAK/CNP) first — they sit in the port queues.
        if self.port.has_eligible() {
            self.start_tx(ctx);
            return;
        }
        let now = ctx.queue.now();
        let line = match self.port.attach {
            Some(a) => a.bandwidth,
            None => return,
        };
        let n = self.flows.len();
        let mut earliest = Time::NEVER;
        for k in 0..n {
            let i = (self.rr_cursor + k) % n;
            let f = &self.flows[i];
            if !f.has_data() || self.port.rx_paused[f.priority as usize] {
                continue;
            }
            if !f.window_permits() {
                continue; // ACK arrival will retry
            }
            if f.next_eligible > now {
                earliest = earliest.min(f.next_eligible);
                continue;
            }
            self.rr_cursor = i + 1;
            self.send_one(ctx, i, line);
            return;
        }
        if earliest != Time::NEVER && (self.wakeup_at > earliest || self.wakeup_at <= now) {
            self.wakeup_at = earliest;
            ctx.queue.schedule(
                earliest,
                Event::Timer {
                    node: self.id,
                    kind: TimerKind::NicWakeup,
                },
            );
        }
    }

    /// Builds and transmits the next packet of flow `i`.
    fn send_one(&mut self, ctx: &mut Ctx, i: usize, _line: Bandwidth) {
        let now = ctx.queue.now();
        let host_id = self.id;
        let mtu = self.config.mtu_payload;
        let rto = self.config.rto;
        let f = &mut self.flows[i];

        let (psn, payload, eom, is_retx) = if f.send_psn < f.next_psn {
            // Go-back-N retransmission.
            let idx = (f.send_psn - f.una_psn) as usize;
            f.unacked[idx].retransmitted = true;
            let meta = f.unacked[idx];
            (f.send_psn, meta.payload as u64, meta.eom, true)
        } else {
            // Cut a fresh packet from the front message. `has_data` was
            // checked by the scheduler, so an empty queue is unreachable;
            // bail (no packet this round) instead of panicking.
            let Some(msg) = f.messages.front_mut() else {
                debug_assert!(false, "send_one without data");
                return;
            };
            let payload = msg.remaining.min(mtu);
            msg.remaining -= payload;
            let eom = msg.remaining == 0;
            if eom {
                let done = *msg;
                f.messages.pop_front();
                f.unfinished.push_back(UnfinishedMsg {
                    last_psn: f.next_psn,
                    total: done.total,
                    arrived: done.arrived,
                });
            }
            (f.next_psn, payload, eom, false)
        };

        let mut pkt = Packet::data(host_id, f.dst, f.id, f.priority, psn, payload);
        if let PacketKind::Data { eom: e, .. } = &mut pkt.kind {
            *e = eom;
        }
        let wire = pkt.wire_bytes;
        ctx.spans.on_data_tx(f.id, is_retx, now);

        if is_retx {
            ctx.stats(f.id).retx_pkts += 1;
            ctx.metrics.inc(ctx.metrics.h.retx_pkts);
        } else {
            f.unacked.push_back(SentPkt {
                payload: payload as u32,
                eom,
                sent_at: now,
                retransmitted: false,
            });
            f.next_psn += 1;
            f.inflight_wire += wire;
        }
        f.send_psn += 1;
        f.last_activity = now;
        {
            let st = ctx.stats(f.id);
            st.sent_pkts += 1;
            st.sent_bytes += wire;
        }

        // Pacing: space packet *starts* by wire_time(rate). No credit
        // accumulates while the flow was blocked (hardware limiters do not
        // burst).
        let rate = f.cc.rate();
        f.next_eligible = now + rate.serialize(wire);

        // Arm the retransmission timer when data first becomes
        // outstanding; ACK progress pushes the (soft) deadline out. A
        // sender that keeps transmitting but gets no ACKs back *does*
        // time out — that is the black-hole case go-back-N must cover.
        if f.rto_deadline == Time::NEVER {
            let deadline = now + rto;
            f.rto_deadline = deadline;
            ctx.queue.schedule(
                deadline,
                Event::Timer {
                    node: host_id,
                    kind: TimerKind::Retransmit { flow: i },
                },
            );
        }

        self.scratch.clear();
        f.cc.on_send(now, wire, &mut self.scratch);
        self.apply_cc_actions(ctx, i);

        self.port.enqueue(Queued::new(pkt, None).at(now));
        self.start_tx(ctx);
    }

    /// Starts serialization of the next queued frame if the port is idle.
    ///
    /// As in [`crate::switch::Switch::try_transmit`], only `TxDone` is
    /// scheduled here; [`Host::tx_done`] moves the finished frame out of
    /// `port.current` and schedules its `Deliver`, avoiding a per-packet
    /// clone and a second pending event per frame in flight.
    fn start_tx(&mut self, ctx: &mut Ctx) {
        let port = &mut self.port;
        if port.busy {
            return;
        }
        let Some(att) = port.attach else { return };
        let Some(q) = port.dequeue_next() else { return };
        let ser = att.bandwidth.serialize(q.pkt.wire_bytes);
        let now = ctx.queue.now();
        ctx.queue.schedule(
            now + ser,
            Event::TxDone {
                node: self.id,
                port: PortId(0),
            },
        );
        port.current = Some(q);
        port.busy = true;
    }

    /// The NIC finished serializing a frame: hand it to the wire.
    pub fn tx_done(&mut self, ctx: &mut Ctx) {
        self.port.busy = false;
        if let Some(done) = self.port.finish_current() {
            // `start_tx` only goes busy on an attached port; degrade to
            // dropping the frame rather than panicking the run.
            let Some(att) = self.port.attach else {
                debug_assert!(false, "transmitting port must be attached");
                return;
            };
            let now = ctx.queue.now();
            if ctx.spans.is_enabled() && done.pkt.is_data() {
                let ser = att.bandwidth.serialize(done.pkt.wire_bytes);
                ctx.spans.record_hop(crate::telemetry::spans::HopSpan {
                    flow: done.pkt.flow,
                    node: self.id,
                    port: PortId(0),
                    enqueued: done.enqueued_at,
                    start: now - ser,
                    end: now,
                });
            }
            let pkt = ctx.pool.insert(done.pkt);
            ctx.queue.schedule(
                now + att.delay,
                Event::Deliver {
                    node: att.peer,
                    port: att.peer_port,
                    pkt,
                },
            );
        }
        self.try_send(ctx);
        self.update_spans(ctx);
    }

    /// Re-observes every flow's attributed state after an event that may
    /// have changed what the NIC is doing (send start, PAUSE/RESUME, ACK,
    /// timer). State changes always coincide with host events — the NIC
    /// arms a wakeup for the earliest pacing deadline — so this lazy
    /// observation reconstructs the timeline exactly. One branch when
    /// causal tracing is off.
    pub(crate) fn update_spans(&mut self, ctx: &mut Ctx) {
        if !ctx.spans.is_enabled() {
            return;
        }
        use crate::telemetry::spans::SpanState;
        let now = ctx.queue.now();
        let current_flow = self
            .port
            .current
            .as_ref()
            .filter(|q| q.pkt.is_data())
            .map(|q| q.pkt.flow);
        let pause_origin = self.port.attach.map(|a| (a.peer, a.peer_port));
        for f in &self.flows {
            let (state, detail, origin) = if current_flow == Some(f.id) {
                // `set_state` re-labels this Retransmitting when the frame
                // on the wire was flagged as a go-back-N resend.
                (SpanState::Serializing, 0, None)
            } else if f.has_data() {
                if self.port.rx_paused[f.priority as usize] {
                    (SpanState::PauseBlocked, 0, pause_origin)
                } else if !f.window_permits() || f.next_eligible > now {
                    let cnps = ctx
                        .flow_stats
                        .get(f.id.0 as usize)
                        .map_or(0, |s| s.cnps_received);
                    (SpanState::Throttled, cnps, None)
                } else {
                    (SpanState::Queued, 0, None)
                }
            } else {
                (SpanState::Idle, 0, None)
            };
            ctx.spans.set_state(f.id, state, now, detail, origin);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::NoCc;

    fn flow() -> Flow {
        Flow::new(
            FlowId(1),
            NodeId(2),
            DATA_PRIORITY,
            Box::new(NoCc::new(Bandwidth::gbps(40))),
        )
    }
    use crate::packet::DATA_PRIORITY;

    #[test]
    fn fresh_flow_is_idle() {
        let f = flow();
        assert!(f.is_idle());
        assert!(!f.has_data());
        assert!(f.window_permits());
        assert_eq!(f.current_rate(), Bandwidth::gbps(40));
    }

    #[test]
    fn queued_message_makes_flow_sendable() {
        let mut f = flow();
        f.messages.push_back(PendingMessage {
            remaining: 1000,
            total: 1000,
            arrived: Time::ZERO,
        });
        assert!(f.has_data());
        assert!(!f.is_idle());
    }

    #[test]
    fn rewound_flow_has_data_even_with_empty_messages() {
        let mut f = flow();
        f.next_psn = 10;
        f.send_psn = 5; // go-back-N rewind
        f.una_psn = 5;
        assert!(f.has_data());
    }

    #[test]
    fn dead_flow_never_has_data() {
        let mut f = flow();
        f.messages.push_back(PendingMessage {
            remaining: 1000,
            total: 1000,
            arrived: Time::ZERO,
        });
        f.dead = true;
        assert!(!f.has_data());
    }

    #[test]
    fn outstanding_data_is_not_idle() {
        let mut f = flow();
        f.next_psn = 3;
        f.send_psn = 3;
        f.una_psn = 1;
        assert!(!f.is_idle(), "unacked data keeps the flow busy");
    }

    #[test]
    fn default_host_config_is_dcqcn_ready() {
        let c = HostConfig::default();
        assert_eq!(c.cnp_interval, Some(Duration::from_micros(50)));
        assert_eq!(c.mtu_payload, 1436);
        assert!(c.nack_enabled);
        assert_eq!(c.max_retries, 7);
        assert_eq!(c.rto_backoff_cap, 8);
        assert!(c.rto > Duration::from_millis(1));
    }

    #[test]
    fn host_flow_registration() {
        let mut h = Host::new(NodeId(0), HostConfig::default());
        let i0 = h.add_flow(
            FlowId(10),
            NodeId(1),
            DATA_PRIORITY,
            Box::new(NoCc::new(Bandwidth::gbps(40))),
        );
        let i1 = h.add_flow(
            FlowId(11),
            NodeId(2),
            DATA_PRIORITY,
            Box::new(NoCc::new(Bandwidth::gbps(40))),
        );
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(h.flows[0].id, FlowId(10));
        assert_eq!(h.flows[1].dst, NodeId(2));
    }
}
