//! End-to-end tests of the `sanitize` invariant auditor: real simulations
//! run clean, and deliberately corrupted ones are caught.
#![cfg(feature = "sanitize")]

use netsim::audit::ViolationKind;
use netsim::cc::{CcAuditInfo, CongestionControl, NoCc};
use netsim::host::HostConfig;
use netsim::packet::DATA_PRIORITY;
use netsim::switch::SwitchConfig;
use netsim::topology::{star, LinkParams};
use netsim::units::{Bandwidth, Time};

fn host_cfg() -> HostConfig {
    HostConfig {
        cnp_interval: None,
        ..HostConfig::default()
    }
}

/// A congested-but-healthy run records zero violations: the simulator's
/// own invariants hold under PFC pressure.
#[test]
fn healthy_congested_run_is_clean() {
    assert!(netsim::audit::Auditor::enabled());
    let mut s = star(
        4,
        LinkParams::default(),
        host_cfg(),
        SwitchConfig::paper_default(),
        7,
    );
    // 3-to-1 incast: enough pressure to exercise PFC pause/resume.
    for i in 0..3 {
        let f = s.net.add_flow(s.hosts[i], s.hosts[3], DATA_PRIORITY, |l| {
            Box::new(NoCc::new(l))
        });
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(5));
    assert!(s.net.events_executed() > 10_000, "run actually simulated");
    s.net.audit().assert_clean();
}

/// Corrupting a switch's occupancy counter (without touching the ingress
/// attribution) is flagged as a conservation violation on the next scan.
#[test]
fn corrupted_buffer_occupancy_is_caught() {
    let mut s = star(
        2,
        LinkParams::default(),
        host_cfg(),
        SwitchConfig::paper_default(),
        1,
    );
    let f = s.net.add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    s.net.send_message(f, u64::MAX, Time::ZERO);
    s.net.run_until(Time::from_millis(1));
    s.net.audit().assert_clean();

    let sw = s.switch;
    s.net.switch_mut(sw).buffer.debug_set_occupied(123_456_789);
    s.net.audit_buffers_now();
    let v = s.net.audit().violations();
    assert!(!v.is_empty(), "corruption went unnoticed");
    assert!(v
        .iter()
        .any(|v| v.kind == ViolationKind::BufferConservation));
    // 123 MB also exceeds the 12 MB pool — both checks fire.
    assert!(v.iter().any(|v| v.context.contains("exceeds pool")));
}

/// A violation automatically dumps the offending node's flight-recorder
/// ring: the dump names the switch, carries the violation kind in its
/// reason, and holds the node's most recent trace events.
#[test]
fn violation_dumps_the_offending_nodes_flight_recorder() {
    let mut s = star(
        2,
        LinkParams::default(),
        host_cfg(),
        SwitchConfig::paper_default(),
        1,
    );
    let f = s.net.add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    s.net.send_message(f, u64::MAX, Time::ZERO);
    s.net.run_until(Time::from_millis(1));
    assert!(s.net.flight_dumps().is_empty(), "clean run, no dumps");

    let sw = s.switch;
    s.net.switch_mut(sw).buffer.debug_set_occupied(123_456_789);
    s.net.audit_buffers_now();
    assert!(!s.net.audit().is_clean());
    let dumps = s.net.flight_dumps();
    assert!(!dumps.is_empty(), "violation produced no flight dump");
    assert!(
        dumps.iter().any(|d| d.node == sw),
        "dump names the offending switch"
    );
    let d = dumps.iter().find(|d| d.node == sw).unwrap();
    assert!(
        d.reason.contains("BufferConservation") || d.reason.contains("exceeds pool"),
        "reason carries the violation: {}",
        d.reason
    );
}

/// A congestion-control implementation that reports α and rates outside
/// the documented domains (α > 1, R_C > R_T).
struct BrokenCc {
    line: Bandwidth,
}

impl CongestionControl for BrokenCc {
    fn rate(&self) -> Bandwidth {
        self.line
    }
    fn name(&self) -> &'static str {
        "broken"
    }
    fn audit_info(&self) -> Option<CcAuditInfo> {
        Some(CcAuditInfo {
            rate: self.line,
            target: Bandwidth::gbps(1), // rate > target: ordering broken
            line: self.line,
            alpha: Some(2.5), // outside [0, 1]
        })
    }
}

/// An algorithm whose self-reported state leaves the DCQCN domains is
/// flagged the first time the host consults it.
#[test]
fn out_of_domain_cc_state_is_caught() {
    let mut s = star(
        2,
        LinkParams::default(),
        host_cfg(),
        SwitchConfig::paper_default(),
        1,
    );
    let f = s.net.add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, |l| {
        Box::new(BrokenCc { line: l })
    });
    s.net.send_message(f, 1_000_000, Time::ZERO);
    s.net.run_until(Time::from_millis(5));
    let v = s.net.audit().violations();
    assert!(!v.is_empty(), "bad CC state went unnoticed");
    assert!(v.iter().all(|v| v.kind == ViolationKind::CcDomain));
    assert!(v.iter().any(|v| v.context.contains("alpha")));
    assert!(v.iter().any(|v| v.context.contains("rate ordering")));
}

/// With PFC thresholds misconfigured far above the pool size, the switch
/// never pauses and must drop on a lossless class once the pool fills —
/// which the auditor reports as the contract violation it is.
#[test]
fn drop_on_lossless_class_is_caught() {
    use netsim::buffer::{BufferConfig, PfcThreshold};
    let mut cfg = SwitchConfig::paper_default();
    cfg.buffer = BufferConfig {
        total_bytes: 40_000, // tiny pool: fills within the first RTT
        headroom_bytes: 0,
        threshold: PfcThreshold::Static(u64::MAX), // never pause
        ..BufferConfig::trident2()
    };
    let mut s = star(4, LinkParams::default(), host_cfg(), cfg, 3);
    for i in 0..3 {
        let f = s.net.add_flow(s.hosts[i], s.hosts[3], DATA_PRIORITY, |l| {
            Box::new(NoCc::new(l))
        });
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(2));
    let audit = s.net.audit();
    assert!(!audit.is_clean(), "lossless drops went unnoticed");
    assert!(audit
        .violations()
        .iter()
        .any(|v| v.kind == ViolationKind::LosslessDrop));
    assert!(audit.report().contains("lossless"));
}
