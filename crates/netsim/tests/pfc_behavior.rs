//! Focused PFC mechanism tests: hop-by-hop propagation, drain/resume,
//! and per-priority-class isolation.

use netsim::cc::NoCc;
use netsim::host::HostConfig;
use netsim::network::NetworkBuilder;
use netsim::packet::DATA_PRIORITY;
use netsim::switch::SwitchConfig;
use netsim::units::{Bandwidth, Duration, Time};

fn host_cfg() -> HostConfig {
    HostConfig {
        cnp_interval: None,
        ..HostConfig::default()
    }
}

/// A chain H1 — S1 — S2 — H2 where the last hop is 10 G: backpressure
/// must propagate hop by hop all the way to the sender, losslessly.
#[test]
fn pause_cascades_up_a_chain() {
    let mut b = NetworkBuilder::new(1);
    let s1 = b.switch(SwitchConfig::paper_default());
    let s2 = b.switch(SwitchConfig::paper_default());
    let h1 = b.host(host_cfg());
    let h2 = b.host(host_cfg());
    let fast = Bandwidth::gbps(40);
    let slow = Bandwidth::gbps(10);
    let d = Duration::from_micros(1);
    b.connect(h1, s1, fast, d);
    b.connect(s1, s2, fast, d);
    b.connect(s2, h2, slow, d);
    let mut net = b.build();
    let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    net.send_message(f, u64::MAX, Time::ZERO);
    net.run_until(Time::from_millis(20));

    let st1 = net.switch_stats(net.switch(netsim::event::NodeId(s1.0)).id);
    let st2 = net.switch_stats(net.switch(netsim::event::NodeId(s2.0)).id);
    // S2 (owning the slow egress) pauses S1; S1 in turn pauses the host.
    assert!(st2.pause_tx > 0, "S2 paused its upstream");
    assert!(st1.pause_rx > 0, "S1 received those pauses");
    assert!(st1.pause_tx > 0, "S1 paused the sending host");
    assert_eq!(st1.drops_pool + st2.drops_pool, 0);
    assert_eq!(st1.drops_lossy + st2.drops_lossy, 0);
    // The flow is throttled to the slow link's payload rate.
    let gbps = net.flow_stats(f).delivered_bytes as f64 * 8.0 / 20e-3 / 1e9;
    assert!(
        (8.5..9.8).contains(&gbps),
        "paced to ~10G × payload fraction: {gbps:.2}"
    );
}

/// When the overload stops, RESUMEs release every hop and queued bytes
/// drain completely.
#[test]
fn queues_drain_after_resume() {
    let mut b = NetworkBuilder::new(2);
    let s1 = b.switch(SwitchConfig::paper_default());
    let s2 = b.switch(SwitchConfig::paper_default());
    let h1 = b.host(host_cfg());
    let h2 = b.host(host_cfg());
    let d = Duration::from_micros(1);
    b.connect(h1, s1, Bandwidth::gbps(40), d);
    b.connect(s1, s2, Bandwidth::gbps(40), d);
    b.connect(s2, h2, Bandwidth::gbps(10), d);
    let mut net = b.build();
    let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    // A finite burst: 4 MB at 40G into a 10G sink.
    net.send_message(f, 4_000_000, Time::ZERO);
    net.run_until(Time::from_millis(30));
    let st = net.flow_stats(f);
    assert_eq!(st.delivered_bytes, 4_000_000, "everything arrives");
    assert_eq!(st.completions.len(), 1);
    // All buffers are empty again.
    for id in [s1, s2] {
        let sw = net.switch(id);
        assert_eq!(sw.buffer.occupied(), 0, "switch {} drained", id.0);
    }
    let resumes = net.switch_stats(s1).resume_tx + net.switch_stats(s2).resume_tx;
    assert!(resumes > 0, "RESUMEs were sent");
}

/// PFC is per priority class: congestion on class 3 pauses class 3 only;
/// a class-4 flow sharing the same links keeps its full rate.
#[test]
fn priority_classes_are_isolated() {
    let mut b = NetworkBuilder::new(3);
    let s1 = b.switch(SwitchConfig::paper_default());
    let s2 = b.switch(SwitchConfig::paper_default());
    let d = Duration::from_micros(1);
    let g40 = Bandwidth::gbps(40);
    // Senders share the S1—S2 trunk; receivers hang off S2.
    let senders: Vec<_> = (0..3).map(|_| b.host(host_cfg())).collect();
    let victim_src = b.host(host_cfg());
    let r_congested = b.host(host_cfg());
    let r_victim = b.host(host_cfg());
    b.connect(s1, s2, Bandwidth::gbps(100), d); // trunk is not the issue
    for &h in senders.iter().chain([&victim_src]) {
        b.connect(h, s1, g40, d);
    }
    b.connect(r_congested, s2, g40, d);
    b.connect(r_victim, s2, g40, d);
    let mut net = b.build();
    // Class-3 incast (will be paused at S1's host ports eventually).
    let mut incast = Vec::new();
    for &h in &senders {
        let f = net.add_flow(h, r_congested, 3, |l| Box::new(NoCc::new(l)));
        net.send_message(f, u64::MAX, Time::ZERO);
        incast.push(f);
    }
    // Class-4 victim to its own receiver.
    let victim = net.add_flow(victim_src, r_victim, 4, |l| Box::new(NoCc::new(l)));
    net.send_message(victim, u64::MAX, Time::ZERO);
    net.run_until(Time::from_millis(20));

    let incast_total: f64 = incast
        .iter()
        .map(|&f| net.flow_stats(f).delivered_bytes as f64 * 8.0 / 20e-3 / 1e9)
        .sum();
    let victim_gbps = net.flow_stats(victim).delivered_bytes as f64 * 8.0 / 20e-3 / 1e9;
    assert!(incast_total < 40.0, "incast capped by its receiver");
    assert!(
        victim_gbps > 35.0,
        "class-4 victim keeps line rate: {victim_gbps:.1}"
    );
    assert!(net.switch_stats(s2).pause_tx > 0, "class 3 was paused");
}

/// RESUME hysteresis: PAUSE and RESUME alternate rather than flapping
/// per packet (2-MTU hysteresis).
#[test]
fn pause_resume_does_not_flap_per_packet() {
    let mut b = NetworkBuilder::new(4);
    let s1 = b.switch(SwitchConfig::paper_default());
    let h1 = b.host(host_cfg());
    let h2 = b.host(host_cfg());
    let d = Duration::from_micros(1);
    b.connect(h1, s1, Bandwidth::gbps(40), d);
    b.connect(h2, s1, Bandwidth::gbps(10), d);
    let mut net = b.build();
    let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    net.send_message(f, u64::MAX, Time::ZERO);
    net.run_until(Time::from_millis(20));
    let st = net.switch_stats(s1);
    let delivered_pkts = net.flow_stats(f).delivered_pkts;
    assert!(st.pause_tx > 0);
    // Far fewer control frames than data packets (hysteresis works).
    assert!(
        st.pause_tx + st.resume_tx < delivered_pkts / 2,
        "pause/resume {} + {} vs {} packets",
        st.pause_tx,
        st.resume_tx,
        delivered_pkts
    );
}
