//! Causal-tracing integration tests: the FCT decomposition identity,
//! congestion-tree attribution, and byte-stability of the exported
//! Chrome trace (golden file + rebuild determinism).

use netsim::cc::NoCc;
use netsim::host::HostConfig;
use netsim::network::{Network, NetworkBuilder};
use netsim::packet::{FlowId, DATA_PRIORITY};
use netsim::switch::SwitchConfig;
use netsim::telemetry::SpanState;
use netsim::units::{Bandwidth, Duration, Time};
use proptest::prelude::*;

fn host_cfg() -> HostConfig {
    HostConfig {
        cnp_interval: None,
        ..HostConfig::default()
    }
}

/// A 2-flow dumbbell: h1,h2 — s1 — s2 — h3,h4 with a 40 G trunk, both
/// flows sending one finite message. Returns the network and flow ids.
fn dumbbell(seed: u64, bytes_a: u64, bytes_b: u64) -> (Network, FlowId, FlowId) {
    let mut b = NetworkBuilder::new(seed);
    let s1 = b.switch(SwitchConfig::paper_default());
    let s2 = b.switch(SwitchConfig::paper_default());
    let h1 = b.host(host_cfg());
    let h2 = b.host(host_cfg());
    let h3 = b.host(host_cfg());
    let h4 = b.host(host_cfg());
    let g40 = Bandwidth::gbps(40);
    let d = Duration::from_micros(1);
    b.connect(h1, s1, g40, d);
    b.connect(h2, s1, g40, d);
    b.connect(s1, s2, g40, d);
    b.connect(h3, s2, g40, d);
    b.connect(h4, s2, g40, d);
    let mut net = b.build();
    net.enable_spans(4096);
    let fa = net.add_flow(h1, h3, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    let fb = net.add_flow(h2, h4, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    net.send_message(fa, bytes_a, Time::ZERO);
    net.send_message(fb, bytes_b, Time::from_micros(3));
    net.run_until(Time::from_millis(5));
    (net, fa, fb)
}

/// Every completed flow's span durations sum exactly to its measured FCT
/// (the decomposition identity the sanitize auditor enforces).
#[test]
fn span_durations_sum_to_fct() {
    let (net, fa, fb) = dumbbell(7, 100_000, 100_000);
    for f in [fa, fb] {
        assert_eq!(net.flow_stats(f).completions.len(), 1);
        let c = net.spans().completion(f).expect("completion snapshot");
        let sum: Duration = c.accum.iter().copied().sum();
        assert_eq!(sum, c.fct, "flow {}: spans must decompose the FCT", f.0);
        let measured = c.at - c.started;
        assert_eq!(c.fct, measured);
        // Two 40 G flows sharing a 40 G trunk cannot both serialize all
        // the time: some of each FCT is attributed beyond pure sending.
        assert!(c.accum[SpanState::Serializing as usize] > Duration::ZERO);
    }
}

/// Rebuilding the identical network from the identical seed yields a
/// byte-identical Chrome trace.
#[test]
fn chrome_trace_is_rebuild_deterministic() {
    let (net1, _, _) = dumbbell(7, 100_000, 100_000);
    let (net2, _, _) = dumbbell(7, 100_000, 100_000);
    assert_eq!(net1.chrome_trace().render(), net2.chrome_trace().render());
}

/// The exported trace matches the checked-in golden file byte for byte.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test -p netsim --test spans`.
#[test]
fn chrome_trace_matches_golden_file() {
    let (net, _, _) = dumbbell(7, 100_000, 100_000);
    let rendered = net.chrome_trace().render();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/dumbbell.trace.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "trace drifted from tests/golden/dumbbell.trace.json; \
         rerun with UPDATE_GOLDEN=1 if the change is intended"
    );
}

/// The exported trace is structurally a Chrome trace: metadata naming
/// every track, complete events, and flow-state slices.
#[test]
fn chrome_trace_has_expected_tracks() {
    let (net, fa, fb) = dumbbell(7, 100_000, 100_000);
    let s = net.chrome_trace().render();
    assert!(s.contains("\"displayTimeUnit\": \"ms\""));
    assert!(s.contains("\"process_name\""));
    assert!(s.contains("\"thread_name\""));
    for f in [fa, fb] {
        assert!(s.contains(&format!("\"flow {}\"", f.0)), "flow track named");
    }
    assert!(s.contains("\"serializing\""), "flow state slices present");
    assert!(s.contains("\"tx flow"), "per-hop tx slices present");
}

/// An incast through a slow sink produces a congestion tree rooted at
/// the congested switch port, with the pause-blocked senders as victims.
#[test]
fn congestion_tree_names_root_and_victims() {
    let mut b = NetworkBuilder::new(11);
    let s1 = b.switch(SwitchConfig::paper_default());
    let senders: Vec<_> = (0..3).map(|_| b.host(host_cfg())).collect();
    let sink = b.host(host_cfg());
    let d = Duration::from_micros(1);
    for &h in &senders {
        b.connect(h, s1, Bandwidth::gbps(40), d);
    }
    b.connect(sink, s1, Bandwidth::gbps(10), d);
    let mut net = b.build();
    net.enable_spans(4096);
    let flows: Vec<_> = senders
        .iter()
        .map(|&h| {
            let f = net.add_flow(h, sink, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
            net.send_message(f, u64::MAX, Time::ZERO);
            f
        })
        .collect();
    net.run_until(Time::from_millis(10));

    let tree = net.congestion_tree();
    assert!(!tree.roots.is_empty(), "a root port is identified");
    assert_eq!(tree.roots[0].node, s1, "the lone switch is the root");
    assert!(!tree.edges.is_empty(), "pause edges were folded in");
    let victims: Vec<_> = tree.victims.iter().map(|v| v.flow).collect();
    for f in &flows {
        assert!(victims.contains(f), "flow {} is a named victim", f.0);
        let bd = net.span_breakdown(*f).expect("tracked");
        assert!(
            bd[SpanState::PauseBlocked as usize] > Duration::ZERO,
            "incast senders spend time pause-blocked"
        );
    }
    // Victims carry the origin port of the PAUSE that blocked them.
    for v in &tree.victims {
        assert_eq!(v.origin.map(|(n, _)| n), Some(s1));
    }
}

proptest! {
    /// Property: for any single-message flow pair, the per-state span
    /// durations sum exactly to the measured FCT.
    #[test]
    fn prop_span_sum_equals_fct(
        seed in 1u64..64,
        kb_a in 1u64..120,
        kb_b in 1u64..120,
    ) {
        let (net, fa, fb) = dumbbell(seed, kb_a * 1000, kb_b * 1000);
        for f in [fa, fb] {
            prop_assert_eq!(net.flow_stats(f).completions.len(), 1);
            let c = net.spans().completion(f).expect("completion");
            let sum: Duration = c.accum.iter().copied().sum();
            prop_assert_eq!(sum, c.fct);
            prop_assert_eq!(c.fct, c.at - c.started);
        }
    }
}
