//! Differential test for the calendar-queue event core: random
//! interleavings of `schedule`/`pop`/`pop_batch` against a plain
//! binary-heap reference model, checking the exact `(time, seq)` pop
//! order contract the simulator's determinism rests on.

use netsim::event::{Event, EventQueue};
use netsim::units::Time;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The reference model: the old implementation, minus the payload. Pops
/// strictly by `(time, insertion seq)`.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(Time, u64)>>,
    seq: u64,
    now: Time,
}

impl HeapModel {
    fn schedule(&mut self, at: Time) -> u64 {
        assert!(at >= self.now);
        let s = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, s)));
        s
    }
    fn pop(&mut self) -> Option<(Time, u64)> {
        let Reverse((at, s)) = self.heap.pop()?;
        self.now = at;
        Some((at, s))
    }
}

/// Interprets one generated op against both queues. `Hook { id }` carries
/// the model's seq number through the real queue so pops can be compared
/// exactly.
fn apply_schedule(q: &mut EventQueue, m: &mut HeapModel, at: Time) {
    let id = m.schedule(at);
    q.schedule(at, Event::Hook { id: id as usize });
}

fn check_pop(q: &mut EventQueue, m: &mut HeapModel) {
    let got = q.pop().map(|(t, e)| match e {
        Event::Hook { id } => (t, id as u64),
        _ => unreachable!(),
    });
    assert_eq!(got, m.pop(), "pop order must match the heap model");
    if got.is_some() {
        assert_eq!(q.now(), m.now);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// Random schedule/pop interleavings — same-timestamp bursts,
    /// schedule-at-now, and far-future overflow times — pop identically
    /// to the reference heap.
    #[test]
    fn calendar_queue_matches_heap_model(
        ops in prop::collection::vec((0u8..6, 0u64..4_000_000), 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut m = HeapModel::default();
        for &(op, dt) in &ops {
            let now = q.now();
            match op {
                // Near/wheel range: within a few µs of now.
                0 | 1 => apply_schedule(&mut q, &mut m, now + netsim::units::Duration(dt)),
                // Same-timestamp burst: three events, one instant.
                2 => {
                    let at = now + netsim::units::Duration(dt);
                    for _ in 0..3 {
                        apply_schedule(&mut q, &mut m, at);
                    }
                }
                // Far future: past the wheel horizon (overflow bucket).
                3 => apply_schedule(
                    &mut q,
                    &mut m,
                    now + netsim::units::Duration(3_000_000_000 + dt * 1000),
                ),
                // Exactly now (allowed; must sort after everything
                // already popped, in seq order).
                4 => apply_schedule(&mut q, &mut m, now),
                _ => check_pop(&mut q, &mut m),
            }
        }
        // Drain both to the end: every remaining event pops identically.
        loop {
            let empty = q.is_empty();
            prop_assert_eq!(empty, m.heap.is_empty());
            check_pop(&mut q, &mut m);
            if empty {
                break;
            }
        }
    }

    /// `pop_batch` pops exactly the cohort repeated `pop` would, in the
    /// same order, and respects the `until` bound.
    #[test]
    fn pop_batch_matches_repeated_pop(
        ops in prop::collection::vec((0u8..4, 0u64..2_000_000), 1..100),
        until_us in 0u64..5000,
    ) {
        let mut q = EventQueue::new();
        let mut m = HeapModel::default();
        for &(op, dt) in &ops {
            let now = q.now();
            let at = match op {
                0 => now + netsim::units::Duration(dt),
                1 => now + netsim::units::Duration(dt / 1000), // dense ties
                2 => now + netsim::units::Duration(3_000_000_000 + dt), // overflow
                _ => now,
            };
            apply_schedule(&mut q, &mut m, at);
        }
        let until = Time::from_micros(until_us);
        let mut batch = Vec::new();
        while let Some(t) = q.pop_batch(until, &mut batch) {
            prop_assert!(t <= until);
            prop_assert_eq!(q.now(), t);
            prop_assert!(!batch.is_empty());
            for e in batch.drain(..) {
                let id = match e {
                    Event::Hook { id } => id as u64,
                    _ => unreachable!(),
                };
                prop_assert_eq!(m.pop(), Some((t, id)));
            }
        }
        // Whatever the batch loop left behind is strictly past `until`.
        while let Some((t, _)) = m.pop() {
            prop_assert!(t > until);
            q.pop().expect("real queue holds the tail too");
        }
        prop_assert!(q.is_empty());
    }
}
