//! ECMP path selection and the measurement infrastructure, end to end.

use netsim::cc::NoCc;
use netsim::event::PortId;
use netsim::host::HostConfig;
use netsim::network::NetworkBuilder;
use netsim::packet::{FlowId, DATA_PRIORITY};
use netsim::stats::SamplerConfig;
use netsim::switch::SwitchConfig;
use netsim::topology::{star, LinkParams};
use netsim::units::{Bandwidth, Duration, Time};

fn host_cfg() -> HostConfig {
    HostConfig {
        cnp_interval: None,
        ..HostConfig::default()
    }
}

/// Two equal-cost 40 G paths between edge switches: with enough flows,
/// ECMP uses both (aggregate exceeds one path's capacity).
#[test]
fn ecmp_uses_parallel_paths() {
    // a --- m1 --- b ;  a --- m2 --- b ; 4 hosts per side.
    let mut totals = Vec::new();
    for seed in 1..=4u64 {
        let mut bld = NetworkBuilder::new(seed);
        let a = bld.switch(SwitchConfig::paper_default());
        let b = bld.switch(SwitchConfig::paper_default());
        let m1 = bld.switch(SwitchConfig::paper_default());
        let m2 = bld.switch(SwitchConfig::paper_default());
        let d = Duration::from_micros(1);
        let g = Bandwidth::gbps(40);
        bld.connect(a, m1, g, d);
        bld.connect(a, m2, g, d);
        bld.connect(m1, b, g, d);
        bld.connect(m2, b, g, d);
        let srcs: Vec<_> = (0..4).map(|_| bld.host(host_cfg())).collect();
        let dsts: Vec<_> = (0..4).map(|_| bld.host(host_cfg())).collect();
        for &h in &srcs {
            bld.connect(h, a, g, d);
        }
        for &h in &dsts {
            bld.connect(h, b, g, d);
        }
        let mut net = bld.build();
        let flows: Vec<FlowId> = (0..4)
            .map(|i| net.add_flow(srcs[i], dsts[i], DATA_PRIORITY, |l| Box::new(NoCc::new(l))))
            .collect();
        for &f in &flows {
            net.send_message(f, u64::MAX, Time::ZERO);
        }
        net.run_until(Time::from_millis(10));
        let total: f64 = flows
            .iter()
            .map(|&f| net.flow_stats(f).delivered_bytes as f64 * 8.0 / 10e-3 / 1e9)
            .sum();
        totals.push(total);
    }
    // At least one seed spreads flows across both 40 G paths.
    let best = totals.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        best > 45.0,
        "aggregate exceeded one path's capacity for some draw: {totals:?}"
    );
}

/// The sampler produces well-formed series: strictly increasing times and
/// nondecreasing cumulative byte counts; the goodput helper agrees with
/// raw counters.
#[test]
fn sampler_series_are_well_formed() {
    let mut s = star(
        3,
        LinkParams::default(),
        host_cfg(),
        SwitchConfig::paper_default(),
        1,
    );
    let f = s.net.add_flow(s.hosts[0], s.hosts[2], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    s.net.send_message(f, u64::MAX, Time::ZERO);
    s.net.enable_sampling(
        Duration::from_micros(100),
        SamplerConfig {
            all_flows: true,
            queues: vec![(s.switch, PortId(2))],
            rate_flows: vec![f],
            ..SamplerConfig::default()
        },
    );
    let end = Time::from_millis(10);
    s.net.run_until(end);

    let series = s.net.flow_bytes_timeline(f).expect("sampled").series();
    assert!(series.times.windows(2).all(|w| w[0] < w[1]));
    assert!(series.values.windows(2).all(|w| w[0] <= w[1]));
    assert!(series.times.len() > 90, "one sample per 100 µs");

    // goodput over the full window ≈ delivered/duration.
    let g = s.net.goodput_gbps(f, Time::ZERO, end);
    let direct = s.net.flow_stats(f).delivered_bytes as f64 * 8.0 / 10e-3 / 1e9;
    assert!((g - direct).abs() < 0.5, "goodput {g:.2} vs {direct:.2}");

    // Queue track exists and stays tiny for a single flow.
    let q = s.net.queue_timeline(s.switch, PortId(2)).expect("sampled");
    assert!(q.count() > 0);
    assert!(q.max() < 20_000.0);

    // Rate track reports the line rate for an uncontrolled flow.
    let r = s.net.flow_rate_timeline(f).expect("sampled");
    for b in r.buckets() {
        let v = r.representative(&b);
        assert!((v - 40.0).abs() < 1e-6, "line rate, got {v}");
    }
}

/// Hooks fire at their scheduled time and can mutate the network
/// (starting a flow mid-run).
#[test]
fn hooks_start_flows_mid_run() {
    let mut s = star(
        3,
        LinkParams::default(),
        host_cfg(),
        SwitchConfig::paper_default(),
        1,
    );
    let f1 = s.net.add_flow(s.hosts[0], s.hosts[2], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    s.net.send_message(f1, u64::MAX, Time::ZERO);
    s.net.schedule_hook(
        Time::from_millis(5),
        Box::new(|net| {
            // Pull host ids back out of the network.
            let src = netsim::event::NodeId(2);
            let dst = netsim::event::NodeId(3);
            let f2 = net.add_flow(src, dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
            net.send_message(f2, 1_000_000, Time::ZERO);
        }),
    );
    s.net.run_until(Time::from_millis(10));
    // The hook-created flow is FlowId(1) and completed its transfer.
    let st = s.net.flow_stats(FlowId(1));
    assert_eq!(st.delivered_bytes, 1_000_000);
    assert_eq!(st.completions.len(), 1);
    assert!(st.completions[0].at >= Time::from_millis(5));
}

/// Mixed link speeds within one topology serialize correctly (10/40/100G).
#[test]
fn mixed_speed_links() {
    let mut b = NetworkBuilder::new(9);
    let sw = b.switch(SwitchConfig::paper_default());
    let h10 = b.host(host_cfg());
    let h40 = b.host(host_cfg());
    let h100 = b.host(host_cfg());
    let sink = b.host(host_cfg());
    let d = Duration::from_micros(1);
    b.connect(h10, sw, Bandwidth::gbps(10), d);
    b.connect(h40, sw, Bandwidth::gbps(40), d);
    b.connect(h100, sw, Bandwidth::gbps(100), d);
    b.connect(sink, sw, Bandwidth::gbps(100), d);
    let mut net = b.build();
    let flows = [(h10, 10.0), (h40, 40.0), (h100, 100.0)].map(|(h, expect)| {
        let f = net.add_flow(h, sink, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        net.send_message(f, u64::MAX, Time::ZERO);
        (f, expect)
    });
    net.run_until(Time::from_millis(10));
    // Aggregate demand 150 > 100G sink: everyone is throttled, but the
    // 10G host can never exceed its own line rate.
    let g10 = net.flow_stats(flows[0].0).delivered_bytes as f64 * 8.0 / 10e-3 / 1e9;
    assert!(g10 <= 10.0 * 0.97 + 0.5, "10G host capped: {g10:.1}");
    let total: f64 = flows
        .iter()
        .map(|&(f, _)| net.flow_stats(f).delivered_bytes as f64 * 8.0 / 10e-3 / 1e9)
        .sum();
    assert!(total < 100.0, "sink capped: {total:.1}");
    assert!(total > 85.0, "sink well used: {total:.1}");
}
