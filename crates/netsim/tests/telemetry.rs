//! End-to-end telemetry: a real congested run natively produces the
//! paper's measurables through the metrics registry, the JSON report is
//! deterministic, and QP teardown dumps the flight recorder.

use netsim::cc::NoCc;
use netsim::host::HostConfig;
use netsim::packet::DATA_PRIORITY;
use netsim::prelude::{FaultConfig, FaultPlan};
use netsim::switch::SwitchConfig;
use netsim::topology::{star, LinkParams};
use netsim::trace::TraceKind;
use netsim::units::{Duration, Time};

fn host_cfg() -> HostConfig {
    HostConfig {
        cnp_interval: None,
        ..HostConfig::default()
    }
}

/// A 3-to-1 incast under PFC populates the paper's measurables — pause
/// frames, queue-depth samples, completions — with no sampler plumbing.
#[test]
fn congested_run_populates_the_registry() {
    let mut s = star(
        4,
        LinkParams::default(),
        host_cfg(),
        SwitchConfig::paper_default(),
        7,
    );
    for i in 0..3 {
        let f = s.net.add_flow(s.hosts[i], s.hosts[3], DATA_PRIORITY, |l| {
            Box::new(NoCc::new(l))
        });
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    s.net.run_until(Time::from_millis(5));

    assert!(s.net.metric("forwarded") > 1_000, "data flowed");
    assert!(s.net.metric("pause_tx") > 0, "the incast paused");
    assert!(s.net.metric("resume_tx") > 0, "and resumed");
    assert_eq!(s.net.metric("drops_pool"), 0, "lossless: nothing dropped");
    assert_eq!(s.net.metric("no_such_counter"), 0, "unknown names read 0");

    let report = s.net.telemetry_report().render();
    for key in [
        "\"queue_depth_bytes\"",
        "\"pause_duration_us\"",
        "\"fct_us\"",
        "\"goodput_gbps\"",
        "\"events_executed\"",
    ] {
        assert!(report.contains(key), "report is missing {key}");
    }
    // Rendering is a pure function of the run.
    assert_eq!(report, s.net.telemetry_report().render());
}

/// Message completions feed the completion counter and the FCT histogram.
#[test]
fn completions_and_fct_are_observed() {
    let mut s = star(
        2,
        LinkParams::default(),
        host_cfg(),
        SwitchConfig::paper_default(),
        1,
    );
    let f = s.net.add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    s.net.send_message(f, 1_000_000, Time::ZERO);
    s.net.send_message(f, 500_000, Time::from_micros(500));
    s.net.run_until(Time::from_millis(5));
    assert_eq!(s.net.metric("completions"), 2, "both messages finished");
    let report = s.net.telemetry_report().render();
    assert!(report.contains("\"fct_us\""));
}

/// Tearing a QP down (transport retries exhausted against a dead link)
/// dumps the sender's flight-recorder ring, and the ring holds the
/// timeout trail that led to the teardown.
#[test]
fn qp_teardown_dumps_the_flight_recorder() {
    let mut s = star(
        2,
        LinkParams::default(),
        HostConfig {
            rto: Duration::from_micros(500),
            max_retries: 2,
            ..host_cfg()
        },
        SwitchConfig::paper_default(),
        3,
    );
    s.net.enable_flight_recorder(64);
    let f = s.net.add_flow(s.hosts[0], s.hosts[1], DATA_PRIORITY, |l| {
        Box::new(NoCc::new(l))
    });
    s.net.send_message(f, u64::MAX, Time::ZERO);
    // Kill the receiver's access link with no failover: the sender
    // black-holes, backs off, and exhausts its retry budget.
    let link = s
        .net
        .link_between(s.switch, s.hosts[1])
        .expect("access link");
    let plan = FaultPlan::new().link_down(Time::from_micros(200), link);
    s.net.install_faults(
        &plan,
        FaultConfig {
            failover: false,
            ..FaultConfig::default()
        },
    );
    s.net.run_until(Time::from_millis(20));

    assert_eq!(s.net.metric("qp_teardowns"), 1, "the QP tore down");
    assert!(s.net.flow_stats(f).aborted);
    let dumps = s.net.flight_dumps();
    assert_eq!(dumps.len(), 1, "teardown produced exactly one dump");
    let d = &dumps[0];
    assert_eq!(d.node, s.hosts[0], "the sender's ring was dumped");
    assert!(d.reason.contains("qp_teardown"), "reason: {}", d.reason);
    assert!(
        d.events.iter().any(|e| e.kind == TraceKind::Timeout),
        "the ring holds the timeout trail"
    );
}
