//! Fault injection and graceful degradation, end to end: route failover
//! vs. black-holed QPs, exponential RTO backoff, the PFC storm watchdog,
//! and go-back-N recovery from injected bit errors.

use netsim::cc::NoCc;
use netsim::faults::{FaultConfig, FaultPlan};
use netsim::host::HostConfig;
use netsim::network::NetworkBuilder;
use netsim::packet::DATA_PRIORITY;
use netsim::switch::{PfcWatchdogConfig, SwitchConfig};
use netsim::topology::{clos_testbed, LinkParams};
use netsim::trace::TraceKind;
use netsim::units::{Bandwidth, Duration, Time};
use proptest::prelude::*;

fn host_cfg() -> HostConfig {
    HostConfig {
        cnp_interval: None,
        ..HostConfig::default()
    }
}

/// The headline acceptance scenario: a Clos fabric link dies mid-run.
/// With failover the affected flows reroute onto the surviving ECMP
/// member and recover; with failover disabled they keep hashing onto the
/// dead next-hop, exhaust their transport retries, and abort.
fn clos_link_down_run(failover: bool) -> (usize, Vec<u64>, Vec<u64>) {
    let mut tb = clos_testbed(
        2,
        LinkParams::default(),
        HostConfig {
            cnp_interval: None,
            rto: Duration::from_micros(500),
            max_retries: 4,
            ..HostConfig::default()
        },
        SwitchConfig::paper_default(),
        7,
    );
    // Eight inter-pod flows rack 0 → rack 3; distinct flow ids spread
    // over both of T1's uplinks (and both spines) via ECMP.
    let mut flows = Vec::new();
    for i in 0..8 {
        let src = tb.hosts[0][i % 2];
        let dst = tb.hosts[3][(i / 2) % 2];
        let f = tb
            .net
            .add_flow(src, dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        tb.net.send_message(f, u64::MAX, Time::ZERO);
        flows.push(f);
    }
    let t1_l1 = tb.net.link_between(tb.tors[0], tb.leaves[0]).unwrap();
    // The down window outlasts the abort schedule: with rto = 500 µs and
    // max_retries = 4 the fifth (fatal) timer fires at ~10 ms, so a
    // black-holed QP is torn down before the link returns at 12 ms.
    let plan = FaultPlan::new()
        .link_down(Time::from_millis(2), t1_l1)
        .link_up(Time::from_millis(12), t1_l1);
    tb.net.install_faults(
        &plan,
        FaultConfig {
            failover,
            ..FaultConfig::default()
        },
    );
    tb.net.run_until(Time::from_millis(2));
    let at_down: Vec<u64> = flows
        .iter()
        .map(|&f| tb.net.flow_stats(f).delivered_bytes)
        .collect();
    tb.net.run_until(Time::from_millis(16));
    let at_end: Vec<u64> = flows
        .iter()
        .map(|&f| tb.net.flow_stats(f).delivered_bytes)
        .collect();
    let aborts = flows
        .iter()
        .filter(|&&f| tb.net.flow_stats(f).aborted)
        .count();
    assert_eq!(tb.net.fault_stats().transitions, 2, "down then up");
    if failover {
        assert!(
            tb.net.fault_stats().reroutes >= 2,
            "failover recomputed routes on both transitions"
        );
    } else {
        assert_eq!(tb.net.fault_stats().reroutes, 0);
    }
    (aborts, at_down, at_end)
}

#[test]
fn link_down_with_failover_recovers_without_aborts() {
    let (aborts, at_down, at_end) = clos_link_down_run(true);
    assert_eq!(aborts, 0, "failover keeps every QP alive");
    for (i, (&before, &after)) in at_down.iter().zip(&at_end).enumerate() {
        assert!(
            after > before + 1_000_000,
            "flow {i} kept making progress after the failure ({before} → {after})"
        );
    }
}

#[test]
fn link_down_without_failover_exhausts_retries() {
    let (aborts, at_down, at_end) = clos_link_down_run(false);
    assert!(
        aborts > 0,
        "some flows stay hashed onto the dead next-hop and abort"
    );
    assert!(aborts < 8, "flows hashed onto the surviving uplink live on");
    // Aggregate goodput stays finite and well-defined even with dead QPs.
    let total: u64 = at_end.iter().sum();
    assert!(total > at_down.iter().sum::<u64>());
}

/// A receiver goes dark (its access link dies, no failover possible for a
/// single-homed host): the sender's retransmit schedule must space out
/// exponentially (1, 2, 4, 8, 8, … × RTO) and the QP must tear down after
/// `max_retries`, never to time out again.
#[test]
fn rto_backoff_spaces_out_and_qp_tears_down() {
    let mut b = NetworkBuilder::new(11);
    let s1 = b.switch(SwitchConfig::paper_default());
    let h1 = b.host(HostConfig {
        cnp_interval: None,
        rto: Duration::from_micros(200),
        ..HostConfig::default()
    });
    let h2 = b.host(host_cfg());
    let d = Duration::from_micros(1);
    b.connect(h1, s1, Bandwidth::gbps(40), d);
    let access = b.connect(h2, s1, Bandwidth::gbps(40), d);
    let mut net = b.build();
    net.enable_trace(100_000);
    let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    net.send_message(f, u64::MAX, Time::ZERO);
    // Kill the receiver's access link just after the flow starts; disable
    // failover so the switch keeps forwarding into the void (the drops
    // are fault-tagged, so even sanitized runs stay clean).
    let plan = FaultPlan::new().link_down(Time::from_micros(100), access);
    net.install_faults(
        &plan,
        FaultConfig {
            failover: false,
            ..FaultConfig::default()
        },
    );
    net.run_until(Time::from_millis(20));

    let st = net.flow_stats(f);
    assert!(st.aborted, "retry budget exhausted tears the QP down");
    assert_eq!(
        st.timeouts,
        u64::from(HostConfig::default().max_retries),
        "exactly max_retries retransmit attempts before teardown"
    );

    let fires: Vec<Time> = net
        .trace()
        .of_kind(TraceKind::Timeout)
        .iter()
        .filter(|e| e.flow == f)
        .map(|e| e.at)
        .collect();
    assert_eq!(fires.len(), 7);
    let gaps: Vec<Duration> = fires.windows(2).map(|w| w[1] - w[0]).collect();
    let rto = Duration::from_micros(200);
    // The k-th timeout waits 2^(k−1) × RTO, capped at 8×.
    let expect: Vec<Duration> = [1u64, 2, 4, 8, 8, 8]
        .iter()
        .map(|&k| rto.saturating_mul(k))
        .collect();
    assert_eq!(gaps, expect, "backoff schedule 1, 2, 4, 8, 8, … × RTO");

    // Teardown is final: no retransmit timer survives the abort.
    let timeouts_at_abort = st.timeouts;
    net.run_until(Time::from_millis(40));
    assert_eq!(net.flow_stats(f).timeouts, timeouts_at_abort);
    assert!(net.fault_stats().link_drops > 0);
}

/// A malfunctioning NIC pause-storms its access link. Without a watchdog
/// the switch egress port freezes for the rest of the run (the simulator
/// models PAUSE as level-triggered, and a RESUME never comes). With the
/// watchdog, the port ignores PAUSE after `threshold` and delivery
/// continues at a bounded duty cycle, then recovers fully once the storm
/// ends.
fn pause_storm_run(watchdog: Option<PfcWatchdogConfig>) -> (u64, netsim::stats::SwitchStats) {
    let mut b = NetworkBuilder::new(5);
    let mut cfg = SwitchConfig::paper_default();
    cfg.watchdog = watchdog;
    let s1 = b.switch(cfg);
    let sender = b.host(host_cfg());
    let storm = b.host(host_cfg());
    let d = Duration::from_micros(1);
    b.connect(sender, s1, Bandwidth::gbps(40), d);
    b.connect(storm, s1, Bandwidth::gbps(40), d);
    let mut net = b.build();
    let f = net.add_flow(sender, storm, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    net.send_message(f, u64::MAX, Time::ZERO);
    let plan = FaultPlan::new().pause_storm(
        storm,
        DATA_PRIORITY,
        Time::from_millis(1),
        Time::from_millis(6),
        Duration::from_micros(20),
    );
    net.install_faults(&plan, FaultConfig::default());
    net.run_until(Time::from_millis(10));
    assert!(
        net.fault_stats().storm_pauses > 100,
        "storm kept refreshing"
    );
    (net.flow_stats(f).delivered_bytes, net.switch_stats(s1))
}

#[test]
fn pause_storm_watchdog_bounds_the_damage() {
    let (frozen_bytes, frozen_stats) = pause_storm_run(None);
    let wd = PfcWatchdogConfig {
        threshold: Duration::from_micros(200),
        recovery: Duration::from_micros(800),
    };
    let (guarded_bytes, guarded_stats) = pause_storm_run(Some(wd));

    assert_eq!(frozen_stats.watchdog_trips, 0);
    assert!(guarded_stats.watchdog_trips >= 2, "watchdog kept tripping");
    assert!(guarded_stats.watchdog_restores >= 1, "and kept recovering");
    // 10 ms at 40 Gbps is ~48 MB of payload; the frozen run only gets the
    // first millisecond, the guarded run most of the window.
    assert!(
        guarded_bytes > 3 * frozen_bytes,
        "watchdog bounds the loss: {guarded_bytes} vs {frozen_bytes} bytes"
    );
}

/// Injected bit errors drop frames on a lossless class; go-back-N
/// retransmission still completes the message, deterministically.
#[test]
fn bit_errors_are_recovered_by_go_back_n() {
    let run = || {
        let mut b = NetworkBuilder::new(3);
        let s1 = b.switch(SwitchConfig::paper_default());
        let h1 = b.host(HostConfig {
            cnp_interval: None,
            rto: Duration::from_millis(1),
            ..HostConfig::default()
        });
        let h2 = b.host(host_cfg());
        let d = Duration::from_micros(1);
        let noisy = b.connect(h1, s1, Bandwidth::gbps(40), d);
        b.connect(h2, s1, Bandwidth::gbps(40), d);
        let mut net = b.build();
        let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        net.send_message(f, 2_000_000, Time::ZERO);
        let plan = FaultPlan::new().bit_error(Time::ZERO, noisy, 0.01);
        net.install_faults(&plan, FaultConfig::default());
        net.run_until(Time::from_millis(50));
        let st = net.flow_stats(f).clone();
        (st, net.fault_stats())
    };
    let (st, faults) = run();
    assert_eq!(st.delivered_bytes, 2_000_000, "message completes");
    assert_eq!(st.completions.len(), 1);
    assert!(!st.aborted);
    assert!(
        faults.crc_drops > 0,
        "the link really was corrupting frames"
    );
    assert!(
        st.retx_pkts > 0 || st.timeouts > 0,
        "recovery actually exercised the transport"
    );
    // Same seeds, same corruption, bit-identical outcome.
    let (st2, faults2) = run();
    assert_eq!(st.completions[0].at, st2.completions[0].at);
    assert_eq!(faults.crc_drops, faults2.crc_drops);
}

/// ECN misconfiguration: a switch silently stops marking mid-run.
#[test]
fn ecn_off_stops_marking_at_that_switch() {
    let mk = |misconfigure: bool| {
        let mut b = NetworkBuilder::new(9);
        let red = netsim::ecn::RedConfig {
            kmin_bytes: 5_000,
            kmax_bytes: 200_000,
            pmax: 0.01,
        };
        let s1 = b.switch(SwitchConfig::paper_default().with_red(red));
        let h1 = b.host(host_cfg());
        let h2 = b.host(host_cfg());
        let d = Duration::from_micros(1);
        b.connect(h1, s1, Bandwidth::gbps(40), d);
        b.connect(h2, s1, Bandwidth::gbps(10), d);
        let mut net = b.build();
        let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
        net.send_message(f, u64::MAX, Time::ZERO);
        if misconfigure {
            let plan = FaultPlan::new().ecn_off(Time::from_millis(2), s1);
            net.install_faults(&plan, FaultConfig::default());
        }
        net.run_until(Time::from_millis(2));
        let marks_early = net.switch_stats(s1).ecn_marks;
        net.run_until(Time::from_millis(10));
        (marks_early, net.switch_stats(s1).ecn_marks)
    };
    let (healthy_early, healthy_late) = mk(false);
    assert!(healthy_early > 0, "congested queue marks");
    assert!(healthy_late > healthy_early, "and keeps marking");
    let (miscfg_early, miscfg_late) = mk(true);
    assert!(miscfg_early > 0);
    assert_eq!(
        miscfg_late, miscfg_early,
        "after EcnOff the switch never marks again"
    );
}

/// A fault plan leaves the pre-fault portion of a run untouched: the
/// dedicated bit-error RNG stream must not perturb RED draws or ECMP.
#[test]
fn installing_a_future_fault_does_not_disturb_the_past() {
    let run = |with_plan: bool| {
        let mut tb = clos_testbed(
            2,
            LinkParams::default(),
            host_cfg(),
            SwitchConfig::paper_default(),
            21,
        );
        let f = tb
            .net
            .add_flow(tb.hosts[0][0], tb.hosts[3][0], DATA_PRIORITY, |l| {
                Box::new(NoCc::new(l))
            });
        tb.net.send_message(f, u64::MAX, Time::ZERO);
        if with_plan {
            let link = tb.net.link_between(tb.tors[0], tb.leaves[0]).unwrap();
            // Scheduled far beyond the horizon: must change nothing.
            let plan = FaultPlan::new().link_down(Time::from_millis(500), link);
            tb.net.install_faults(&plan, FaultConfig::default());
        }
        tb.net.run_until(Time::from_millis(3));
        tb.net.flow_stats(f).delivered_bytes
    };
    assert_eq!(run(false), run(true));
}

/// `link_between` resolves fabric links in either endpoint order, and
/// administrative toggling round-trips.
#[test]
fn link_lookup_and_admin_toggle() {
    let mut tb = clos_testbed(
        1,
        LinkParams::default(),
        host_cfg(),
        SwitchConfig::paper_default(),
        1,
    );
    let a = tb.net.link_between(tb.tors[0], tb.leaves[0]).unwrap();
    let b = tb.net.link_between(tb.leaves[0], tb.tors[0]).unwrap();
    assert_eq!(a, b);
    assert!(tb.net.link_between(tb.tors[0], tb.spines[0]).is_none());
    assert!(tb.net.link_is_up(a));
    tb.net.set_link_state(a, false);
    assert!(!tb.net.link_is_up(a));
    tb.net.set_link_state(a, false); // idempotent
    assert_eq!(tb.net.fault_stats().transitions, 1);
    tb.net.set_link_state(a, true);
    assert!(tb.net.link_is_up(a));
    assert_eq!(tb.net.fault_stats().transitions, 2);
}

/// The watchdog is armed by switch-received PAUSE state, so a stray
/// restore event for an untripped port must be a no-op.
#[test]
fn watchdog_restore_without_trip_is_harmless() {
    let mut b = NetworkBuilder::new(2);
    let mut cfg = SwitchConfig::paper_default();
    cfg.watchdog = Some(PfcWatchdogConfig::default());
    let s1 = b.switch(cfg);
    let h1 = b.host(host_cfg());
    let h2 = b.host(host_cfg());
    let d = Duration::from_micros(1);
    b.connect(h1, s1, Bandwidth::gbps(40), d);
    b.connect(h2, s1, Bandwidth::gbps(10), d);
    let mut net = b.build();
    let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    net.send_message(f, u64::MAX, Time::ZERO);
    net.run_until(Time::from_millis(20));
    // Congestion PFC (pause/resume cycles with RESUMEs actually arriving)
    // must never trip the watchdog.
    let st = net.switch_stats(s1);
    assert!(st.pause_tx > 0, "there was PFC activity");
    assert!(st.resume_tx > 0, "with real resumes");
    assert_eq!(st.watchdog_trips, 0, "normal PFC never trips the watchdog");
    assert!(net.flow_stats(f).delivered_bytes > 10_000_000);
}

/// RTO backoff must *reset* once the flow makes progress again: after a
/// post-timeout delivery the next outage restarts the 1, 2, 4, … × RTO
/// schedule rather than continuing from the escalated multiplier.
#[test]
fn rto_backoff_resets_after_successful_delivery() {
    let rto = Duration::from_micros(200);
    let mut b = NetworkBuilder::new(13);
    let s1 = b.switch(SwitchConfig::paper_default());
    let h1 = b.host(HostConfig {
        cnp_interval: None,
        rto,
        ..HostConfig::default()
    });
    let h2 = b.host(host_cfg());
    let d = Duration::from_micros(1);
    b.connect(h1, s1, Bandwidth::gbps(40), d);
    let access = b.connect(h2, s1, Bandwidth::gbps(40), d);
    let mut net = b.build();
    net.enable_trace(100_000);
    let f = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    net.send_message(f, u64::MAX, Time::ZERO);
    // Two outages of the receiver's access link, separated by a healthy
    // window long enough for delivery (and the backoff reset) to happen.
    // No failover: a single-homed host has no alternate path.
    let plan = FaultPlan::new()
        .link_down(Time::from_micros(100), access)
        .link_up(Time::from_micros(1_800), access)
        .link_down(Time::from_micros(3_000), access)
        .link_up(Time::from_micros(6_000), access);
    net.install_faults(
        &plan,
        FaultConfig {
            failover: false,
            ..FaultConfig::default()
        },
    );
    net.run_until(Time::from_millis(10));

    let boundary = Time::from_micros(3_000);
    let fires: Vec<Time> = net
        .trace()
        .of_kind(TraceKind::Timeout)
        .iter()
        .filter(|e| e.flow == f)
        .map(|e| e.at)
        .collect();
    let first: Vec<Time> = fires.iter().copied().filter(|&t| t < boundary).collect();
    let second: Vec<Time> = fires.iter().copied().filter(|&t| t >= boundary).collect();
    assert!(
        first.len() >= 3,
        "first outage escalates through several timeouts: {first:?}"
    );
    let gaps: Vec<Duration> = first.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(
        gaps.windows(2).all(|g| g[1] >= g[0]),
        "backoff escalated during the first outage: {gaps:?}"
    );
    assert!(
        gaps.last().unwrap() >= &rto.saturating_mul(2),
        "the multiplier actually grew past 1×: {gaps:?}"
    );
    // The healthy window delivered bytes, so the second outage restarts
    // the schedule: its first two timeouts are 1 × RTO apart (continued
    // escalation would make the gap ≥ 4 × RTO).
    assert!(
        second.len() >= 2,
        "second outage produced timeouts: {second:?}"
    );
    assert_eq!(
        second[1] - second[0],
        rto,
        "backoff restarted at 1 × RTO after recovery"
    );
    assert!(!net.flow_stats(f).aborted, "the flow survived both outages");
    assert!(
        net.flow_stats(f).delivered_bytes > 0,
        "delivery resumed in between"
    );
}

/// The watchdog must re-arm after restoring: a second storm on the same
/// port and class trips it again, and both trips and both restores are
/// counted — in the switch stats and in telemetry.
#[test]
fn watchdog_retrips_after_second_storm_and_counts_twice() {
    // Recovery is long enough that the restore lands *after* the storm's
    // final PAUSE frame: trip + recovery > storm end. PAUSE is modelled
    // level-triggered, so a trailing PAUSE applied after the restore
    // would (correctly) re-trip the watchdog within one storm, which is
    // not the re-arm path this test pins down.
    let wd = PfcWatchdogConfig {
        threshold: Duration::from_micros(500),
        recovery: Duration::from_micros(2_000),
    };
    let mut b = NetworkBuilder::new(17);
    let mut cfg = SwitchConfig::paper_default();
    cfg.watchdog = Some(wd);
    let s1 = b.switch(cfg);
    let sender = b.host(host_cfg());
    let storm = b.host(host_cfg());
    let d = Duration::from_micros(1);
    b.connect(sender, s1, Bandwidth::gbps(40), d);
    b.connect(storm, s1, Bandwidth::gbps(40), d);
    let mut net = b.build();
    let f = net.add_flow(sender, storm, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
    net.send_message(f, u64::MAX, Time::ZERO);
    // Two short storms. Each lasts 1.5 ms: long enough to trip a 500 µs
    // watchdog exactly once (the 1 ms recovery restore lands after the
    // storm has ended, so no double trip within one storm). The 5 ms gap
    // lets the port restore and the fabric drain before the second hit.
    let plan = FaultPlan::new()
        .pause_storm(
            storm,
            DATA_PRIORITY,
            Time::from_millis(1),
            Time::from_micros(2_500),
            Duration::from_micros(20),
        )
        .pause_storm(
            storm,
            DATA_PRIORITY,
            Time::from_micros(7_500),
            Time::from_millis(9),
            Duration::from_micros(20),
        );
    net.install_faults(&plan, FaultConfig::default());
    net.run_until(Time::from_millis(15));

    let st = net.switch_stats(s1);
    assert_eq!(st.watchdog_trips, 2, "one trip per storm, counted twice");
    assert_eq!(st.watchdog_restores, 2, "and one restore per storm");
    // Telemetry agrees with the per-switch stats.
    assert_eq!(net.metric("watchdog_trips"), 2);
    assert_eq!(net.metric("watchdog_restores"), 2);
    // After the last restore the port is healthy again: traffic flows.
    let delivered_at_end = net.flow_stats(f).delivered_bytes;
    net.run_until(Time::from_millis(17));
    assert!(
        net.flow_stats(f).delivered_bytes > delivered_at_end,
        "the restored port keeps forwarding"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Any plan accepted by `FaultPlan::validate` replays
    /// deterministically: two simulations of the same topology, workload
    /// and plan agree event-for-event and byte-for-byte.
    #[test]
    fn accepted_plans_replay_deterministically(
        seed in 0u64..1_000,
        flap_at in 200u64..3_000,
        down_for in 100u64..900,
        storm_from in 1_000u64..4_000,
        storm_len in 500u64..2_000,
        err_ppm in 1u64..50_000,
    ) {
        let run = || {
            let mut b = NetworkBuilder::new(seed);
            let mut cfg = SwitchConfig::paper_default();
            cfg.watchdog = Some(PfcWatchdogConfig::default());
            let s1 = b.switch(cfg);
            let h1 = b.host(host_cfg());
            let h2 = b.host(host_cfg());
            let h3 = b.host(host_cfg());
            let d = Duration::from_micros(1);
            let l1 = b.connect(h1, s1, Bandwidth::gbps(40), d);
            b.connect(h2, s1, Bandwidth::gbps(40), d);
            b.connect(h3, s1, Bandwidth::gbps(40), d);
            let mut net = b.build();
            let f1 = net.add_flow(h1, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
            let f2 = net.add_flow(h3, h2, DATA_PRIORITY, |l| Box::new(NoCc::new(l)));
            net.send_message(f1, 500_000, Time::ZERO);
            net.send_message(f2, 500_000, Time::from_micros(50));
            let plan = FaultPlan::new()
                .link_flap(
                    l1,
                    Time::from_micros(flap_at),
                    Duration::from_micros(down_for),
                    Duration::from_micros(down_for + 200),
                    2,
                )
                .bit_error(Time::from_micros(100), l1, err_ppm as f64 / 1e6)
                .bit_error(Time::from_micros(5_000), l1, 0.0)
                .pause_storm(
                    h2,
                    DATA_PRIORITY,
                    Time::from_micros(storm_from),
                    Time::from_micros(storm_from + storm_len),
                    Duration::from_micros(20),
                );
            assert!(plan.validate().is_ok());
            net.install_faults(&plan, FaultConfig::default());
            net.run_until(Time::from_millis(12));
            (
                net.events_executed(),
                net.flow_stats(f1).delivered_bytes,
                net.flow_stats(f2).delivered_bytes,
                net.metric("watchdog_trips"),
                net.fault_stats().transitions,
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b, "replay must be exact");
    }
}
