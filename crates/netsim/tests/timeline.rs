//! Timeline engine properties the PR contract pins: bounded memory over
//! arbitrary horizons, exact sum conservation through merges, record
//! order never changing the stored state, sampling integrated with
//! [`netsim::network::Network`], and the dashboard's golden bytes.

use netsim::cc::NoCc;
use netsim::event::PortId;
use netsim::host::HostConfig;
use netsim::packet::DATA_PRIORITY;
use netsim::stats::SamplerConfig;
use netsim::switch::SwitchConfig;
use netsim::telemetry::timeline::{Timeline, TrackKind};
use netsim::topology::{star, LinkParams, Star};
use netsim::units::{Duration, Time};
use proptest::prelude::*;

/// A full second of picosecond-resolution sampling lands in ≤ 4096
/// buckets: memory is `O(budget)` regardless of horizon, and the exact
/// aggregates survive every halving on the way there.
#[test]
fn long_horizon_memory_stays_bounded() {
    let mut tl = Timeline::new(TrackKind::Gauge, 1.0);
    let n: u64 = 200_000;
    // 5 µs cadence out to t = 1 s (1e12 ps) — far past the initial
    // 4096-slot grid, so the width doubles many times mid-run.
    for i in 0..n {
        tl.record(Time(i * 5_000_000), i % 1_000);
    }
    assert!(
        tl.capacity_used() <= tl.budget(),
        "{} buckets exceed the {} budget",
        tl.capacity_used(),
        tl.budget()
    );
    assert_eq!(tl.count(), n);
    let expected: u64 = (0..n).map(|i| i % 1_000).sum();
    assert_eq!(tl.sum(), expected as f64, "halvings never lose samples");
    let bucket_total: f64 = tl.buckets().map(|b| b.sum).sum();
    assert_eq!(bucket_total, expected as f64, "per-bucket sums telescope");
    assert!(tl.bucket_width().0.is_power_of_two());
    assert_eq!(tl.last_time(), Time((n - 1) * 5_000_000));
}

/// Every bucket aggregate a [`Timeline`] stores, bit for bit.
fn dump(tl: &Timeline) -> Vec<(u64, u64, u64, u64, u64, u64)> {
    tl.buckets()
        .map(|b| {
            (
                b.start.0,
                b.count,
                b.sum.to_bits(),
                b.min.to_bits(),
                b.max.to_bits(),
                b.last.0,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The stored state is a pure function of the sample *multiset*:
    /// recording in reverse produces bit-identical buckets and summary,
    /// and no merge sequence loses any of the sum.
    #[test]
    fn record_order_never_changes_state_and_sums_conserve(
        samples in prop::collection::vec((0u64..2_000_000_000, 0u64..1_000_000), 1..200),
        budget in 2usize..64,
    ) {
        let mut fwd = Timeline::with_budget(TrackKind::Gauge, 1.0, budget);
        for &(t, v) in &samples {
            fwd.record(Time(t), v);
        }
        let mut rev = Timeline::with_budget(TrackKind::Gauge, 1.0, budget);
        for &(t, v) in samples.iter().rev() {
            rev.record(Time(t), v);
        }
        prop_assert_eq!(dump(&fwd), dump(&rev));
        prop_assert_eq!(
            fwd.summary_json().render(),
            rev.summary_json().render()
        );
        // Σ before == Σ after all merges, exactly (integer arithmetic).
        let expected: u128 = samples.iter().map(|&(_, v)| v as u128).sum();
        prop_assert_eq!(fwd.sum(), expected as f64);
        let bucket_total: f64 = fwd.buckets().map(|b| b.sum).sum();
        prop_assert_eq!(bucket_total, expected as f64);
        prop_assert!(fwd.capacity_used() <= budget.max(2));
    }
}

/// A deterministic 2:1 incast fixture with queues, rates, bytes and
/// counter tracks all sampled.
fn fixture() -> (Star, PortId) {
    let mut s = star(
        3,
        LinkParams::default(),
        HostConfig {
            cnp_interval: None,
            ..HostConfig::default()
        },
        SwitchConfig::paper_default(),
        11,
    );
    for i in 0..2 {
        let f = s.net.add_flow(s.hosts[i], s.hosts[2], DATA_PRIORITY, |l| {
            Box::new(NoCc::new(l))
        });
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    let port = PortId(2);
    s.net.enable_spans(1024);
    s.net.enable_sampling(
        Duration::from_micros(20),
        SamplerConfig {
            all_flows: true,
            queues: vec![(s.switch, port)],
            counters: vec!["forwarded", "pause_tx"],
            ..SamplerConfig::default()
        },
    );
    s.net.run_until(Time::from_millis(2));
    (s, port)
}

/// Counter tracks record per-interval deltas whose sum telescopes back
/// to the counter itself — nothing double-counted, nothing lost — and
/// the registry-backed tracks all populate from a real run.
#[test]
fn network_sampling_conserves_counters() {
    let (s, port) = fixture();
    let fwd = s.net.timelines.by_name("rate/forwarded").expect("track");
    assert!(fwd.count() > 0, "sampler ran");
    let total = s.net.metric("forwarded");
    // The track holds every delta up to the last sampling tick; packets
    // forwarded after that tick are not yet recorded.
    assert!(fwd.sum() <= total as f64);
    assert!(
        fwd.sum() >= total as f64 * 0.95,
        "track sum {} far below counter {}",
        fwd.sum(),
        total
    );

    let q = s.net.queue_timeline(s.switch, port).expect("queue track");
    // ~100 samples at 20 µs over 2 ms; the run's congestion shows up.
    assert!(q.count() >= 99, "one gauge sample per tick");
    assert!(q.max() > 0.0, "the incast queued bytes");

    // The report embeds the timeline summaries and midpoint percentiles.
    let report = s.net.telemetry_report().render();
    assert!(report.contains("\"timelines\""));
    assert!(report.contains("\"rate/forwarded\""));
    assert!(report.contains("\"p50_mid\""));
    assert!(report.contains("\"p99_mid\""));
}

/// The dashboard fixture's exact bytes. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p netsim --test timeline`.
#[test]
fn dashboard_matches_golden_file() {
    let (s, _) = fixture();
    let rendered = s.net.dashboard("timeline fixture: 2:1 incast").render();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dashboard.html");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "dashboard drifted from tests/golden/dashboard.html; \
         rerun with UPDATE_GOLDEN=1 if the change is intended"
    );
}

/// The dashboard shows every panel family the fixture populates.
#[test]
fn dashboard_has_expected_panels() {
    let (s, _) = fixture();
    let dash = s.net.dashboard("fixture");
    let html = dash.render();
    for panel in [
        "queue depth",
        "goodput",
        "control frames / interval",
        "span attribution",
        "counters",
    ] {
        assert!(html.contains(panel), "missing panel {panel}");
    }
    assert!(html.contains("<svg"), "charts rendered");
    assert!(!html.contains("<script"), "dependency-free: no scripts");
    // Same run, same bytes.
    assert_eq!(html, s.net.dashboard("fixture").render());
}
