#![warn(missing_docs)]

//! # criterion (offline shim)
//!
//! The container has no crates.io access, so the real `criterion` cannot
//! be fetched. This crate mirrors the subset of its API the `bench` crate
//! uses — `Criterion`, benchmark groups, `iter`/`iter_batched`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock harness.
//!
//! Reported numbers are `[min median max]` per-iteration times across
//! `sample_size` samples, plus elements/sec when a throughput is set. No
//! statistical outlier analysis, no HTML reports — just enough to track
//! hot-path regressions offline.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    cfg: Config,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            cfg: Config {
                warm_up: Duration::from_millis(300),
                measurement: Duration::from_secs(1),
                sample_size: 10,
            },
        }
    }
}

impl Criterion {
    /// Sets the warm-up time before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.cfg.warm_up = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.cfg.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.cfg, None, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.cfg, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.cfg, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Identifies a parameterized benchmark, e.g. `churn/1024`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements (e.g. events).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim treats all variants alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    mode: Mode,
    /// Accumulated (total time, iterations) per sample.
    samples: Vec<(Duration, u64)>,
}

enum Mode {
    /// Estimate iteration count, warm up.
    Calibrate {
        budget: Duration,
        estimated: Option<u64>,
    },
    /// Run `iters` iterations and record the total.
    Measure { iters: u64 },
}

impl Bencher {
    /// Times `f`, called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Calibrate {
                budget,
                ref mut estimated,
            } => {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < budget || n == 0 {
                    std::hint::black_box(f());
                    n += 1;
                }
                *estimated = Some(n);
            }
            Mode::Measure { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                self.samples.push((start.elapsed(), iters));
            }
        }
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Calibrate {
                budget,
                ref mut estimated,
            } => {
                let mut n = 0u64;
                let mut spent = Duration::ZERO;
                while spent < budget || n == 0 {
                    let input = setup();
                    let t = Instant::now();
                    std::hint::black_box(routine(input));
                    spent += t.elapsed();
                    n += 1;
                }
                *estimated = Some(n);
            }
            Mode::Measure { iters } => {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let input = setup();
                    let t = Instant::now();
                    std::hint::black_box(routine(input));
                    total += t.elapsed();
                }
                self.samples.push((total, iters));
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, cfg: Config, tp: Option<Throughput>, mut f: F) {
    // Calibration pass doubles as warm-up: run for warm_up time, counting
    // how many iterations fit.
    let mut b = Bencher {
        mode: Mode::Calibrate {
            budget: cfg.warm_up,
            estimated: None,
        },
        samples: Vec::new(),
    };
    f(&mut b);
    let warm_iters = match b.mode {
        Mode::Calibrate { estimated, .. } => estimated.unwrap_or(1).max(1),
        Mode::Measure { .. } => unreachable!(),
    };
    // Split the measurement budget across samples.
    let per_sample = (warm_iters as f64 * cfg.measurement.as_secs_f64()
        / cfg.warm_up.as_secs_f64().max(1e-9)
        / cfg.sample_size as f64)
        .ceil()
        .max(1.0) as u64;

    let mut b = Bencher {
        mode: Mode::Measure { iters: per_sample },
        samples: Vec::with_capacity(cfg.sample_size),
    };
    for _ in 0..cfg.sample_size {
        f(&mut b);
    }

    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|(d, n)| d.as_secs_f64() / (*n).max(1) as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter.first().copied().unwrap_or(0.0);
    let med = per_iter[per_iter.len() / 2];
    let max = per_iter.last().copied().unwrap_or(0.0);
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(med),
        fmt_time(max)
    );
    if let Some(tp) = tp {
        let (work, unit) = match tp {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        if med > 0.0 {
            println!("{:<40} thrpt: {:.3e} {unit}", "", work / med);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Declares a benchmark entry point: either
/// `criterion_group!(name, target, ...)` or the
/// `criterion_group! { name = ...; config = ...; targets = ... }` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3)
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = tiny();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = tiny();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter_batched(
                || vec![n; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
