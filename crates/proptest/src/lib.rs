#![warn(missing_docs)]

//! # proptest (offline shim)
//!
//! This container builds with no access to crates.io, so the real
//! `proptest` cannot be fetched. This crate is a drop-in stand-in for the
//! *subset* of proptest's API the workspace uses:
//!
//! * the `proptest! { ... }` macro (with an optional leading
//!   `#![proptest_config(...)]`),
//! * `prop_assert!` / `prop_assert_eq!`,
//! * range strategies (`0u64..100`, `0.0f64..=1.0`), tuples of ranges, and
//!   `prop::collection::vec(strategy, size_range)`,
//! * `ProptestConfig::with_cases(n)`.
//!
//! Semantics differ from the real crate in two deliberate ways:
//!
//! * **no shrinking** — a failing case prints its generated inputs so it
//!   can be pinned as an explicit regression test instead,
//! * **fixed seeding** — the generator is seeded from the test's name, so
//!   every run explores the same case sequence and failures reproduce
//!   without a persistence file. `.proptest-regressions` files are kept in
//!   the tree for the day the real crate is swapped back in, but are not
//!   read by this shim; pin their shrunken cases as plain `#[test]`s.

pub mod strategy;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// The real proptest defaults to 256 cases; 64 keeps the
    /// simulation-heavy suites fast while still exploring broadly.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator seeded from the test name: every run of a given
/// test explores the identical case sequence.
pub fn test_rng(test_name: &str) -> strategy::TestRng {
    // FNV-1a over the name, mixed into a fixed session constant.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    strategy::TestRng::new(h ^ 0x9E37_79B9_7F4A_7C15)
}

/// The glob-import surface test files use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Namespace mirror of proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Asserts a condition inside a `proptest!` body.
///
/// The real macro returns a `TestCaseError`; the shim panics, which the
/// per-case harness catches to report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr);
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body)
                    );
                    if let Err(__panic) = __result {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs: {}",
                            stringify!($name), __case + 1, __config.cases, __inputs
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn vec_respects_size_and_element_bounds(v in prop::collection::vec(0u8..4, 1..30)) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_compose(pair in prop::collection::vec((0usize..3, 10u64..20), 1..10)) {
            for (a, b) in pair {
                prop_assert!(a < 3);
                prop_assert!((10..20).contains(&b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_attribute_parses(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn same_test_name_same_stream() {
        let mut a = crate::test_rng("abc");
        let mut b = crate::test_rng("abc");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
