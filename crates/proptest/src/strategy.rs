//! Value-generation strategies: the shim's answer to proptest's `Strategy`.
//!
//! A strategy is anything that can produce a value from the deterministic
//! [`TestRng`]. Ranges, inclusive ranges, tuples of strategies, and
//! [`vec`] collections are supported — the subset the workspace's property
//! tests actually use.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 — the same tiny generator `netsim::rng` uses (duplicated
/// here so the shim depends on nothing).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Produces values of `Value` from the deterministic test generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // next_f64 is in [0, 1); scale by the next representable step so
        // the upper endpoint is reachable.
        let (lo, hi) = (*self.start(), *self.end());
        let u = rng.below(1 << 53) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/a)
    (A/a, B/b)
    (A/a, B/b, C/c)
    (A/a, B/b, C/c, D/d)
    (A/a, B/b, C/c, D/d, E/e)
    (A/a, B/b, C/c, D/d, E/e, F/f)
}

/// Length bounds for [`vec`], mirroring proptest's `SizeRange` conversions.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// A strategy generating `Vec`s of `elem`-generated values.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: SizeRange,
}

/// Generates vectors whose length is drawn from `len` and whose elements
/// come from `elem` — proptest's `prop::collection::vec`.
pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        len: len.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.min + rng.below((self.len.max - self.len.min + 1) as u64) as usize;
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_cover_and_bound() {
        let mut rng = TestRng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = (0u64..10).sample(&mut rng);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = TestRng::new(2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..200 {
            match (1u64..=3).sample(&mut rng) {
                1 => lo_seen = true,
                3 => hi_seen = true,
                2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_ranges_bound() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = (2.0f64..5.0).sample(&mut rng);
            assert!((2.0..5.0).contains(&v));
            let w = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::new(4);
        for _ in 0..500 {
            let v = vec(0u8..4, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
