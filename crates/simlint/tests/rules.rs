//! Fixture-based rule tests: every rule has a bad fixture it fires on
//! and a good fixture it stays silent on, plus false-positive fixtures
//! for string/raw-string literals, suppression scoping, and
//! `#[cfg(test)]` region tracking.

use simlint::{analyze_sources, Analysis, Config};

fn analyze_one(rel: &str, src: &str) -> Analysis {
    analyze_sources(&[(rel.to_owned(), src.to_owned())], &Config::default())
}

fn rules_fired(a: &Analysis) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = a.findings.iter().map(|f| f.rule).collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn map_iter_fires_on_bad_and_not_on_good() {
    let bad = analyze_one("map_iter_bad.rs", include_str!("fixtures/map_iter_bad.rs"));
    assert_eq!(rules_fired(&bad), vec!["map-iter"], "{:#?}", bad.findings);
    assert_eq!(bad.findings.len(), 2, "method form + for-in form");

    let good = analyze_one(
        "map_iter_good.rs",
        include_str!("fixtures/map_iter_good.rs"),
    );
    assert!(good.findings.is_empty(), "{:#?}", good.findings);
}

#[test]
fn map_iter_sees_through_type_aliases() {
    let bad = analyze_one("map_iter_bad.rs", include_str!("fixtures/map_iter_bad.rs"));
    // The `routes` receiver is typed via the `RouteTable = HashMap` alias.
    assert!(
        bad.findings.iter().any(|f| f.msg.contains("routes")),
        "{:#?}",
        bad.findings
    );
}

#[test]
fn counter_arith_fires_on_bad_and_not_on_good() {
    let bad = analyze_one(
        "counter_arith_bad.rs",
        include_str!("fixtures/counter_arith_bad.rs"),
    );
    assert_eq!(
        rules_fired(&bad),
        vec!["counter-arith"],
        "{:#?}",
        bad.findings
    );
    assert_eq!(bad.findings.len(), 2, "+= and bare -");

    let good = analyze_one(
        "counter_arith_good.rs",
        include_str!("fixtures/counter_arith_good.rs"),
    );
    assert!(good.findings.is_empty(), "{:#?}", good.findings);
}

#[test]
fn counter_arith_scope_is_computed_from_field_decls() {
    // Same tokens, but no u64 counter field declared: out of scope.
    let a = analyze_one(
        "free.rs",
        "pub fn f(occupied: u32) -> u32 { occupied + 1 }\n",
    );
    assert!(a.findings.is_empty(), "{:#?}", a.findings);
}

#[test]
fn float_cmp_fires_on_bad_and_not_on_good() {
    // Stats-file scoping comes from the path, not the fixture name.
    let bad = analyze_one(
        "crates/netsim/src/stats.rs",
        include_str!("fixtures/float_cmp_bad.rs"),
    );
    assert_eq!(rules_fired(&bad), vec!["float-cmp"], "{:#?}", bad.findings);
    assert_eq!(bad.findings.len(), 2, "partial_cmp().unwrap() + literal ==");

    let good = analyze_one(
        "crates/netsim/src/stats.rs",
        include_str!("fixtures/float_cmp_good.rs"),
    );
    assert!(good.findings.is_empty(), "{:#?}", good.findings);

    // Outside stats code only the partial_cmp().unwrap() half applies.
    let elsewhere = analyze_one(
        "crates/netsim/src/other.rs",
        include_str!("fixtures/float_cmp_bad.rs"),
    );
    assert_eq!(elsewhere.findings.len(), 1, "{:#?}", elsewhere.findings);
}

#[test]
fn hot_unwrap_fires_on_bad_and_not_on_good() {
    let bad = analyze_one(
        "hot_unwrap_bad.rs",
        include_str!("fixtures/hot_unwrap_bad.rs"),
    );
    assert_eq!(rules_fired(&bad), vec!["hot-unwrap"], "{:#?}", bad.findings);
    let f = &bad.findings[0];
    assert!(
        f.chain
            .as_deref()
            .unwrap_or("")
            .starts_with("Network::run_until"),
        "chain should start at the root: {:?}",
        f.chain
    );

    let good = analyze_one(
        "hot_unwrap_good.rs",
        include_str!("fixtures/hot_unwrap_good.rs"),
    );
    assert!(
        good.findings.is_empty(),
        "cold unwrap + hot let-else must be clean: {:#?}",
        good.findings
    );
}

#[test]
fn metric_lookup_fires_on_bad_and_not_on_good() {
    let bad = analyze_one(
        "metric_lookup_bad.rs",
        include_str!("fixtures/metric_lookup_bad.rs"),
    );
    assert_eq!(
        rules_fired(&bad),
        vec!["metric-lookup"],
        "{:#?}",
        bad.findings
    );
    assert_eq!(bad.findings.len(), 2, "registration form + by-name form");

    let good = analyze_one(
        "metric_lookup_good.rs",
        include_str!("fixtures/metric_lookup_good.rs"),
    );
    assert!(
        good.findings.is_empty(),
        "handle access + cold registration must be clean: {:#?}",
        good.findings
    );
}

#[test]
fn determinism_taint_fires_with_call_chain() {
    let bad = analyze_one(
        "determinism_taint_bad.rs",
        include_str!("fixtures/determinism_taint_bad.rs"),
    );
    assert_eq!(
        rules_fired(&bad),
        vec!["determinism-taint"],
        "{:#?}",
        bad.findings
    );
    assert_eq!(bad.findings.len(), 2, "Instant + env read");
    for f in &bad.findings {
        assert_eq!(
            f.chain.as_deref(),
            Some("Network::run_until → Network::tick"),
            "{f:#?}"
        );
    }

    let good = analyze_one(
        "determinism_taint_good.rs",
        include_str!("fixtures/determinism_taint_good.rs"),
    );
    assert!(
        good.findings.is_empty(),
        "virtual clock + cold env read must be clean: {:#?}",
        good.findings
    );
}

#[test]
fn hot_alloc_fires_on_bad_and_not_on_good() {
    let bad = analyze_one(
        "hot_alloc_bad.rs",
        include_str!("fixtures/hot_alloc_bad.rs"),
    );
    assert_eq!(rules_fired(&bad), vec!["hot-alloc"], "{:#?}", bad.findings);
    let msgs: Vec<&str> = bad.findings.iter().map(|f| f.msg.as_str()).collect();
    for needle in ["Vec::new", "format!", "Box::new", ".clone()", ".collect()"] {
        assert!(
            msgs.iter().any(|m| m.contains(needle)),
            "missing {needle}: {msgs:#?}"
        );
    }

    let good = analyze_one(
        "hot_alloc_good.rs",
        include_str!("fixtures/hot_alloc_good.rs"),
    );
    assert!(
        good.findings.is_empty(),
        "scratch reuse + cold setup must be clean: {:#?}",
        good.findings
    );
}

#[test]
fn shard_safety_inventories_shared_state() {
    let bad = analyze_one(
        "shard_safety_bad.rs",
        include_str!("fixtures/shard_safety_bad.rs"),
    );
    assert_eq!(
        rules_fired(&bad),
        vec!["shard-safety"],
        "{:#?}",
        bad.findings
    );
    let msgs: Vec<&str> = bad.findings.iter().map(|f| f.msg.as_str()).collect();
    for needle in ["static mut", "thread_local!", "`Rc`", "`RefCell`"] {
        assert!(
            msgs.iter().any(|m| m.contains(needle)),
            "missing {needle}: {msgs:#?}"
        );
    }

    let good = analyze_one(
        "shard_safety_good.rs",
        include_str!("fixtures/shard_safety_good.rs"),
    );
    assert!(good.findings.is_empty(), "{:#?}", good.findings);
}

#[test]
fn string_and_raw_string_literals_cannot_false_positive() {
    let a = analyze_one(
        "string_literal_fp.rs",
        include_str!("fixtures/string_literal_fp.rs"),
    );
    assert!(
        a.findings.is_empty(),
        "literal contents are opaque to every rule: {:#?}",
        a.findings
    );
}

#[test]
fn suppression_matches_rule_names_exactly() {
    let a = analyze_one(
        "suppress_scoping.rs",
        include_str!("fixtures/suppress_scoping.rs"),
    );
    // += 2 (prefix "counter" no longer matches) and += 4 (wrong rule)
    // survive; += 1 (exact), += 3 (all), += 5 (comma list) are allowed.
    assert_eq!(a.findings.len(), 2, "{:#?}", a.findings);
    assert_eq!(a.suppressed_inline, 3);
    let lines: Vec<u32> = a.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![9, 10]);
}

#[test]
fn cfg_test_exemption_ends_at_module_close() {
    let a = analyze_one(
        "cfg_test_scoping.rs",
        include_str!("fixtures/cfg_test_scoping.rs"),
    );
    assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
    assert_eq!(
        a.findings[0].line, 16,
        "only the post-test-module production code fires"
    );
}
