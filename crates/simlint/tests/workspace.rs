//! Whole-workspace checks: the computed hot set covers the legacy
//! hard-coded lists, the checked-in baseline covers every finding, and
//! JSON output is byte-stable.

use simlint::{analyze_sources, collect_workspace_sources, render_report};
use simlint::{Baseline, Config};
use std::path::PathBuf;

/// The hot-file list the pre-engine scanner hard-coded. The computed
/// reachability set must remain a superset: losing any of these files
/// would silently disable hot-path rules where they used to apply.
const LEGACY_HOT_FILES: [&str; 9] = [
    "crates/netsim/src/event.rs",
    "crates/netsim/src/slab.rs",
    "crates/netsim/src/host.rs",
    "crates/netsim/src/switch.rs",
    "crates/netsim/src/port.rs",
    "crates/netsim/src/faults.rs",
    "crates/netsim/src/telemetry/registry.rs",
    "crates/netsim/src/telemetry/recorder.rs",
    "crates/netsim/src/telemetry/spans.rs",
];

/// Likewise for the legacy metric-lookup file list.
const LEGACY_METRIC_FILES: [&str; 8] = [
    "crates/netsim/src/event.rs",
    "crates/netsim/src/slab.rs",
    "crates/netsim/src/host.rs",
    "crates/netsim/src/switch.rs",
    "crates/netsim/src/port.rs",
    "crates/netsim/src/faults.rs",
    "crates/netsim/src/network.rs",
    "crates/netsim/src/telemetry/spans.rs",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn computed_hot_set_covers_legacy_lists() {
    let sources = collect_workspace_sources(&workspace_root()).expect("collect");
    let a = analyze_sources(&sources, &Config::default());
    for legacy in LEGACY_HOT_FILES.iter().chain(LEGACY_METRIC_FILES.iter()) {
        assert!(
            a.hot_files.iter().any(|f| f == legacy),
            "computed hot set lost legacy hot file {legacy}; hot set: {:#?}",
            a.hot_files
        );
    }
}

/// The sampler tick runs inside the dispatch loop: the timeline engine
/// it records into is hot code, and the hot-path rules (no allocation,
/// no by-name metric lookups) must keep applying to it. Losing this
/// file from the reachability set would silently un-lint the sampling
/// path.
#[test]
fn sampling_path_is_in_the_hot_set() {
    let sources = collect_workspace_sources(&workspace_root()).expect("collect");
    let a = analyze_sources(&sources, &Config::default());
    for file in [
        "crates/netsim/src/telemetry/timeline.rs",
        "crates/netsim/src/network.rs",
    ] {
        assert!(
            a.hot_files.iter().any(|f| f == file),
            "sampling-path file {file} fell out of the hot set; hot set: {:#?}",
            a.hot_files
        );
    }
}

#[test]
fn workspace_is_clean_under_the_checked_in_baseline() {
    let root = workspace_root();
    let sources = collect_workspace_sources(&root).expect("collect");
    let a = analyze_sources(&sources, &Config::default());
    let baseline_text = std::fs::read_to_string(root.join("simlint_baseline.json"))
        .expect("simlint_baseline.json is checked in at the workspace root");
    let baseline = Baseline::from_json(&baseline_text).expect("baseline parses");
    let r = baseline.ratchet(&a.findings);
    assert!(
        r.new.is_empty(),
        "unsuppressed findings beyond baseline:\n{:#?}",
        r.new
    );
    // Every baseline entry carries a real justification.
    for e in &baseline.entries {
        assert!(
            !e.justification.is_empty() && e.justification != "unreviewed",
            "baseline entry {}/{} needs a justification",
            e.rule,
            e.file
        );
    }
}

#[test]
fn json_report_is_byte_stable_across_runs() {
    let root = workspace_root();
    let sources = collect_workspace_sources(&root).expect("collect");
    let run = || {
        let a = analyze_sources(&sources, &Config::default());
        let r = Baseline::default().ratchet(&a.findings);
        render_report(&a, &r)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "report must be byte-identical across runs");
    assert!(first.contains("\"schema\": \"simlint-v2\""));
}

#[test]
fn shard_report_lists_ctx_threading_functions() {
    let sources = collect_workspace_sources(&workspace_root()).expect("collect");
    let a = analyze_sources(&sources, &Config::default());
    let report = a.shard_report.pretty();
    // The dispatch loop threads &mut Ctx through node handlers — the
    // sharding work-list must see it.
    assert!(
        report.contains("ctx_mut_fns"),
        "shard report missing ctx_mut_fns: {report}"
    );
    assert!(
        report.contains("Host::receive"),
        "Host::receive threads &mut Ctx: {report}"
    );
}
