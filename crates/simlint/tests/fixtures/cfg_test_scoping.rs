pub struct Buffer {
    pub occupied: u64,
}

#[cfg(test)]
mod tests {
    pub fn t(b: &mut super::Buffer) {
        b.occupied += 1;
    }
}

// The test exemption ends at the test module's closing brace: this
// module is production code again.
mod after {
    pub fn prod(b: &mut super::Buffer) {
        b.occupied += 1;
    }
}
