pub struct Buffer {
    occupied: u64,
}

impl Buffer {
    pub fn f(&mut self) {
        self.occupied += 1; // simlint: allow(counter-arith)
        // simlint: allow(counter)
        self.occupied += 2;
        self.occupied += 4; // simlint: allow(map-iter)
        self.occupied += 3; // simlint: allow(all)
        // simlint: allow(map-iter, counter-arith)
        self.occupied += 5;
    }
}
