pub struct Network {
    m: Metrics,
    drops: u32,
}

pub struct Metrics;

impl Metrics {
    pub fn counter(&self, _name: &str) -> u64 {
        0
    }

    pub fn inc(&mut self, _id: u32) {}
}

impl Network {
    pub fn run_until(&mut self) {
        // Handle-based access: the id was resolved at registration.
        self.m.inc(self.drops);
    }
}

/// Registration happens once at setup — cold, so string keys are fine.
pub fn register(m: &Metrics) -> u64 {
    m.counter("drops")
}
