use std::collections::HashMap;

pub type RouteTable = HashMap<u32, u32>;

pub struct Tables {
    routes: RouteTable,
    index: HashMap<u32, u32>,
}

impl Tables {
    pub fn sum(&self) -> u32 {
        let mut total = 0;
        for (_k, v) in self.routes.iter() {
            total += v;
        }
        for _v in &self.index {
            total += 1;
        }
        total
    }
}
