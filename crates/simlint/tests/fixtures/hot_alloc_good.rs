pub struct Network {
    scratch: Vec<u32>,
}

impl Network {
    pub fn run_until(&mut self) {
        self.step();
    }

    fn step(&mut self) {
        // Reuse the preallocated scratch buffer: no steady-state allocation.
        self.scratch.clear();
        self.scratch.push(1);
    }
}

/// Setup code (not dispatch-reachable) may allocate freely.
pub fn build() -> Vec<u32> {
    let mut v = Vec::with_capacity(64);
    v.push(1);
    v
}
