//! Needles inside string literals, raw strings, and comments must never
//! fire: the lexer makes literal contents opaque.

pub struct Network;

impl Network {
    pub fn run_until(&mut self) {
        // Comment bait: .unwrap() and Instant::now() and occupied += 1
        let _doc = "call .unwrap() then .counter(\"drops\") and occupied += 1";
        let _raw = r#"
            Instant::now() inside a raw string
            for (_k, v) in routes.iter() {}
            static mut GLOBAL: u64 = 0;
            format!("allocation bait")
        "#;
    }
}
