pub struct Network;

impl Network {
    pub fn run_until(&mut self) {
        self.tick();
    }

    fn tick(&mut self) {
        let _started = std::time::Instant::now();
        let _threads = std::env::var("REPRO_THREADS");
    }
}
