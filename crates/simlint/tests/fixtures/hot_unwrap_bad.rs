pub struct Network {
    q: Queue,
}

pub struct Queue;

impl Queue {
    pub fn head(&self) -> Option<u32> {
        None
    }
}

impl Network {
    pub fn run_until(&mut self) {
        self.step();
    }

    fn step(&mut self) {
        let _ = self.q.head().unwrap();
    }
}
