pub fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    if (xs[0] - 0.5).abs() < 1e-9 {
        return 0.5;
    }
    xs[xs.len() / 2]
}
