pub struct Buffer {
    occupied: u64,
}

impl Buffer {
    pub fn admit(&mut self, n: u64) {
        self.occupied = checked_accum(self.occupied, n);
    }

    pub fn drain(&mut self, n: u64) {
        self.occupied = checked_drain(self.occupied, n);
    }
}

fn checked_accum(a: u64, b: u64) -> u64 {
    a.checked_add(b).expect("counter overflow")
}

fn checked_drain(a: u64, b: u64) -> u64 {
    a.checked_sub(b).expect("counter underflow")
}
