pub struct Network {
    cfg: Cfg,
}

pub struct Cfg;

impl Network {
    pub fn run_until(&mut self) {
        self.burn();
    }

    fn burn(&mut self) {
        let _v: Vec<u32> = Vec::new();
        let _s = format!("event {}", 1);
        let _b = Box::new(1u32);
        let _c = self.cfg.clone();
        let _ids: Vec<u32> = [1u32, 2].iter().copied().collect::<Vec<u32>>();
    }
}
