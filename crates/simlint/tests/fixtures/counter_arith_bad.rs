pub struct Buffer {
    occupied: u64,
}

impl Buffer {
    pub fn admit(&mut self, n: u64) {
        self.occupied += n;
    }

    pub fn drain(&mut self, n: u64) {
        self.occupied = self.occupied - n;
    }
}
