use std::collections::{BTreeMap, HashMap};

pub struct Tables {
    routes: BTreeMap<u32, u32>,
    lookup: HashMap<u32, u32>,
}

impl Tables {
    pub fn sum(&self) -> u32 {
        // BTreeMap iteration is ordered — fine.
        let mut total = 0;
        for (_k, v) in self.routes.iter() {
            total += v;
        }
        // Point lookups on a HashMap are fine; only iteration is banned.
        total += self.lookup.get(&1).copied().unwrap_or(0);
        total
    }
}
