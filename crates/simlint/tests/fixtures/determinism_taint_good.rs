pub struct Network {
    now: u64,
}

impl Network {
    pub fn run_until(&mut self) {
        self.tick();
    }

    fn tick(&mut self) {
        // Virtual clock only: runs are a pure function of config + seed.
        self.now += 1;
    }
}

/// Cold configuration code (never dispatch-reachable) may read the
/// environment.
pub fn thread_count() -> usize {
    std::env::var("REPRO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
