pub static mut EVENT_COUNT: u64 = 0;

thread_local! {
    static SCRATCH: u64 = 0;
}

pub struct Network {
    shared: std::rc::Rc<std::cell::RefCell<u64>>,
}

impl Network {
    pub fn run_until(&mut self) {}
}
