pub struct Network {
    m: Metrics,
}

pub struct Metrics;

impl Metrics {
    pub fn counter(&self, _name: &str) -> u64 {
        0
    }

    pub fn counter_value(&self, _name: &str) -> u64 {
        0
    }
}

impl Network {
    pub fn run_until(&mut self) {
        let _ = self.m.counter("drops");
        let _ = self.m.counter_value("drops");
    }
}
