/// Per-shard state is owned, not shared: no Rc/RefCell/static mut.
pub struct Network {
    count: u64,
}

impl Network {
    pub fn run_until(&mut self) {
        self.count += 1;
    }
}
