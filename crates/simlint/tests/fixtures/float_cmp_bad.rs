pub fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if xs[0] == 0.5 {
        return 0.5;
    }
    xs[xs.len() / 2]
}
