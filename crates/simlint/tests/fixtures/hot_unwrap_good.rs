pub struct Network {
    q: Queue,
}

pub struct Queue;

impl Queue {
    pub fn head(&self) -> Option<u32> {
        None
    }
}

impl Network {
    pub fn run_until(&mut self) {
        self.step();
    }

    fn step(&mut self) {
        // Degrade path instead of panicking on the hot path.
        let Some(_v) = self.q.head() else {
            return;
        };
    }
}

/// Cold code (not dispatch-reachable) may unwrap.
pub fn cli_parse(arg: Option<u32>) -> u32 {
    arg.unwrap()
}
