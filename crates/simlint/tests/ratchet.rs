//! Ratchet behavior end-to-end: a baselined finding is tolerated, a
//! deliberately introduced finding fails, counts only go down.

use simlint::{analyze_sources, Baseline, Config};

const CLEANISH: &str = "pub struct Buffer { occupied: u64 }\n\
    impl Buffer { pub fn admit(&mut self, n: u64) { self.occupied += n; } }\n";

const REGRESSED: &str = "pub struct Buffer { occupied: u64 }\n\
    impl Buffer {\n\
        pub fn admit(&mut self, n: u64) { self.occupied += n; }\n\
        pub fn leak(&mut self, n: u64) { self.occupied += n; }\n\
    }\n";

fn baseline_for(src: &str) -> Baseline {
    let a = analyze_sources(&[("buf.rs".to_owned(), src.to_owned())], &Config::default());
    Baseline::covering(&a.findings, &Baseline::default())
}

#[test]
fn baselined_finding_is_tolerated() {
    let baseline = baseline_for(CLEANISH);
    let a = analyze_sources(
        &[("buf.rs".to_owned(), CLEANISH.to_owned())],
        &Config::default(),
    );
    let r = baseline.ratchet(&a.findings);
    assert!(r.new.is_empty(), "{:#?}", r.new);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn introduced_finding_trips_the_ratchet() {
    let baseline = baseline_for(CLEANISH);
    let a = analyze_sources(
        &[("buf.rs".to_owned(), REGRESSED.to_owned())],
        &Config::default(),
    );
    let r = baseline.ratchet(&a.findings);
    assert!(
        !r.new.is_empty(),
        "a second counter-arith finding in the same file must fail CI"
    );
}

#[test]
fn fixed_finding_reports_a_tightening_opportunity() {
    let baseline = baseline_for(REGRESSED);
    let a = analyze_sources(
        &[("buf.rs".to_owned(), CLEANISH.to_owned())],
        &Config::default(),
    );
    let r = baseline.ratchet(&a.findings);
    assert!(r.new.is_empty());
    assert_eq!(r.improved.len(), 1, "{:#?}", r.improved);
    assert_eq!(r.improved[0].2, 2, "baselined count");
    assert_eq!(r.improved[0].3, 1, "current count");
}

#[test]
fn baseline_roundtrips_through_json() {
    let baseline = baseline_for(REGRESSED);
    let text = baseline.to_json();
    let back = Baseline::from_json(&text).expect("parse own output");
    assert_eq!(back.to_json(), text, "emission is byte-stable");
}
