//! The ratchet baseline: known findings may be suppressed with a
//! justification, but per-`(rule, file)` counts can only go down. CI
//! fails on any finding not covered by the baseline; a shrinking count
//! is reported so the baseline can be tightened (and `--write-baseline`
//! regenerates it, preserving justifications).
//!
//! Counts rather than line numbers keep the baseline stable under
//! unrelated edits: a suppressed finding may drift lines freely, but a
//! *new* finding in the same file trips the ratchet.

use crate::json::{parse, Json};
use crate::rules::Finding;
use std::collections::BTreeMap;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Number of findings of this rule tolerated in this file.
    pub count: u64,
    /// Why they are tolerated (required; "unreviewed" placeholders are
    /// for freshly written baselines awaiting triage).
    pub justification: String,
}

/// A parsed baseline.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Entries, sorted by (rule, file).
    pub entries: Vec<Entry>,
}

/// Outcome of comparing findings against a baseline.
#[derive(Debug)]
pub struct RatchetResult {
    /// Findings beyond the baselined count, i.e. CI failures.
    pub new: Vec<Finding>,
    /// `(rule, file, baseline, current)` where current < baseline: the
    /// baseline can ratchet down.
    pub improved: Vec<(String, String, u64, u64)>,
    /// Baseline entries whose (rule, file) produced no findings at all.
    pub stale: Vec<(String, String)>,
    /// Number of findings absorbed by the baseline.
    pub suppressed: usize,
}

impl Baseline {
    /// Parses a baseline JSON document.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("baseline missing schema")?;
        if schema != "simlint-baseline-v1" {
            return Err(format!("unknown baseline schema {schema:?}"));
        }
        let mut entries = Vec::new();
        for e in doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline missing entries")?
        {
            entries.push(Entry {
                rule: e
                    .get("rule")
                    .and_then(Json::as_str)
                    .ok_or("entry missing rule")?
                    .to_owned(),
                file: e
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or("entry missing file")?
                    .to_owned(),
                count: e
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or("entry missing count")?,
                justification: e
                    .get("justification")
                    .and_then(Json::as_str)
                    .ok_or("entry missing justification")?
                    .to_owned(),
            });
        }
        entries.sort_by(|a, b| (&a.rule, &a.file).cmp(&(&b.rule, &b.file)));
        Ok(Baseline { entries })
    }

    /// Renders the baseline as deterministic JSON.
    pub fn to_json(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("count".into(), Json::UInt(e.count)),
                    ("file".into(), Json::Str(e.file.clone())),
                    ("justification".into(), Json::Str(e.justification.clone())),
                    ("rule".into(), Json::Str(e.rule.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("entries".into(), Json::Arr(entries)),
            ("schema".into(), Json::Str("simlint-baseline-v1".into())),
        ])
        .pretty()
    }

    /// Builds a baseline covering exactly `findings`, carrying over
    /// justifications from `prior` where (rule, file) matches.
    pub fn covering(findings: &[Finding], prior: &Baseline) -> Baseline {
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.to_owned(), f.file.clone()))
                .or_insert(0) += 1;
        }
        let entries = counts
            .into_iter()
            .map(|((rule, file), count)| {
                let justification = prior
                    .entries
                    .iter()
                    .find(|e| e.rule == rule && e.file == file)
                    .map(|e| e.justification.clone())
                    .unwrap_or_else(|| "unreviewed".to_owned());
                Entry {
                    rule,
                    file,
                    count,
                    justification,
                }
            })
            .collect();
        Baseline { entries }
    }

    /// Compares `findings` against the baseline (the ratchet).
    pub fn ratchet(&self, findings: &[Finding]) -> RatchetResult {
        let mut by_key: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            by_key
                .entry((f.rule.to_owned(), f.file.clone()))
                .or_default()
                .push(f);
        }
        let allowed = |rule: &str, file: &str| -> u64 {
            self.entries
                .iter()
                .find(|e| e.rule == rule && e.file == file)
                .map_or(0, |e| e.count)
        };
        let mut new = Vec::new();
        let mut improved = Vec::new();
        let mut suppressed = 0usize;
        for ((rule, file), fs) in &by_key {
            let cap = allowed(rule, file) as usize;
            let n = fs.len();
            if n > cap {
                // All findings in the group are reported (the baseline has
                // no line identity, so "which ones are new" is undefined).
                new.extend(fs.iter().map(|f| (*f).clone()));
            } else {
                suppressed += n;
                if n < cap {
                    improved.push((rule.clone(), file.clone(), cap as u64, n as u64));
                }
            }
        }
        let stale = self
            .entries
            .iter()
            .filter(|e| !by_key.contains_key(&(e.rule.clone(), e.file.clone())))
            .map(|e| (e.rule.clone(), e.file.clone()))
            .collect();
        new.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.msg).cmp(&(&b.file, b.line, b.rule, &b.msg))
        });
        RatchetResult {
            new,
            improved,
            stale,
            suppressed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line,
            msg: "m".into(),
            chain: None,
        }
    }

    #[test]
    fn baseline_roundtrips() {
        let b = Baseline {
            entries: vec![Entry {
                rule: "hot-alloc".into(),
                file: "a.rs".into(),
                count: 2,
                justification: "cold sampling tick".into(),
            }],
        };
        let text = b.to_json();
        let back = Baseline::from_json(&text).unwrap();
        assert_eq!(back.entries, b.entries);
    }

    #[test]
    fn ratchet_allows_within_count_and_fails_beyond() {
        let b = Baseline {
            entries: vec![Entry {
                rule: "hot-alloc".into(),
                file: "a.rs".into(),
                count: 1,
                justification: "j".into(),
            }],
        };
        let ok = b.ratchet(&[finding("hot-alloc", "a.rs", 3)]);
        assert!(ok.new.is_empty());
        assert_eq!(ok.suppressed, 1);

        let grown = b.ratchet(&[
            finding("hot-alloc", "a.rs", 3),
            finding("hot-alloc", "a.rs", 9),
        ]);
        assert_eq!(grown.new.len(), 2, "count regression reports the group");

        let other_file = b.ratchet(&[finding("hot-alloc", "b.rs", 1)]);
        assert_eq!(other_file.new.len(), 1, "unknown (rule,file) is new");
    }

    #[test]
    fn ratchet_reports_improvement_and_staleness() {
        let b = Baseline {
            entries: vec![
                Entry {
                    rule: "r".into(),
                    file: "a.rs".into(),
                    count: 3,
                    justification: "j".into(),
                },
                Entry {
                    rule: "r".into(),
                    file: "gone.rs".into(),
                    count: 1,
                    justification: "j".into(),
                },
            ],
        };
        let res = b.ratchet(&[finding("r", "a.rs", 1)]);
        assert_eq!(res.improved, vec![("r".into(), "a.rs".into(), 3, 1)]);
        assert_eq!(res.stale, vec![("r".into(), "gone.rs".into())]);
    }

    #[test]
    fn covering_preserves_justifications() {
        let prior = Baseline {
            entries: vec![Entry {
                rule: "r".into(),
                file: "a.rs".into(),
                count: 9,
                justification: "carefully reviewed".into(),
            }],
        };
        let b = Baseline::covering(&[finding("r", "a.rs", 1), finding("x", "b.rs", 2)], &prior);
        assert_eq!(b.entries[0].count, 1);
        assert_eq!(b.entries[0].justification, "carefully reviewed");
        assert_eq!(b.entries[1].justification, "unreviewed");
    }
}
