//! Dependency-free JSON: a tiny value type with deterministic emission
//! (object keys in insertion order, which callers keep sorted; fixed
//! float formatting) and a strict recursive-descent parser for the
//! ratchet baseline file.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Unsigned integer (all simlint numbers are counts/lines).
    UInt(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-prints with 2-space indentation and a trailing newline —
    /// byte-stable for identical values.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict enough for baseline files; errors
/// carry a byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let v = parse_value(&b, &mut i)?;
    skip_ws(&b, &mut i);
    if i != b.len() {
        return Err(format!("trailing content at offset {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[char], i: &mut usize) {
    while *i < b.len() && b[*i].is_whitespace() {
        *i += 1;
    }
}

fn parse_value(b: &[char], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some('{') => {
            *i += 1;
            let mut members = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&'}') {
                *i += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, i);
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&':') {
                    return Err(format!("expected ':' at offset {i}", i = *i));
                }
                *i += 1;
                let val = parse_value(b, i)?;
                members.push((key, val));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(',') => *i += 1,
                    Some('}') => {
                        *i += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {i}", i = *i)),
                }
            }
        }
        Some('[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(',') => *i += 1,
                    Some(']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {i}", i = *i)),
                }
            }
        }
        Some('"') => Ok(Json::Str(parse_string(b, i)?)),
        Some('t') if matches(b, *i, "true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if matches(b, *i, "false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if matches(b, *i, "null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *i;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
            let text: String = b[start..*i].iter().collect();
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|e| format!("bad number at offset {start}: {e}"))
        }
        _ => Err(format!("unexpected character at offset {i}", i = *i)),
    }
}

fn matches(b: &[char], i: usize, word: &str) -> bool {
    word.chars()
        .enumerate()
        .all(|(k, c)| b.get(i + k) == Some(&c))
}

fn parse_string(b: &[char], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&'"') {
        return Err(format!("expected string at offset {i}", i = *i));
    }
    *i += 1;
    let mut s = String::new();
    while *i < b.len() {
        match b[*i] {
            '"' => {
                *i += 1;
                return Ok(s);
            }
            '\\' => {
                *i += 1;
                match b.get(*i) {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('u') => {
                        let hex: String = b[(*i + 1).min(b.len())..(*i + 5).min(b.len())]
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *i += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *i += 1;
            }
            c => {
                s.push(c);
                *i += 1;
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let v = Json::Obj(vec![
            ("a".into(), Json::UInt(3)),
            (
                "b".into(),
                Json::Arr(vec![Json::Str("x\"y".into()), Json::Null]),
            ),
            ("c".into(), Json::Bool(true)),
        ]);
        let text = v.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn emission_is_byte_stable() {
        let v = Json::Obj(vec![("k".into(), Json::UInt(1))]);
        assert_eq!(v.pretty(), v.pretty());
        assert_eq!(v.pretty(), "{\n  \"k\": 1\n}\n");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": }").is_err());
    }
}
