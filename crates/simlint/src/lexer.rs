//! A small Rust lexer: the foundation the passes scan instead of raw
//! lines. Comments are dropped; string/char literal *contents* become
//! opaque tokens, so a rule needle appearing inside a string can never
//! produce a finding (the line scanner this engine replaced got that
//! wrong for multi-line raw strings).
//!
//! The lexer is intentionally smaller than rustc's: it distinguishes
//! exactly the shapes the passes care about — identifiers, lifetimes,
//! string/char/byte literals, numbers (with an `is_float` flag), and
//! punctuation (multi-character operators like `::`, `->`, `+=` are one
//! token, so `->` can never be mistaken for a binary minus).

use std::fmt;

/// Token kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `impl`, `as`, … are `Ident` too; the
    /// parser distinguishes them by text).
    Ident,
    /// A lifetime (`'a`) — kept distinct so char-literal handling can
    /// never eat one.
    Lifetime,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`). `text` is
    /// the literal's *content* (quotes stripped), never scanned by rules.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal; `text` keeps the raw spelling (`1_000`, `0.5`,
    /// `1e9`, `0xFF`).
    Num,
    /// Punctuation; multi-char operators are a single token.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token.
    pub kind: TokKind,
    /// The token text (content only, for string literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// Is this a float literal (`0.5`, `1e9`, `2f64`)?
    pub fn is_float(&self) -> bool {
        self.kind == TokKind::Num
            && (self.text.contains('.')
                || ((self.text.contains('e') || self.text.contains('E'))
                    && !self.text.starts_with("0x")
                    && !self.text.starts_with("0X"))
                || self.text.ends_with("f32")
                || self.text.ends_with("f64"))
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TokKind::Str => write!(f, "\"…\""),
            _ => write!(f, "{}", self.text),
        }
    }
}

/// Multi-character operators, longest first so `::=`-style ambiguity
/// cannot arise (`..=` before `..`, `<<=` before `<<`).
const MULTI_PUNCT: [&str; 24] = [
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "&&", "||", "<<", ">>", "..",
];

/// Tokenizes Rust source. Never fails: unterminated literals consume to
/// end of input (a file that does not compile is not simlint's problem).
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    // Counts newlines in b[from..to] into `line`.
    let count_lines = |from: usize, to: usize, line: &mut u32, b: &[char]| {
        *line += b[from..to.min(b.len())]
            .iter()
            .filter(|&&c| c == '\n')
            .count() as u32;
    };
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                let start = i;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                count_lines(start, i, &mut line, &b);
            }
            '"' => {
                let start = i;
                i += 1;
                let content_start = i;
                while i < b.len() {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '"' {
                        break;
                    } else {
                        i += 1;
                    }
                }
                let content: String = b[content_start..i.min(b.len())].iter().collect();
                let at = line;
                count_lines(start, i, &mut line, &b);
                i = (i + 1).min(b.len());
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line: at,
                });
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let start = i;
                // Skip the prefix letters (`r`, `b`, `br`, `rb`).
                while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
                    i += 1;
                }
                let mut hashes = 0usize;
                while b.get(i) == Some(&'#') {
                    hashes += 1;
                    i += 1;
                }
                if b.get(i) == Some(&'"') {
                    i += 1;
                    let content_start = i;
                    let mut content_end = b.len();
                    while i < b.len() {
                        if b[i] == '"' {
                            let mut k = 0;
                            while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                content_end = i;
                                i += 1 + hashes;
                                break;
                            }
                        } else if b[i] == '\\' && hashes == 0 && start + 1 != i {
                            // Escapes only exist in b"…" (not raw strings);
                            // hashes==0 raw strings (`r"…"`) have none either,
                            // but a lone backslash before the quote is safe to
                            // step over in both.
                            i += 1;
                        }
                        i += 1;
                    }
                    let content: String =
                        b[content_start..content_end.min(b.len())].iter().collect();
                    let at = line;
                    count_lines(start, i, &mut line, &b);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: content,
                        line: at,
                    });
                } else {
                    // `r#ident` (raw identifier) or a plain ident starting
                    // with r/b: rewind and lex as an identifier.
                    i = start;
                    let tok = lex_ident(&b, &mut i, line);
                    toks.push(tok);
                }
            }
            '\'' => {
                // Char literal vs lifetime.
                if b.get(i + 1) == Some(&'\\') {
                    // Escaped char: scan to the closing quote.
                    let mut j = i + 2;
                    while j < b.len() && b[j] != '\'' {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = (j + 1).min(b.len());
                } else if b.get(i + 2) == Some(&'\'') && b.get(i + 1).is_some() {
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i += 3;
                } else {
                    // Lifetime: `'` followed by ident chars.
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_alphanumeric() || d == '_' {
                        i += 1;
                        // Exponent sign: `1e-9`, `2.5E+3`.
                        if (d == 'e' || d == 'E')
                            && !b[start..i].iter().collect::<String>().starts_with("0x")
                            && matches!(b.get(i), Some('+') | Some('-'))
                            && b.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                        {
                            i += 1;
                        }
                    } else if d == '.'
                        && b.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                        && !b[start..i].contains(&'.')
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let tok = lex_ident(&b, &mut i, line);
                toks.push(tok);
            }
            _ => {
                let rest: String = b[i..(i + 3).min(b.len())].iter().collect();
                let mut matched = false;
                for op in MULTI_PUNCT {
                    if rest.starts_with(op) {
                        toks.push(Tok {
                            kind: TokKind::Punct,
                            text: op.to_owned(),
                            line,
                        });
                        i += op.chars().count();
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    toks.push(Tok {
                        kind: TokKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    toks
}

/// Does `b[i..]` start a raw/byte string literal (`r"`, `r#"`, `b"`,
/// `br#"`)? A plain identifier like `result` must not match.
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    let mut seen_prefix = false;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') && j - i < 2 {
        j += 1;
        seen_prefix = true;
    }
    if !seen_prefix {
        return false;
    }
    // Byte char literal `b'x'` is handled by the char arm upstream; only
    // claim strings here.
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    b.get(j) == Some(&'"')
}

fn lex_ident(b: &[char], i: &mut usize, line: u32) -> Tok {
    let start = *i;
    while *i < b.len() && (b[*i].is_alphanumeric() || b[*i] == '_') {
        *i += 1;
    }
    // Raw identifier `r#ident`: swallow the `#` if we stopped at one right
    // after a lone `r`.
    if *i == start + 1 && b[start] == 'r' && b.get(*i) == Some(&'#') {
        *i += 1;
        let id_start = *i;
        while *i < b.len() && (b[*i].is_alphanumeric() || b[*i] == '_') {
            *i += 1;
        }
        return Tok {
            kind: TokKind::Ident,
            text: b[id_start..*i].iter().collect(),
            line,
        };
    }
    Tok {
        kind: TokKind::Ident,
        text: b[start..*i].iter().collect(),
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_are_dropped() {
        assert_eq!(texts("a // b.keys()\nc"), vec!["a", "c"]);
        assert_eq!(texts("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn string_contents_are_opaque() {
        let toks = lex("let s = \"x.iter() .unwrap()\";");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(!toks.iter().any(|t| t.is_ident("iter")));
    }

    #[test]
    fn multiline_raw_strings_are_one_token() {
        let src = "let s = r#\"\n  self.occupied += 1\n  q.unwrap()\n\"#;\nlet t = 2;";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        // The token after the raw string lands on the right line.
        let t = toks.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 5);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn multi_char_punct_is_one_token() {
        let toks = lex("a -> b :: c += d..=e");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["->", "::", "+=", "..="]);
    }

    #[test]
    fn numbers_and_floats() {
        let toks = lex("1_000 0.5 1e9 1e-9 0xFF 2f64 1..10");
        let nums: Vec<(&str, bool)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| (t.text.as_str(), t.is_float()))
            .collect();
        assert_eq!(
            nums,
            vec![
                ("1_000", false),
                ("0.5", true),
                ("1e9", true),
                ("1e-9", true),
                ("0xFF", false),
                ("2f64", true),
                ("1", false),
                ("10", false),
            ]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb \"str\nwith newline\" c";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        let c = toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!((a.line, b.line, c.line), (1, 4, 5));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = lex("let x = b\"bytes .iter()\"; let r#type = 1;");
        assert!(!toks.iter().any(|t| t.is_ident("iter")));
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }
}
