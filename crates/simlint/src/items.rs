//! Item recovery on top of the lexer: function definitions (with owner
//! type, parameter types, and body token ranges), struct fields (with
//! type heads, for receiver-type resolution), map-type aliases, and
//! `#[cfg(test)]` regions tracked by brace depth — an inner non-test
//! module after a test module correctly leaves the exemption (the old
//! scanner assumed tests always sat at the bottom of the file).

use crate::lexer::{lex, Tok, TokKind};

/// A call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `recv.name(…)` whose receiver could not be typed; resolved by
    /// method name across the workspace (minus std-shadowed names).
    Method(String),
    /// `recv.name(…)` whose receiver chain resolved to a workspace type:
    /// `(type, method)`.
    Typed(String, String),
    /// `Qualifier::name(…)`.
    Path(String, String),
    /// `name(…)` with no receiver or qualifier.
    Free(String),
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro(String),
}

/// A recovered `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Owning type when defined inside `impl Type` / `impl Trait for
    /// Type`.
    pub owner: Option<String>,
    /// Does the parameter list contain `self`?
    pub has_self: bool,
    /// Typed parameters: `(name, type-head)` — `ctx: &mut Ctx` yields
    /// `("ctx", "Ctx")`.
    pub params: Vec<(String, String)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body (empty for bodyless trait methods).
    pub body: std::ops::Range<usize>,
    /// Inside a `#[cfg(test)]` region or carrying `#[test]`.
    pub is_test: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<Call>,
}

/// A struct field: `(struct, field, type-head)`. Container heads
/// (`Vec<Node>`) record the *element* type (`Node`), since calls through
/// an index expression dispatch on the element.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// The struct the field belongs to.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Resolved type head (element type for Vec/VecDeque/Option/Box).
    pub ty: String,
    /// Is the declared type `u64`-based (`u64`, `Vec<u64>`, `[u64; N]`)?
    pub is_u64: bool,
    /// 1-based declaration line.
    pub line: u32,
}

/// One parsed source file.
pub struct ParsedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Raw source lines (for `simlint: allow(…)` comments only — rules
    /// never scan these).
    pub raw_lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Tok>,
    /// Per-token flag: inside a `#[cfg(test)]` region.
    pub test_tok: Vec<bool>,
    /// Recovered functions.
    pub fns: Vec<FnDef>,
    /// Struct fields (for receiver typing and counter-field discovery).
    pub fields: Vec<FieldDef>,
    /// Names aliased to `HashMap`/`HashSet` in this file.
    pub map_aliases: Vec<String>,
}

/// Container types whose first generic argument is the interesting type
/// for receiver resolution (`nodes: Vec<Node>` → calls through
/// `nodes[i]` dispatch on `Node`).
const CONTAINER_HEADS: [&str; 4] = ["Vec", "VecDeque", "Option", "Box"];

/// Method names shared with std collections/primitives: never resolved
/// by bare name (an untyped `.push(…)` is almost always `Vec::push`, and
/// resolving it to some workspace method named `push` would drag cold
/// code into the hot set). Typed receivers (`self.pool.take(…)`) bypass
/// this list entirely.
pub const STD_SHADOWED: [&str; 40] = [
    "push",
    "pop",
    "insert",
    "get",
    "get_mut",
    "remove",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "entry",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "drain",
    "take",
    "last",
    "first",
    "split_off",
    "resize",
    "retain",
    "reserve",
    "sort",
    "sort_by",
    "sort_by_key",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "binary_search",
    "map_or",
    "unwrap_or",
    "max",
    "min",
    "clone",
    "to_owned",
    "to_string",
];

/// Rust keywords that look like calls when followed by `(`.
const KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "unsafe", "move", "as", "in", "let", "else",
    "break", "continue",
];

enum Scope {
    /// `impl … { … }`: owner type, depth before `{`.
    Impl(String, usize),
    /// `struct Name { … }`.
    Struct(String, usize),
    /// `#[cfg(test)]`-gated item body.
    Test(usize),
    /// A function body: index into `fns`, depth before `{`.
    Fn(usize, usize),
}

/// Parses one file.
pub fn parse_file(rel: &str, src: &str) -> ParsedFile {
    let tokens = lex(src);
    let raw_lines: Vec<String> = src.lines().map(str::to_owned).collect();
    let n = tokens.len();
    let mut test_tok = vec![false; n];
    let mut fns: Vec<FnDef> = Vec::new();
    let mut fields: Vec<FieldDef> = Vec::new();
    let mut map_aliases: Vec<String> = Vec::new();

    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    let mut pending_test = false;
    let mut i = 0usize;

    while i < n {
        let t = &tokens[i];
        // Mark tokens inside any test scope.
        if scopes.iter().any(|s| matches!(s, Scope::Test(_))) {
            test_tok[i] = true;
        }

        if t.is_punct("#") && matches!(tokens.get(i + 1), Some(t1) if t1.is_punct("[")) {
            // Attribute: scan balanced brackets; `#[test]` / `#[cfg(test)]`
            // (and `#[cfg(any(test, …))]`) set the pending flag. Strings
            // inside attributes are opaque tokens, so `feature = "test-x"`
            // cannot trip it.
            let mut j = i + 2;
            let mut bdepth = 1usize;
            let mut saw_test_ident = false;
            while j < n && bdepth > 0 {
                if tokens[j].is_punct("[") {
                    bdepth += 1;
                } else if tokens[j].is_punct("]") {
                    bdepth -= 1;
                } else if tokens[j].is_ident("test")
                    && !(j >= 2 && tokens[j - 1].is_punct("(") && tokens[j - 2].is_ident("not"))
                {
                    // `#[cfg(not(test))]` is production-only code, not a
                    // test region.
                    saw_test_ident = true;
                }
                j += 1;
            }
            if saw_test_ident {
                pending_test = true;
            }
            i = j;
            continue;
        }

        match t.kind {
            TokKind::Punct if t.text == "{" => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct if t.text == "}" => {
                depth = depth.saturating_sub(1);
                while let Some(last) = scopes.last() {
                    let close = match last {
                        Scope::Impl(_, d) | Scope::Struct(_, d) | Scope::Test(d) => *d,
                        Scope::Fn(_, d) => *d,
                    };
                    if close == depth {
                        if let Scope::Fn(idx, _) = last {
                            fns[*idx].body.end = i;
                        }
                        scopes.pop();
                    } else {
                        break;
                    }
                }
                i += 1;
            }
            TokKind::Punct if t.text == ";" => {
                // An item without a body consumed the pending attribute.
                pending_test = false;
                i += 1;
            }
            TokKind::Ident if t.text == "mod" => {
                // `mod name {` or `mod name;`
                let brace = tokens.get(i + 2).is_some_and(|t2| t2.is_punct("{"));
                if brace && pending_test {
                    scopes.push(Scope::Test(depth));
                    // Mark the `mod` tokens themselves.
                    test_tok[i] = true;
                }
                pending_test = false;
                i += 1;
            }
            TokKind::Ident if t.text == "impl" => {
                let (owner, at_brace) = parse_impl_header(&tokens, i + 1);
                if pending_test {
                    scopes.push(Scope::Test(depth));
                }
                pending_test = false;
                if let Some(owner) = owner {
                    scopes.push(Scope::Impl(owner, depth));
                }
                i = at_brace; // positioned at `{` (or past end)
            }
            TokKind::Ident if t.text == "struct" || t.text == "enum" || t.text == "union" => {
                let name = tokens
                    .get(i + 1)
                    .filter(|t1| t1.kind == TokKind::Ident)
                    .map(|t1| t1.text.clone());
                // Find the body `{` (skipping generics/where); tuple structs
                // end at `;` or `(` first.
                let mut j = i + 2;
                let mut adepth = 0usize;
                let mut opens_brace = false;
                while j < n {
                    let tj = &tokens[j];
                    if tj.is_punct("<") {
                        adepth += 1;
                    } else if tj.is_punct(">") {
                        adepth = adepth.saturating_sub(1);
                    } else if adepth == 0 && (tj.is_punct(";") || tj.is_punct("(")) {
                        break;
                    } else if adepth == 0 && tj.is_punct("{") {
                        opens_brace = true;
                        break;
                    }
                    j += 1;
                }
                if pending_test && opens_brace {
                    scopes.push(Scope::Test(depth));
                }
                pending_test = false;
                if t.text == "struct" && opens_brace {
                    if let Some(name) = name {
                        scopes.push(Scope::Struct(name, depth));
                    }
                }
                i = if opens_brace { j } else { i + 1 };
            }
            TokKind::Ident if t.text == "type" => {
                // `type Alias = …;` — map aliases feed the map-iter rule.
                if let Some(alias) = tokens.get(i + 1).filter(|t1| t1.kind == TokKind::Ident) {
                    let mut j = i + 2;
                    let mut is_map = false;
                    while j < n && !tokens[j].is_punct(";") {
                        if tokens[j].is_ident("HashMap") || tokens[j].is_ident("HashSet") {
                            is_map = true;
                        }
                        j += 1;
                    }
                    if is_map {
                        map_aliases.push(alias.text.clone());
                    }
                    i = j;
                } else {
                    i += 1;
                }
                pending_test = false;
            }
            TokKind::Ident if t.text == "fn" => {
                let in_test = pending_test || scopes.iter().any(|s| matches!(s, Scope::Test(_)));
                pending_test = false;
                let owner = scopes.iter().rev().find_map(|s| match s {
                    Scope::Impl(o, _) => Some(o.clone()),
                    _ => None,
                });
                if let Some((def, body_open)) = parse_fn(&tokens, i, owner, in_test) {
                    let idx = fns.len();
                    let has_body = body_open < n && tokens[body_open].is_punct("{");
                    fns.push(def);
                    if has_body {
                        // Jump to the body `{`; the main loop will bump depth.
                        scopes.push(Scope::Fn(idx, depth));
                        fns[idx].body.start = body_open + 1;
                        fns[idx].body.end = body_open + 1;
                        i = body_open;
                    } else {
                        i = body_open; // at `;` or end
                    }
                } else {
                    i += 1;
                }
            }
            TokKind::Ident => {
                // Field declarations inside a struct body.
                if let Some(Scope::Struct(sname, sdepth)) = scopes
                    .iter()
                    .rev()
                    .find(|s| matches!(s, Scope::Struct(_, _) | Scope::Fn(_, _)))
                {
                    if depth == sdepth + 1
                        && matches!(tokens.get(i + 1), Some(t1) if t1.is_punct(":"))
                    {
                        let (ty, is_u64) = field_type(&tokens, i + 2);
                        fields.push(FieldDef {
                            owner: sname.clone(),
                            name: t.text.clone(),
                            ty,
                            is_u64,
                            line: t.line,
                        });
                    }
                }
                // Call extraction inside the innermost open fn.
                if let Some(fn_idx) = scopes.iter().rev().find_map(|s| match s {
                    Scope::Fn(idx, _) => Some(*idx),
                    _ => None,
                }) {
                    if let Some(call) = call_at(&tokens, i, &fns, &scopes) {
                        fns[fn_idx].calls.push(call);
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    // Close any fn bodies left open at EOF.
    for s in &scopes {
        if let Scope::Fn(idx, _) = s {
            fns[*idx].body.end = n;
        }
    }

    ParsedFile {
        rel: rel.to_owned(),
        raw_lines,
        tokens,
        test_tok,
        fns,
        fields,
        map_aliases,
    }
}

/// Parses an `impl` header starting after the `impl` keyword. Returns the
/// owner type name (the type after `for` when present, else the first
/// type) and the index of the opening `{`.
fn parse_impl_header(tokens: &[Tok], mut i: usize) -> (Option<String>, usize) {
    let n = tokens.len();
    // Skip generic params `<…>`.
    if i < n && tokens[i].is_punct("<") {
        let mut adepth = 1usize;
        i += 1;
        while i < n && adepth > 0 {
            if tokens[i].is_punct("<") || tokens[i].is_punct("<<") {
                adepth += if tokens[i].text == "<<" { 2 } else { 1 };
            } else if tokens[i].is_punct(">") || tokens[i].is_punct(">>") {
                adepth = adepth.saturating_sub(if tokens[i].text == ">>" { 2 } else { 1 });
            }
            i += 1;
        }
    }
    let mut first_type: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut adepth = 0usize;
    while i < n {
        let t = &tokens[i];
        if adepth == 0 && (t.is_punct("{") || t.is_ident("where")) {
            // `where` clause: scan on to `{`.
            if t.is_ident("where") {
                let mut j = i + 1;
                let mut ad = 0usize;
                while j < n && !(ad == 0 && tokens[j].is_punct("{")) {
                    if tokens[j].is_punct("<") {
                        ad += 1;
                    } else if tokens[j].is_punct(">") {
                        ad = ad.saturating_sub(1);
                    }
                    j += 1;
                }
                i = j;
            }
            break;
        }
        if t.is_punct("<") {
            adepth += 1;
        } else if t.is_punct(">") {
            adepth = adepth.saturating_sub(1);
        } else if adepth == 0 && t.is_ident("for") {
            saw_for = true;
        } else if adepth == 0 && t.kind == TokKind::Ident && !t.text.is_empty() {
            // Track the last plain ident at angle-depth 0 as the type head
            // (path segments overwrite, so `fmt::Display` resolves to
            // `Display`, `crate::Foo` to `Foo`).
            let slot = if saw_for {
                &mut after_for
            } else {
                &mut first_type
            };
            if !["dyn", "mut", "const"].contains(&t.text.as_str()) {
                *slot = Some(t.text.clone());
            }
        }
        i += 1;
    }
    (after_for.or(first_type), i)
}

/// Parses a `fn` starting at the `fn` keyword. Returns the def (body
/// range is set by the caller) and the index of the body `{` or
/// terminating `;`.
fn parse_fn(
    tokens: &[Tok],
    at: usize,
    owner: Option<String>,
    is_test: bool,
) -> Option<(FnDef, usize)> {
    let n = tokens.len();
    let name_tok = tokens.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut i = at + 2;
    // Skip generics.
    if i < n && tokens[i].is_punct("<") {
        let mut adepth = 1usize;
        i += 1;
        while i < n && adepth > 0 {
            if tokens[i].is_punct("<") {
                adepth += 1;
            } else if tokens[i].is_punct(">") {
                adepth = adepth.saturating_sub(1);
            } else if tokens[i].is_punct(">>") {
                adepth = adepth.saturating_sub(2);
            }
            i += 1;
        }
    }
    if i >= n || !tokens[i].is_punct("(") {
        return None;
    }
    // Parameter list.
    let mut pdepth = 1usize;
    let mut has_self = false;
    let mut params: Vec<(String, String)> = Vec::new();
    let mut j = i + 1;
    while j < n && pdepth > 0 {
        let t = &tokens[j];
        if t.is_punct("(") {
            pdepth += 1;
        } else if t.is_punct(")") {
            pdepth -= 1;
        } else if pdepth == 1 {
            if t.is_ident("self") {
                has_self = true;
            } else if t.kind == TokKind::Ident
                && matches!(tokens.get(j + 1), Some(t1) if t1.is_punct(":"))
                && (j == i + 1 || tokens[j - 1].is_punct(",") || tokens[j - 1].is_ident("mut"))
            {
                let (ty, _) = field_type(tokens, j + 2);
                params.push((t.text.clone(), ty));
            }
        }
        j += 1;
    }
    // Scan to body `{` or `;` at paren/angle depth 0.
    let mut adepth = 0usize;
    while j < n {
        let t = &tokens[j];
        if t.is_punct("<") {
            adepth += 1;
        } else if t.is_punct(">") {
            adepth = adepth.saturating_sub(1);
        } else if adepth == 0 && (t.is_punct("{") || t.is_punct(";")) {
            break;
        }
        j += 1;
    }
    Some((
        FnDef {
            name: name_tok.text.clone(),
            owner,
            has_self,
            params,
            line: tokens[at].line,
            body: 0..0,
            is_test,
            calls: Vec::new(),
        },
        j,
    ))
}

/// Extracts a type head starting at `i` (after a `:`). Strips `&`,
/// `mut`, path qualifiers; unwraps one container level (`Vec<Node>` →
/// `Node`). Returns `(head, is_u64)`.
fn field_type(tokens: &[Tok], mut i: usize) -> (String, bool) {
    let n = tokens.len();
    let mut head = String::new();
    let mut is_u64 = false;
    let mut adepth = 0usize;
    let mut container: Option<String> = None;
    while i < n {
        let t = &tokens[i];
        if adepth == 0 && (t.is_punct(",") || t.is_punct(")") || t.is_punct("}") || t.is_punct(";"))
        {
            break;
        }
        match t.kind {
            TokKind::Punct if t.text == "<" => adepth += 1,
            TokKind::Punct if t.text == ">" => adepth = adepth.saturating_sub(1),
            TokKind::Ident if t.text == "u64" => {
                is_u64 = true;
                if head.is_empty() {
                    head = "u64".to_owned();
                }
            }
            TokKind::Ident
                if !["mut", "dyn", "const", "impl", "r"].contains(&t.text.as_str())
                    && !t.text.is_empty() =>
            {
                if adepth == 0 {
                    if CONTAINER_HEADS.contains(&t.text.as_str()) {
                        container = Some(t.text.clone());
                    } else {
                        head = t.text.clone();
                    }
                } else if adepth == 1
                    && container.is_some()
                    && head.is_empty()
                    && !["dyn", "mut", "const", "impl"].contains(&t.text.as_str())
                {
                    // First generic argument of a container.
                    head = t.text.clone();
                }
            }
            _ => {}
        }
        i += 1;
    }
    if head.is_empty() {
        head = container.unwrap_or_default();
    }
    (head, is_u64)
}

/// Classifies the identifier at `i` as a call site, if it is one.
/// `fns`/`scopes` provide the enclosing context for receiver typing
/// (performed later — here we only capture shape).
fn call_at(tokens: &[Tok], i: usize, _fns: &[FnDef], _scopes: &[Scope]) -> Option<Call> {
    let t = &tokens[i];
    if KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    let next = tokens.get(i + 1)?;
    if next.is_punct("!") {
        // Macro invocation.
        if matches!(tokens.get(i + 2), Some(t2) if t2.is_punct("(") || t2.is_punct("[") || t2.is_punct("{"))
        {
            return Some(Call::Macro(t.text.clone()));
        }
        return None;
    }
    if !next.is_punct("(") {
        return None;
    }
    let prev = if i > 0 { Some(&tokens[i - 1]) } else { None };
    match prev {
        Some(p) if p.is_ident("fn") => None,
        Some(p) if p.is_punct(".") => Some(Call::Method(t.text.clone())),
        Some(p) if p.is_punct("::") => {
            // Qualifier is the ident before the `::` (skipping one more
            // `::`-joined segment is unnecessary: the *nearest* segment is
            // the type for `Type::method`, and for `a::b::Type::method`
            // the nearest is still `Type`).
            let q = if i >= 2 {
                &tokens[i - 2]
            } else {
                return Some(Call::Method(t.text.clone()));
            };
            if q.kind == TokKind::Ident {
                Some(Call::Path(q.text.clone(), t.text.clone()))
            } else {
                // `<T as Trait>::method(` and friends.
                Some(Call::Method(t.text.clone()))
            }
        }
        _ => Some(Call::Free(t.text.clone())),
    }
}

/// Second pass over a parsed file: retype `Method` calls whose receiver
/// chain is resolvable (`self.f.m(…)`, `param.m(…)`, `param.f.m(…)`,
/// `self.m(…)`), using the workspace-wide field table. `all_fields`
/// maps struct → fields; `fn_owners` is the set of `(type, method)`
/// pairs defined anywhere in the workspace.
pub fn type_calls(
    file: &mut ParsedFile,
    field_ty: &std::collections::BTreeMap<(String, String), String>,
    methods_of: &std::collections::BTreeMap<String, Vec<String>>,
) {
    let tokens = &file.tokens;
    for f in &mut file.fns {
        let owner = f.owner.clone();
        let params = f.params.clone();
        let mut call_cursor = 0usize;
        // Re-walk the body to find the receiver chain for each Method call
        // in order. Calls were recorded in source order.
        let mut i = f.body.start;
        while i < f.body.end && call_cursor < f.calls.len() {
            let t = &tokens[i];
            if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
                let next = tokens.get(i + 1);
                let is_macro = next.is_some_and(|n| n.is_punct("!"))
                    && matches!(tokens.get(i + 2), Some(t2) if t2.is_punct("(") || t2.is_punct("[") || t2.is_punct("{"));
                let is_call = next.is_some_and(|n| n.is_punct("("));
                if is_macro || is_call {
                    // Does this token correspond to the next recorded call?
                    let matches_record = match &f.calls[call_cursor] {
                        Call::Method(m) | Call::Free(m) | Call::Macro(m) | Call::Path(_, m) => {
                            m == &t.text
                        }
                        Call::Typed(_, m) => m == &t.text,
                    };
                    if matches_record {
                        if let Call::Method(name) = f.calls[call_cursor].clone() {
                            if let Some(ty) = receiver_type(tokens, i, &owner, &params, field_ty) {
                                if methods_of.get(&ty).is_some_and(|ms| ms.contains(&name)) {
                                    f.calls[call_cursor] = Call::Typed(ty, name);
                                }
                                // Else: the receiver typed to something
                                // without that method (a std container, or
                                // a trait object whose name is not an impl
                                // owner) — keep the name-based fallback,
                                // which the std-shadow list guards.
                            }
                        }
                        call_cursor += 1;
                    }
                }
            }
            i += 1;
        }
    }
}

/// Resolves the type of the receiver chain ending at the `.` before the
/// method ident at `i`. Handles `self.m(`, `self.field.m(`, `param.m(`,
/// `param.field.m(`, and one trailing index (`self.field[i].m(`).
fn receiver_type(
    tokens: &[Tok],
    i: usize,
    owner: &Option<String>,
    params: &[(String, String)],
    field_ty: &std::collections::BTreeMap<(String, String), String>,
) -> Option<String> {
    // Walk backwards collecting the chain of idents joined by `.`
    // (skipping one balanced `[…]` suffix per segment).
    let mut chain: Vec<String> = Vec::new();
    let mut j = i as isize - 1; // at the `.`
    loop {
        if j < 0 || !tokens[j as usize].is_punct(".") {
            break;
        }
        j -= 1;
        // Skip an index suffix.
        if j >= 0 && tokens[j as usize].is_punct("]") {
            let mut bd = 1usize;
            j -= 1;
            while j >= 0 && bd > 0 {
                if tokens[j as usize].is_punct("]") {
                    bd += 1;
                } else if tokens[j as usize].is_punct("[") {
                    bd -= 1;
                }
                j -= 1;
            }
        }
        if j >= 0 && tokens[j as usize].kind == TokKind::Ident {
            chain.push(tokens[j as usize].text.clone());
            j -= 1;
        } else {
            return None; // `)` receiver, literal, etc. — untypable
        }
        // Continue only through a further `.`; a `&`/`(`/start ends the chain.
        if j >= 0 && tokens[j as usize].is_punct(".") {
            continue;
        }
        break;
    }
    if chain.is_empty() {
        return None;
    }
    chain.reverse();
    // Head of the chain: self → owner type, a typed parameter, or a
    // field of the owner type (destructuring like
    // `let Network { ctx, .. } = self;` binds locals named after
    // fields — resolving them as fields keeps such calls typed).
    let mut ty = if chain[0] == "self" {
        owner.clone()?
    } else if let Some((_, t)) = params.iter().find(|(p, _)| p == &chain[0]) {
        if t.is_empty() {
            return None;
        }
        t.clone()
    } else if let Some(t) = owner
        .as_ref()
        .and_then(|o| field_ty.get(&(o.clone(), chain[0].clone())))
    {
        t.clone()
    } else {
        return None; // local variable — untyped
    };
    for seg in &chain[1..] {
        ty = field_ty.get(&(ty, seg.clone()))?.clone();
    }
    Some(ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("x.rs", src)
    }

    #[test]
    fn recovers_fns_with_owner_and_self() {
        let p = parse(
            "pub struct Network;\n\
             impl Network {\n\
                 pub fn run_until(&mut self, until: Time) { self.step(); }\n\
             }\n\
             fn free_helper(x: u64) -> u64 { x }\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "run_until");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Network"));
        assert!(p.fns[0].has_self);
        assert_eq!(p.fns[1].name, "free_helper");
        assert_eq!(p.fns[1].owner, None);
        assert!(!p.fns[1].has_self);
    }

    #[test]
    fn trait_impl_owner_is_the_type_after_for() {
        let p = parse("impl fmt::Display for Finding { fn fmt(&self) {} }");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Finding"));
    }

    #[test]
    fn calls_are_classified() {
        let p = parse(
            "impl A { fn f(&mut self, ctx: &mut Ctx) {\n\
                 self.g();\n\
                 helper(1);\n\
                 Foo::make();\n\
                 ctx.queue.schedule(t, e);\n\
                 format!(\"x\");\n\
             } }",
        );
        let calls = &p.fns[0].calls;
        assert!(calls.contains(&Call::Method("g".into())));
        assert!(calls.contains(&Call::Free("helper".into())));
        assert!(calls.contains(&Call::Path("Foo".into(), "make".into())));
        assert!(calls.contains(&Call::Method("schedule".into())));
        assert!(calls.contains(&Call::Macro("format".into())));
    }

    #[test]
    fn cfg_test_region_ends_at_its_closing_brace() {
        let p = parse(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() {}\n\
             }\n\
             mod after {\n\
                 pub fn still_prod() {}\n\
             }\n",
        );
        let by_name: Vec<(&str, bool)> =
            p.fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(
            by_name,
            vec![("prod", false), ("t", true), ("still_prod", false)]
        );
    }

    #[test]
    fn test_attr_on_fn_marks_only_that_fn() {
        let p = parse("#[test]\nfn check() {}\nfn prod() {}\n");
        assert!(p.fns[0].is_test);
        assert!(!p.fns[1].is_test);
    }

    #[test]
    fn struct_fields_record_type_heads() {
        let p = parse(
            "pub struct Ctx {\n\
                 pub queue: EventQueue,\n\
                 pub nodes: Vec<Node>,\n\
                 pub occupied: u64,\n\
                 pub ingress: Vec<[u64; 3]>,\n\
             }\n",
        );
        let f: Vec<(&str, &str, bool)> = p
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.ty.as_str(), f.is_u64))
            .collect();
        assert_eq!(
            f,
            vec![
                ("queue", "EventQueue", false),
                ("nodes", "Node", false),
                ("occupied", "u64", true),
                ("ingress", "u64", true),
            ]
        );
    }

    #[test]
    fn map_aliases_are_collected() {
        let p = parse("pub type RouteTable = HashMap<NodeId, Vec<PortId>>;\n");
        assert_eq!(p.map_aliases, vec!["RouteTable"]);
    }

    #[test]
    fn receiver_typing_resolves_fields_and_params() {
        let mut p = parse(
            "pub struct Ctx { pub queue: EventQueue, pub free: Vec<u32> }\n\
             pub struct EventQueue;\n\
             impl EventQueue { pub fn schedule(&mut self) {} }\n\
             pub struct Host { pub sub: Ctx }\n\
             impl Host {\n\
                 fn go(&mut self, ctx: &mut Ctx) {\n\
                     ctx.queue.schedule();\n\
                     self.sub.queue.schedule();\n\
                     ctx.free.push(1);\n\
                     mystery.schedule();\n\
                 }\n\
             }\n",
        );
        let mut field_ty = std::collections::BTreeMap::new();
        for f in &p.fields {
            field_ty.insert((f.owner.clone(), f.name.clone()), f.ty.clone());
        }
        let mut methods_of: std::collections::BTreeMap<String, Vec<String>> =
            std::collections::BTreeMap::new();
        methods_of
            .entry("EventQueue".into())
            .or_default()
            .push("schedule".into());
        type_calls(&mut p, &field_ty, &methods_of);
        let go = p.fns.iter().find(|f| f.name == "go").unwrap();
        let typed: Vec<&Call> = go
            .calls
            .iter()
            .filter(|c| matches!(c, Call::Typed(..)))
            .collect();
        // ctx.queue.schedule and self.sub.queue.schedule resolve.
        assert_eq!(
            typed,
            vec![
                &Call::Typed("EventQueue".into(), "schedule".into()),
                &Call::Typed("EventQueue".into(), "schedule".into()),
            ]
        );
        // ctx.free.push typed to a method-less type keeps its name form
        // (the std-shadow list will drop it at resolution); the untypable
        // receiver stays a name-resolved Method call.
        assert!(go.calls.contains(&Call::Method("push".into())));
        assert!(go.calls.contains(&Call::Method("schedule".into())));
    }

    #[test]
    fn std_shadowed_list_guards_fallback() {
        assert!(STD_SHADOWED.contains(&"push"));
        assert!(!STD_SHADOWED.contains(&"receive"));
    }
}
