//! Thin CLI over the simlint library.
//!
//! ```text
//! simlint [--format text|json] [--baseline PATH] [--no-baseline]
//!         [--write-baseline] [--print-hot] [--root Type::method]...
//! ```
//!
//! Exit codes: 0 clean (all findings baselined/suppressed), 1 new
//! findings beyond the ratchet baseline, 2 usage or I/O error.

use simlint::{analyze_sources, collect_workspace_sources, render_report};
use simlint::{Baseline, Config, RootSpec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_NAME: &str = "simlint_baseline.json";

struct Args {
    format_json: bool,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    print_hot: bool,
    roots: Vec<RootSpec>,
}

fn usage() -> &'static str {
    "usage: simlint [--format text|json] [--baseline PATH] [--no-baseline]\n\
     \x20              [--write-baseline] [--print-hot] [--root Type::method]...\n\
     \n\
     rules:\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        format_json: false,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        print_hot: false,
        roots: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                match v.as_str() {
                    "json" => args.format_json = true,
                    "text" => args.format_json = false,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--no-baseline" => args.no_baseline = true,
            "--write-baseline" => args.write_baseline = true,
            "--print-hot" => args.print_hot = true,
            "--root" => {
                let v = it.next().ok_or("--root needs Type::method")?;
                args.roots
                    .push(RootSpec::parse(&v).ok_or_else(|| format!("bad root {v:?}"))?);
            }
            "--help" | "-h" => {
                let mut help = usage().to_owned();
                for (rule, desc) in simlint::rules::RULES {
                    help.push_str(&format!("  {rule:<18} {desc}\n"));
                }
                print!("{help}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// The workspace root: two levels above this crate's manifest when run
/// via cargo, else the current directory.
fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = Path::new(&dir).join("../..");
        if p.join("Cargo.toml").exists() {
            return p;
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    let root = workspace_root();
    let sources = match collect_workspace_sources(&root) {
        Ok(s) if !s.is_empty() => s,
        Ok(_) => {
            eprintln!("simlint: no source files found under {}", root.display());
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut config = Config::default();
    if !args.roots.is_empty() {
        config.roots = args.roots.clone();
    }
    let analysis = analyze_sources(&sources, &config);

    if args.print_hot {
        println!("# hot files ({})", analysis.hot_files.len());
        for f in &analysis.hot_files {
            println!("{f}");
        }
        println!("# hot fns ({})", analysis.hot_fns.len());
        for f in &analysis.hot_fns {
            println!("{f}");
        }
        return ExitCode::SUCCESS;
    }

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_NAME));
    let baseline = if args.no_baseline {
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("simlint: bad baseline {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) if args.baseline.is_none() => Baseline::default(),
            Err(e) => {
                eprintln!("simlint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    };

    if args.write_baseline {
        let new = Baseline::covering(&analysis.findings, &baseline);
        if let Err(e) = std::fs::write(&baseline_path, new.to_json()) {
            eprintln!("simlint: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "simlint: wrote {} ({} entries covering {} findings)",
            baseline_path.display(),
            new.entries.len(),
            analysis.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let ratchet = baseline.ratchet(&analysis.findings);

    if args.format_json {
        print!("{}", render_report(&analysis, &ratchet));
        return if ratchet.new.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Text output.
    eprintln!(
        "simlint v2: {} files, {} fns, {} edges; {} hot fns across {} hot files",
        analysis.files,
        analysis.fns,
        analysis.edges,
        analysis.hot_fns.len(),
        analysis.hot_files.len()
    );
    for f in &ratchet.new {
        eprintln!("{}:{} [{}] {}", f.file, f.line, f.rule, f.msg);
        if let Some(chain) = &f.chain {
            eprintln!("    via {chain}");
        }
    }
    if analysis.suppressed_inline > 0 || ratchet.suppressed > 0 {
        eprintln!(
            "simlint: {} finding(s) suppressed inline, {} by baseline",
            analysis.suppressed_inline, ratchet.suppressed
        );
    }
    for (rule, file, cap, cur) in &ratchet.improved {
        eprintln!("simlint: baseline can tighten: {rule} in {file}: {cap} -> {cur}");
    }
    for (rule, file) in &ratchet.stale {
        eprintln!("simlint: stale baseline entry: {rule} in {file} (no findings)");
    }
    if ratchet.new.is_empty() {
        eprintln!("simlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} new finding(s) beyond baseline (run with --write-baseline only after review)",
            ratchet.new.len()
        );
        ExitCode::FAILURE
    }
}
