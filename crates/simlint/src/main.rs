//! `simlint` — repo-specific static analysis the compiler and clippy
//! cannot express, run as `cargo run -p simlint` (CI runs it on every
//! push). Dependency-free by design: a line/token-level scanner, not a
//! full parser.
//!
//! Rules:
//!
//! * **map-iter** — no iteration over `HashMap`/`HashSet` (or aliases of
//!   them, e.g. `RouteTable`) anywhere in workspace library code. The
//!   simulator's contract is bit-for-bit determinism — a run is a pure
//!   function of config + seed — and `std` hash iteration order is
//!   randomized per process, so any map iteration that feeds event
//!   ordering, sampling or output silently breaks reproducibility.
//!   Deterministic paths use `BTreeMap`, sorted `Vec`s, or insertion-order
//!   side lists (`Network::flow_order`).
//! * **counter-arith** — no bare `+`/`-`/`as` on byte/occupancy counters
//!   in `netsim`'s buffer/port/switch modules; accounting must go through
//!   `netsim::units::checked` so overflow/underflow surface as checked
//!   failures instead of silent wraps that sneak past capacity tests.
//! * **float-cmp** — no `partial_cmp().unwrap()` (NaN panic) anywhere,
//!   and no `==`/`!=` against float literals in `stats.rs` (percentile
//!   machinery must use `total_cmp` and epsilon tests).
//! * **hot-unwrap** — no `unwrap()`/`expect()` in the per-event hot path
//!   (`event.rs`, `host.rs`, `switch.rs`, `port.rs`, and the telemetry
//!   registry/recorder/span-tracer that sit on it): a malformed packet
//!   or state-machine corner must degrade (drop, debug_assert) rather
//!   than abort a multi-minute experiment run.
//! * **metric-lookup** — no string-keyed metric lookups (`.counter("`,
//!   `.counter_value(`, …) in the per-event hot path or the dispatch
//!   loop. Metrics are registered once and updated through `Copy`
//!   handles (`CounterId`/`GaugeId`/`HistId`) so the per-event cost is
//!   one array index — a by-name lookup there reintroduces the string
//!   scan the telemetry design exists to avoid.
//!
//! Suppression: a `// simlint: allow(<rule>)` comment on the offending
//! line or the line above silences that rule there. Allowlisting requires
//! a justification in the surrounding comment.
//!
//! Test code is exempt: files under `tests/`, `benches/`, `examples/`,
//! and everything after a `#[cfg(test)]` attribute (module tests sit at
//! the bottom of each file by repo convention).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files whose byte counters must use `netsim::units::checked`.
const COUNTER_FILES: [&str; 3] = [
    "crates/netsim/src/buffer.rs",
    "crates/netsim/src/port.rs",
    "crates/netsim/src/switch.rs",
];

/// Counter identifiers covered by the counter-arith rule (whole-token
/// match): shared-pool occupancy, per-ingress attribution, egress queue
/// accounting, and the QCN sampling counters.
const COUNTER_TOKENS: [&str; 8] = [
    "occupied",
    "ingress",
    "queued_bytes",
    "egress_depth",
    "bytes_since_sample",
    "q_old",
    "wire",
    "free",
];

/// Files forming the per-event hot path (hot-unwrap rule). The telemetry
/// registry and flight recorder are on it: every counter bump and trace
/// record runs per event.
const HOT_FILES: [&str; 9] = [
    "crates/netsim/src/event.rs",
    "crates/netsim/src/slab.rs",
    "crates/netsim/src/host.rs",
    "crates/netsim/src/switch.rs",
    "crates/netsim/src/port.rs",
    "crates/netsim/src/faults.rs",
    "crates/netsim/src/telemetry/registry.rs",
    "crates/netsim/src/telemetry/recorder.rs",
    "crates/netsim/src/telemetry/spans.rs",
];

/// Files where by-name metric lookups are banned (metric-lookup rule):
/// the hot path plus the dispatch loop in `network.rs`.
const METRIC_LOOKUP_FILES: [&str; 8] = [
    "crates/netsim/src/event.rs",
    "crates/netsim/src/slab.rs",
    "crates/netsim/src/host.rs",
    "crates/netsim/src/switch.rs",
    "crates/netsim/src/port.rs",
    "crates/netsim/src/faults.rs",
    "crates/netsim/src/network.rs",
    "crates/netsim/src/telemetry/spans.rs",
];

/// String-keyed registry calls: registration forms (a string literal as
/// the first argument) and the by-name read-side accessors.
const METRIC_LOOKUP_NEEDLES: [&str; 6] = [
    ".counter(\"",
    ".gauge(\"",
    ".histogram(\"",
    ".counter_value(",
    ".gauge_value(",
    ".hist_by_name(",
];

/// Methods that iterate a map in unspecified order.
const ITER_METHODS: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

/// One diagnostic.
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// A scanned source file: path (workspace-relative, `/`-separated), raw
/// lines (for allow-comments), stripped lines (comments and string
/// contents blanked), and the index of the first test-only line.
struct SourceFile {
    rel: String,
    raw: Vec<String>,
    code: Vec<String>,
    test_from: usize,
}

fn main() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!("simlint: no source files found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let sources: Vec<SourceFile> = files.iter().filter_map(|p| load_source(p, &root)).collect();

    let map_names = collect_map_names(&sources);
    let mut findings = Vec::new();
    for src in &sources {
        lint_source(src, &map_names, &mut findings);
    }

    if findings.is_empty() {
        println!(
            "simlint: {} files clean ({} map-typed names tracked)",
            sources.len(),
            map_names.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("simlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest when run
/// via cargo, else the current directory.
fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = Path::new(&dir).join("../..");
        if p.join("Cargo.toml").exists() {
            return p;
        }
    }
    PathBuf::from(".")
}

/// Recursively collects `.rs` files, skipping this crate, build output,
/// and test-only trees.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    const SKIP_DIRS: [&str; 7] = [
        "simlint", "target", ".git", "tests", "benches", "examples", "fuzz",
    ];
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn load_source(path: &Path, root: &Path) -> Option<SourceFile> {
    let text = std::fs::read_to_string(path).ok()?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/");
    let raw: Vec<String> = text.lines().map(str::to_owned).collect();
    let code = strip_code(&text);
    let test_from = raw
        .iter()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with("#[cfg(") && t.contains("test")
        })
        .unwrap_or(raw.len());
    Some(SourceFile {
        rel,
        raw,
        code,
        test_from,
    })
}

/// Blanks comments and the *contents* of string/char literals (quotes are
/// kept so token positions stay roughly aligned). Handles `//`, nested
/// `/* */`, `"..."` with escapes, `r"..."`/`r#"..."#`, and char literals
/// (without mistaking lifetimes for them).
fn strip_code(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut block_depth = 0usize;
    for line in src.lines() {
        let b: Vec<char> = line.chars().collect();
        let mut s = String::with_capacity(b.len());
        let mut i = 0;
        while i < b.len() {
            if block_depth > 0 {
                if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    block_depth -= 1;
                    i += 2;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    block_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match b[i] {
                '/' if b.get(i + 1) == Some(&'/') => break, // line comment
                '/' if b.get(i + 1) == Some(&'*') => {
                    block_depth += 1;
                    i += 2;
                }
                '"' => {
                    s.push('"');
                    i += 1;
                    while i < b.len() {
                        if b[i] == '\\' {
                            i += 2;
                        } else if b[i] == '"' {
                            s.push('"');
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                }
                'r' if b.get(i + 1) == Some(&'"') || (b.get(i + 1) == Some(&'#')) => {
                    // Raw string r"..." or r#"..."# (single-line handling;
                    // the workspace has no multi-line raw strings).
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        s.push('"');
                        j += 1;
                        'raw: while j < b.len() {
                            if b[j] == '"' {
                                let mut k = 0;
                                while k < hashes && b.get(j + 1 + k) == Some(&'#') {
                                    k += 1;
                                }
                                if k == hashes {
                                    s.push('"');
                                    j += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            j += 1;
                        }
                        i = j;
                    } else {
                        s.push('r');
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: `'\..'` escapes scan to the
                    // closing quote; `'x'` closes exactly two chars later;
                    // anything else is a lifetime.
                    if b.get(i + 1) == Some(&'\\') {
                        let mut j = i + 2;
                        while j < b.len() && b[j] != '\'' {
                            j += 1;
                        }
                        s.push('\'');
                        s.push('\'');
                        i = (j + 1).min(b.len());
                    } else if b.get(i + 2) == Some(&'\'') {
                        s.push('\'');
                        s.push('\'');
                        i += 3;
                    } else {
                        s.push('\'');
                        i += 1;
                    }
                }
                c => {
                    s.push(c);
                    i += 1;
                }
            }
        }
        out.push(s);
    }
    out
}

/// True when `tok` appears in `line` as a whole identifier token.
fn has_token(line: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(tok) {
        let start = from + pos;
        let end = start + tok.len();
        let before_ok = start == 0
            || !line[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !line[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Collects every identifier bound to a `HashMap`/`HashSet` type across
/// all non-test library code: type aliases first, then field/let/struct
/// bindings of the base types or any alias.
fn collect_map_names(sources: &[SourceFile]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut push = |n: String| {
        if !n.is_empty() && !names.contains(&n) {
            names.push(n);
        }
    };

    // Pass A: type aliases (`pub type RouteTable = HashMap<...>`).
    let mut needles: Vec<String> = vec!["HashMap".into(), "HashSet".into()];
    for src in sources {
        for line in &src.code[..src.test_from.min(src.code.len())] {
            let t = line.trim();
            let Some(rest) = t
                .strip_prefix("pub type ")
                .or_else(|| t.strip_prefix("type "))
            else {
                continue;
            };
            let Some((alias, rhs)) = rest.split_once('=') else {
                continue;
            };
            if has_token(rhs, "HashMap") || has_token(rhs, "HashSet") {
                let alias = alias.split('<').next().unwrap_or("").trim();
                if !alias.is_empty() && !needles.iter().any(|n| n == alias) {
                    needles.push(alias.to_owned());
                }
            }
        }
    }

    // Pass B: bindings — `name: HashMap<..>`, `name = HashMap::new()`,
    // `name: RouteTable` — collected by scanning backwards from each
    // occurrence of a map type name for the bound identifier.
    for src in sources {
        for line in &src.code[..src.test_from.min(src.code.len())] {
            let line = line.replace("std::collections::", "");
            for needle in &needles {
                let mut from = 0;
                while let Some(pos) = line[from..].find(needle.as_str()) {
                    let start = from + pos;
                    from = start + needle.len();
                    if !has_token(&line, needle) {
                        continue;
                    }
                    let before = line[..start].trim_end();
                    let before = before
                        .strip_suffix(':')
                        .map(|b| (b.trim_end(), true))
                        .or_else(|| before.strip_suffix('=').map(|b| (b.trim_end(), false)));
                    let Some((before, was_colon)) = before else {
                        continue;
                    };
                    // `::` means a path segment, not a type ascription.
                    if was_colon && before.ends_with(':') {
                        continue;
                    }
                    let ident: String = before
                        .chars()
                        .rev()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect::<Vec<_>>()
                        .into_iter()
                        .rev()
                        .collect();
                    if !ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_numeric()) {
                        push(ident);
                    }
                }
            }
        }
    }
    names
}

/// The identifier immediately preceding byte offset `at` (exclusive),
/// i.e. the receiver of a method call found at `at`.
fn ident_before(line: &str, at: usize) -> String {
    line[..at]
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

/// Does the line contain `-` used as a binary operator (excluding `->`
/// and unary negation)?
fn has_binary_minus(line: &str) -> bool {
    let b: Vec<char> = line.chars().collect();
    for (i, &c) in b.iter().enumerate() {
        if c != '-' {
            continue;
        }
        if b.get(i + 1) == Some(&'>') || (i > 0 && b[i - 1] == '-') {
            continue; // arrow or decrement-like sequence
        }
        let prev = b[..i].iter().rev().find(|c| !c.is_whitespace());
        if prev.is_some_and(|&p| p.is_alphanumeric() || p == '_' || p == ')' || p == ']') {
            return true;
        }
    }
    false
}

/// Is this finding suppressed by `// simlint: allow(<rule>)` on the same
/// or the preceding raw line?
fn allowed(src: &SourceFile, idx: usize, rule: &str) -> bool {
    let marker = format!("simlint: allow({rule})");
    src.raw[idx].contains(&marker) || (idx > 0 && src.raw[idx - 1].contains(&marker))
}

fn lint_source(src: &SourceFile, map_names: &[String], findings: &mut Vec<Finding>) {
    let is_counter_file = COUNTER_FILES.contains(&src.rel.as_str());
    let is_hot_file = HOT_FILES.contains(&src.rel.as_str());
    let is_metric_file = METRIC_LOOKUP_FILES.contains(&src.rel.as_str());
    let is_stats = src.rel == "crates/netsim/src/stats.rs";

    for (idx, line) in src.code.iter().enumerate() {
        if idx >= src.test_from {
            break;
        }
        let lineno = idx + 1;
        let mut report = |rule: &'static str, msg: String| {
            if !allowed(src, idx, rule) {
                findings.push(Finding {
                    file: src.rel.clone(),
                    line: lineno,
                    rule,
                    msg,
                });
            }
        };

        // ---- map-iter -------------------------------------------------
        for m in ITER_METHODS {
            let mut from = 0;
            while let Some(pos) = line[from..].find(m) {
                let at = from + pos;
                from = at + m.len();
                let recv = ident_before(line, at);
                if map_names.iter().any(|n| n == &recv) {
                    report(
                        "map-iter",
                        format!(
                            "`{recv}{m}` iterates a HashMap/HashSet in unspecified \
                             order; use a BTreeMap, a sorted Vec, or an \
                             insertion-order list"
                        ),
                    );
                }
            }
        }
        if let Some(for_pos) = line.find("for ") {
            if let Some(in_pos) = line[for_pos..].rfind(" in ") {
                let expr = line[for_pos + in_pos + 4..]
                    .trim()
                    .trim_end_matches('{')
                    .trim()
                    .trim_start_matches("&mut ")
                    .trim_start_matches('&');
                let last = expr.split('.').next_back().unwrap_or("");
                let last: String = last
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if map_names.iter().any(|n| n == &last) {
                    report(
                        "map-iter",
                        format!(
                            "`for .. in {last}` iterates a HashMap/HashSet in \
                             unspecified order"
                        ),
                    );
                }
            }
        }

        // ---- counter-arith --------------------------------------------
        if is_counter_file {
            let touches_counter = COUNTER_TOKENS.iter().any(|t| has_token(line, t));
            if touches_counter {
                let bad = if line.contains("+=") || line.contains("-=") {
                    Some("compound assignment")
                } else if line.contains('+') {
                    Some("bare `+`")
                } else if has_binary_minus(line) {
                    Some("bare `-`")
                } else if line.contains(" as ") {
                    Some("bare `as` cast")
                } else {
                    None
                };
                if let Some(kind) = bad {
                    report(
                        "counter-arith",
                        format!(
                            "{kind} on a byte/occupancy counter; use \
                             netsim::units::checked (checked_accum, \
                             checked_drain, scale_bytes, bytes_to_f64) or a \
                             saturating_* method"
                        ),
                    );
                }
            }
        }

        // ---- float-cmp ------------------------------------------------
        if line.contains(".partial_cmp(")
            && (line.contains(".unwrap()") || line.contains(".expect("))
        {
            report(
                "float-cmp",
                "`partial_cmp().unwrap()` panics on NaN; use `total_cmp`".into(),
            );
        }
        if is_stats && (line.contains("==") || line.contains("!=")) {
            let cmp_float_literal = line.split(['=', '!']).any(|side| {
                let t = side.trim();
                let head: String = t
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
                    .collect();
                head.contains('.') && head.chars().any(|c| c.is_ascii_digit())
            });
            if cmp_float_literal {
                report(
                    "float-cmp",
                    "exact equality against a float literal in stats code; \
                     use an epsilon or integer domain"
                        .into(),
                );
            }
        }

        // ---- hot-unwrap -----------------------------------------------
        if is_hot_file && (line.contains(".unwrap()") || line.contains(".expect(")) {
            report(
                "hot-unwrap",
                "`unwrap()`/`expect()` in the per-event hot path; use \
                 let-else with a degrade path (drop + debug_assert)"
                    .into(),
            );
        }

        // ---- metric-lookup --------------------------------------------
        if is_metric_file {
            for n in METRIC_LOOKUP_NEEDLES {
                if line.contains(n) {
                    report(
                        "metric-lookup",
                        format!(
                            "`{n}...` string-keyed metric lookup on the hot \
                             path; resolve a CounterId/GaugeId/HistId handle \
                             at registration and index through it"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(rel: &str, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let code = strip_code(text);
        let test_from = raw
            .iter()
            .position(|l| {
                let t = l.trim_start();
                t.starts_with("#[cfg(") && t.contains("test")
            })
            .unwrap_or(raw.len());
        SourceFile {
            rel: rel.to_owned(),
            raw,
            code,
            test_from,
        }
    }

    fn run(rel: &str, text: &str) -> Vec<String> {
        let src = fake(rel, text);
        let maps = collect_map_names(std::slice::from_ref(&src));
        let mut f = Vec::new();
        lint_source(&src, &maps, &mut f);
        f.iter().map(|x| x.rule.to_owned()).collect()
    }

    #[test]
    fn strips_comments_and_string_contents() {
        let s = strip_code("let a = \"x.iter()\"; // b.keys()\n/* c.values() */ let d = 1;");
        assert_eq!(s[0], "let a = \"\"; ");
        assert_eq!(s[1], " let d = 1;");
    }

    #[test]
    fn strips_nested_block_comments_and_raw_strings() {
        let s = strip_code("/* a /* b */ still */ code\nlet r = r#\"m.iter()\"#;");
        assert_eq!(s[0].trim(), "code");
        assert!(!s[1].contains("iter"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = strip_code("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s[0].contains("&'a str"));
        let s2 = strip_code("let c = 'x'; let n = '\\n';");
        assert!(!s2[0].contains('x'));
    }

    #[test]
    fn token_matching_is_whole_word() {
        assert!(has_token("self.occupied += 1", "occupied"));
        assert!(!has_token("self.total_bytes = 1", "bytes"));
        assert!(!has_token("preoccupied", "occupied"));
    }

    #[test]
    fn map_names_include_fields_lets_and_aliases() {
        let src = fake(
            "x.rs",
            "pub type RouteTable = HashMap<NodeId, Vec<PortId>>;\n\
             struct S { pub flow_stats: HashMap<FlowId, u64>, routes: RouteTable }\n\
             fn f() { let mut seen = HashSet::new(); }\n",
        );
        let names = collect_map_names(std::slice::from_ref(&src));
        for n in ["flow_stats", "routes", "seen"] {
            assert!(names.iter().any(|x| x == n), "missing {n} in {names:?}");
        }
    }

    #[test]
    fn map_iteration_is_flagged_lookup_is_not() {
        let text = "struct S { m: HashMap<u32, u32> }\n\
                    fn f(s: &S) { for (k, v) in s.m.iter() {} }\n\
                    fn g(s: &S) -> Option<&u32> { s.m.get(&1) }\n\
                    fn h(s: &S) { for k in &s.m {} }\n";
        let rules = run("x.rs", text);
        assert_eq!(rules, vec!["map-iter", "map-iter"]);
    }

    #[test]
    fn allow_comment_suppresses() {
        let text = "struct S { m: HashMap<u32, u32> }\n\
                    // order-insensitive: summed into a scalar\n\
                    // simlint: allow(map-iter)\n\
                    fn f(s: &S) -> u32 { s.m.values().sum() }\n";
        assert!(run("x.rs", text).is_empty());
        let same_line = "struct S { m: HashMap<u32, u32> }\n\
                         fn f(s: &S) -> u32 { s.m.values().sum() } // simlint: allow(map-iter)\n";
        assert!(run("x.rs", same_line).is_empty());
    }

    #[test]
    fn counter_arith_in_scope_files_only() {
        let bad = "fn f(&mut self) { self.occupied += 1500; }\n";
        assert_eq!(
            run("crates/netsim/src/buffer.rs", bad),
            vec!["counter-arith"]
        );
        assert!(run("crates/netsim/src/stats.rs", bad).is_empty());
        let cast = "let q = egress_depth as f64;\n";
        assert_eq!(
            run("crates/netsim/src/switch.rs", cast),
            vec!["counter-arith"]
        );
        let sub = "let d = free - occupied;\n";
        assert_eq!(
            run("crates/netsim/src/buffer.rs", sub),
            vec!["counter-arith"]
        );
    }

    #[test]
    fn checked_and_saturating_forms_pass() {
        let ok = "let ok = checked_accum(&mut self.queued_bytes[prio], n);\n\
                  let t = self.ingress[port][prio].saturating_add(k);\n\
                  let free = pool.saturating_sub(self.occupied);\n\
                  fn occupied(&self) -> u64 { self.occupied }\n";
        assert!(run("crates/netsim/src/buffer.rs", ok).is_empty());
    }

    #[test]
    fn arrow_and_unary_minus_are_not_binary_minus() {
        assert!(!has_binary_minus("fn occupied(&self) -> u64 {"));
        assert!(!has_binary_minus("let x = -(q_off + 1.0);"));
        assert!(has_binary_minus("let d = a - b;"));
        assert!(has_binary_minus("let d = f(x) - 1;"));
    }

    #[test]
    fn float_cmp_rules() {
        let bad = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(run("crates/fluid/src/model.rs", bad), vec!["float-cmp"]);
        let good = "v.sort_by(|a, b| a.total_cmp(b));\n";
        assert!(run("crates/fluid/src/model.rs", good).is_empty());
        let eq = "if x == 0.5 { }\n";
        assert_eq!(run("crates/netsim/src/stats.rs", eq), vec!["float-cmp"]);
        assert!(run("crates/fluid/src/model.rs", eq).is_empty());
    }

    #[test]
    fn hot_unwrap_scoped_to_hot_files() {
        let bad = "let x = q.pop().unwrap();\n";
        assert_eq!(run("crates/netsim/src/host.rs", bad), vec!["hot-unwrap"]);
        assert_eq!(run("crates/netsim/src/event.rs", bad), vec!["hot-unwrap"]);
        assert!(run("crates/netsim/src/network.rs", bad).is_empty());
        let expect = "let a = self.attach.expect(\"attached\");\n";
        assert_eq!(run("crates/netsim/src/port.rs", expect), vec!["hot-unwrap"]);
    }

    #[test]
    fn metric_lookup_scoped_to_hot_path_and_dispatch_loop() {
        let by_name = "let v = self.ctx.metrics.registry.counter_value(name);\n";
        assert_eq!(
            run("crates/netsim/src/network.rs", by_name),
            vec!["metric-lookup"]
        );
        assert_eq!(
            run("crates/netsim/src/switch.rs", by_name),
            vec!["metric-lookup"]
        );
        // The registry itself registers by name — that's the cold path.
        assert!(run("crates/netsim/src/telemetry/registry.rs", by_name).is_empty());
        let register = "let id = reg.counter(\"ecn_marks\");\n";
        assert_eq!(
            run("crates/netsim/src/host.rs", register),
            vec!["metric-lookup"]
        );
        // Handle-indexed updates are the sanctioned hot-path form.
        let handle = "ctx.metrics.inc(ctx.metrics.h.ecn_marks);\n";
        assert!(run("crates/netsim/src/switch.rs", handle).is_empty());
    }

    #[test]
    fn telemetry_hot_files_are_unwrap_checked() {
        let bad = "let x = self.rings.get_mut(i).unwrap();\n";
        assert_eq!(
            run("crates/netsim/src/telemetry/recorder.rs", bad),
            vec!["hot-unwrap"]
        );
        assert_eq!(
            run("crates/netsim/src/telemetry/registry.rs", bad),
            vec!["hot-unwrap"]
        );
    }

    #[test]
    fn span_tracer_is_on_the_hot_path() {
        // `Spans::set_state` runs once per flow per host event; unwraps
        // and string-keyed metric lookups are banned there like in the
        // rest of the per-event path.
        let bad = "let t = self.tracks.get_mut(&flow).unwrap();\n";
        assert_eq!(
            run("crates/netsim/src/telemetry/spans.rs", bad),
            vec!["hot-unwrap"]
        );
        let lookup = "let v = reg.counter_value(name);\n";
        assert_eq!(
            run("crates/netsim/src/telemetry/spans.rs", lookup),
            vec!["metric-lookup"]
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let text = "fn prod() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    fn f() { let x = v.pop().unwrap(); }\n\
                    }\n";
        assert!(run("crates/netsim/src/host.rs", text).is_empty());
    }

    #[test]
    fn unwrap_in_stripped_strings_is_ignored() {
        let text = "let msg = \"call .unwrap() here\";\n";
        assert!(run("crates/netsim/src/host.rs", text).is_empty());
    }
}
