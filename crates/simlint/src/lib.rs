//! simlint v2 — static analysis for the netsim workspace.
//!
//! A real lexer ([`lexer`]) feeds an item-recovery parser ([`items`])
//! that rebuilds `fn` definitions, struct fields, and call sites; a call
//! graph ([`callgraph`]) rooted at the event dispatch loop *computes*
//! the hot-path function/file set (no hard-coded lists); the passes
//! ([`rules`]) run over tokens and reachability; and a ratchet baseline
//! ([`baseline`]) lets reviewed findings persist with a justification
//! while failing CI on anything new.
//!
//! The crate is a library so the rules are testable against fixtures;
//! `src/main.rs` is a thin CLI over [`analyze_sources`] +
//! [`Baseline::ratchet`].

pub mod baseline;
pub mod callgraph;
pub mod items;
pub mod json;
pub mod lexer;
pub mod rules;

pub use baseline::{Baseline, RatchetResult};
pub use callgraph::RootSpec;
pub use rules::Finding;

use json::Json;
use std::collections::BTreeMap;
use std::path::Path;

/// Analysis configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Dispatch roots for hot-path reachability.
    pub roots: Vec<RootSpec>,
    /// Files exempt from determinism-taint (the config-loading layer is
    /// allowed to read the environment).
    pub config_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: vec![
                RootSpec::parse("Network::run_until").expect("static root"),
                RootSpec::parse("EventQueue::pop_batch").expect("static root"),
                // The chaos campaign's per-case loop: the convergence
                // audit and everything it reaches (port scans, route
                // recomputation, drain checks) runs once per generated
                // case, hundreds of times per campaign.
                RootSpec::parse("Network::check_convergence").expect("static root"),
            ],
            config_files: Vec::new(),
        }
    }
}

/// The outcome of one analysis run.
pub struct Analysis {
    /// Findings surviving inline `simlint: allow(…)` suppression, sorted
    /// by (file, line, rule, msg).
    pub findings: Vec<Finding>,
    /// Findings silenced by inline allow comments.
    pub suppressed_inline: usize,
    /// Computed hot-path files, sorted.
    pub hot_files: Vec<String>,
    /// Computed hot-path function labels (`Type::name (file)`), sorted.
    pub hot_fns: Vec<String>,
    /// The shard-safety report for ROADMAP 2b planning.
    pub shard_report: Json,
    /// Files analyzed.
    pub files: usize,
    /// Functions recovered.
    pub fns: usize,
    /// Call edges resolved.
    pub edges: usize,
}

/// Runs the full analysis over `(relative path, source)` pairs.
pub fn analyze_sources(sources: &[(String, String)], config: &Config) -> Analysis {
    let mut files: Vec<items::ParsedFile> = sources
        .iter()
        .map(|(rel, src)| items::parse_file(rel, src))
        .collect();

    // Workspace-wide receiver-typing tables.
    let mut field_ty: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut methods_of: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for f in &files {
        for fd in &f.fields {
            field_ty.insert((fd.owner.clone(), fd.name.clone()), fd.ty.clone());
        }
        for fun in &f.fns {
            if let Some(o) = &fun.owner {
                methods_of
                    .entry(o.clone())
                    .or_default()
                    .push(fun.name.clone());
            }
        }
    }
    for f in &mut files {
        items::type_calls(f, &field_ty, &methods_of);
    }

    let graph = callgraph::build(&files, &config.roots);
    let map_names = rules::collect_map_names(&files);
    let ctx = rules::PassCtx {
        files: &files,
        graph: &graph,
        map_names: &map_names,
        config_files: &config.config_files,
    };
    let all = rules::run_all(&ctx);

    let mut findings = Vec::new();
    let mut suppressed_inline = 0usize;
    for f in all {
        let raw = &files
            .iter()
            .find(|p| p.rel == f.file)
            .expect("finding refers to an analyzed file")
            .raw_lines;
        if rules::allowed(raw, f.line, f.rule) {
            suppressed_inline += 1;
        } else {
            findings.push(f);
        }
    }

    let shard_report = shard_report(&files, &graph, &findings);
    let fns = files.iter().map(|f| f.fns.len()).sum();

    Analysis {
        findings,
        suppressed_inline,
        hot_files: graph.hot_files.clone(),
        hot_fns: graph.hot_fn_labels(&files),
        shard_report,
        files: files.len(),
        fns,
        edges: graph.edges,
    }
}

/// The machine-readable shard-safety report: the work-list for sharded
/// execution (ROADMAP 2b). `ctx_mut_fns` is every hot function threading
/// `&mut Ctx` (state a sharded executor must split or fence);
/// `shared_constructs` counts unsuppressed shard-safety findings.
fn shard_report(
    files: &[items::ParsedFile],
    graph: &callgraph::CallGraph,
    findings: &[Finding],
) -> Json {
    let mut ctx_mut: Vec<String> = Vec::new();
    let mut per_file: BTreeMap<String, u64> = BTreeMap::new();
    for &(fi, gi) in &graph.hot {
        let file = &files[fi];
        let f = &file.fns[gi];
        if f.is_test {
            continue;
        }
        *per_file.entry(file.rel.clone()).or_insert(0) += 1;
        if f.params.iter().any(|(_, ty)| ty == "Ctx") || f.owner.as_deref() == Some("Ctx") {
            let label = match &f.owner {
                Some(o) => format!("{o}::{} ({})", f.name, file.rel),
                None => format!("{} ({})", f.name, file.rel),
            };
            ctx_mut.push(label);
        }
    }
    ctx_mut.sort();
    ctx_mut.dedup();
    let shared = findings.iter().filter(|f| f.rule == "shard-safety").count() as u64;
    let files_arr: Vec<Json> = per_file
        .into_iter()
        .map(|(rel, n)| {
            Json::Obj(vec![
                ("file".into(), Json::Str(rel)),
                ("hot_fns".into(), Json::UInt(n)),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "ctx_mut_fns".into(),
            Json::Arr(ctx_mut.into_iter().map(Json::Str).collect()),
        ),
        ("files".into(), Json::Arr(files_arr)),
        ("shared_constructs".into(), Json::UInt(shared)),
    ])
}

/// Directories never scanned (mirrors the legacy scanner, plus simlint
/// itself — its fixtures *contain* findings).
pub const SKIP_DIRS: [&str; 7] = [
    "simlint", "target", ".git", "tests", "benches", "examples", "fuzz",
];

/// Collects `(relative path, source)` for every workspace `.rs` file
/// under `<root>/crates`, sorted by path (`crates/…`-prefixed) for
/// deterministic output.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out: Vec<(String, String)> = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let src = std::fs::read_to_string(&path)?;
                out.push((rel, src));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Renders the full JSON report. Output is byte-stable: sorted findings,
/// sorted keys, fixed formatting.
pub fn render_report(analysis: &Analysis, ratchet: &RatchetResult) -> String {
    let findings: Vec<Json> = analysis
        .findings
        .iter()
        .map(|f| {
            let is_new = ratchet.new.contains(f);
            Json::Obj(vec![
                (
                    "chain".into(),
                    match &f.chain {
                        Some(c) => Json::Str(c.clone()),
                        None => Json::Null,
                    },
                ),
                ("file".into(), Json::Str(f.file.clone())),
                ("line".into(), Json::UInt(f.line as u64)),
                ("msg".into(), Json::Str(f.msg.clone())),
                ("new".into(), Json::Bool(is_new)),
                ("rule".into(), Json::Str(f.rule.to_owned())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("findings".into(), Json::Arr(findings)),
        (
            "hot_files".into(),
            Json::Arr(analysis.hot_files.iter().cloned().map(Json::Str).collect()),
        ),
        (
            "hot_fns".into(),
            Json::Arr(analysis.hot_fns.iter().cloned().map(Json::Str).collect()),
        ),
        ("schema".into(), Json::Str("simlint-v2".into())),
        ("shard_report".into(), analysis.shard_report.clone()),
        (
            "summary".into(),
            Json::Obj(vec![
                ("edges".into(), Json::UInt(analysis.edges as u64)),
                ("files".into(), Json::UInt(analysis.files as u64)),
                (
                    "findings".into(),
                    Json::UInt(analysis.findings.len() as u64),
                ),
                ("fns".into(), Json::UInt(analysis.fns as u64)),
                ("hot_fns".into(), Json::UInt(analysis.hot_fns.len() as u64)),
                ("new".into(), Json::UInt(ratchet.new.len() as u64)),
                (
                    "suppressed_baseline".into(),
                    Json::UInt(ratchet.suppressed as u64),
                ),
                (
                    "suppressed_inline".into(),
                    Json::UInt(analysis.suppressed_inline as u64),
                ),
            ]),
        ),
    ])
    .pretty()
}
