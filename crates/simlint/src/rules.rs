//! The passes. Five legacy rules (map-iter, counter-arith, float-cmp,
//! hot-unwrap, metric-lookup) reimplemented on the lexer + call-graph
//! engine, plus the three scale-arc passes (determinism-taint, hot-alloc,
//! shard-safety). Hot-path-scoped rules consult the computed reachable
//! set — no hard-coded file lists — and carry an example call chain from
//! the dispatch root in their message.

use crate::callgraph::{CallGraph, FnId};
use crate::items::ParsedFile;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name.
    pub rule: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
    /// Call chain from a dispatch root (hot-path rules only).
    pub chain: Option<String>,
}

/// Byte/occupancy counter identifiers covered by counter-arith. The rule
/// applies in every file that declares at least one of them as a
/// `u64`-typed struct field (computed, not a file list).
pub const COUNTER_TOKENS: [&str; 8] = [
    "occupied",
    "ingress",
    "queued_bytes",
    "egress_depth",
    "bytes_since_sample",
    "q_old",
    "wire",
    "free",
];

/// Map methods that iterate in unspecified order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Every rule, with a one-line description (used by `--help` and docs).
pub const RULES: [(&str, &str); 8] = [
    (
        "map-iter",
        "no iteration over HashMap/HashSet (or aliases) in library code — std hash order is per-process random",
    ),
    (
        "counter-arith",
        "byte/occupancy counters use netsim::units::checked, not bare +/-/as",
    ),
    (
        "float-cmp",
        "no partial_cmp().unwrap() (NaN panic); no ==/!= against float literals in stats code",
    ),
    (
        "hot-unwrap",
        "no unwrap()/expect() in dispatch-reachable functions",
    ),
    (
        "metric-lookup",
        "no string-keyed metric registry calls in dispatch-reachable functions",
    ),
    (
        "determinism-taint",
        "no ambient nondeterminism (Instant, SystemTime, env, RandomState, pointer-identity casts) reachable from dispatch",
    ),
    (
        "hot-alloc",
        "no steady-state allocation (Vec::new, Box::new, format!, clone, collect, …) in dispatch-reachable functions",
    ),
    (
        "shard-safety",
        "inventory of shared-mutable constructs (Rc, RefCell, Cell, static mut, thread_local!) in hot files",
    ),
];

/// Is `name` a known rule (or the `all` escape hatch)?
pub fn is_known_rule(name: &str) -> bool {
    name == "all" || RULES.iter().any(|(r, _)| *r == name)
}

/// Is the finding suppressed by `// simlint: allow(rule[, rule…])` on
/// the same or the preceding raw line? Rule names match **exactly**
/// (sharing a prefix with another rule can no longer silence it);
/// `allow(all)` silences every rule on that line.
pub fn allowed(raw_lines: &[String], line: u32, rule: &str) -> bool {
    let check = |l: &str| -> bool {
        let mut rest = l;
        while let Some(pos) = rest.find("simlint: allow(") {
            let inner = &rest[pos + "simlint: allow(".len()..];
            if let Some(close) = inner.find(')') {
                if inner[..close]
                    .split(',')
                    .map(str::trim)
                    .any(|r| r == rule || r == "all")
                {
                    return true;
                }
                rest = &inner[close..];
            } else {
                break;
            }
        }
        false
    };
    let idx = line as usize;
    (idx >= 1 && raw_lines.get(idx - 1).is_some_and(|l| check(l)))
        || (idx >= 2 && raw_lines.get(idx - 2).is_some_and(|l| check(l)))
}

/// Context shared by the passes.
pub struct PassCtx<'a> {
    /// All parsed files.
    pub files: &'a [ParsedFile],
    /// The computed call graph.
    pub graph: &'a CallGraph,
    /// Identifiers bound to map types anywhere in non-test code.
    pub map_names: &'a BTreeSet<String>,
    /// Files exempt from determinism-taint (the config layer).
    pub config_files: &'a [String],
}

/// Collects identifiers bound to `HashMap`/`HashSet` (or an alias of
/// them) across all non-test code: type ascriptions (`name: RouteTable`)
/// and constructor bindings (`name = HashMap::new()`).
pub fn collect_map_names(files: &[ParsedFile]) -> BTreeSet<String> {
    let mut types: BTreeSet<String> = ["HashMap", "HashSet"]
        .into_iter()
        .map(str::to_owned)
        .collect();
    for f in files {
        for a in &f.map_aliases {
            types.insert(a.clone());
        }
    }
    let mut names = BTreeSet::new();
    for f in files {
        let toks = &f.tokens;
        for (i, t) in toks.iter().enumerate() {
            if f.test_tok[i] || t.kind != TokKind::Ident || !types.contains(&t.text) {
                continue;
            }
            // Walk back over path qualifiers (`std::collections::HashMap`).
            let mut j = i;
            while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
                j -= 2;
            }
            if j == 0 {
                continue;
            }
            let prev = &toks[j - 1];
            let binder = if prev.is_punct(":") || prev.is_punct("=") {
                // `::` path segments were consumed above, so a lone `:`
                // here is a real type ascription.
                toks.get(j.wrapping_sub(2))
            } else {
                None
            };
            if let Some(b) = binder {
                if b.kind == TokKind::Ident
                    && !b.text.is_empty()
                    && !types.contains(&b.text)
                    && b.text != "type"
                {
                    names.insert(b.text.clone());
                }
            }
        }
    }
    names
}

/// All passes, in rule order. Suppressions are applied by the caller.
pub fn run_all(ctx: &PassCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    map_iter(ctx, &mut out);
    counter_arith(ctx, &mut out);
    float_cmp(ctx, &mut out);
    hot_unwrap(ctx, &mut out);
    metric_lookup(ctx, &mut out);
    determinism_taint(ctx, &mut out);
    hot_alloc(ctx, &mut out);
    shard_safety(ctx, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule, &a.msg).cmp(&(&b.file, b.line, b.rule, &b.msg)));
    out
}

// ---- map-iter -----------------------------------------------------------

fn map_iter(ctx: &PassCtx<'_>, out: &mut Vec<Finding>) {
    for f in ctx.files {
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if f.test_tok[i] {
                continue;
            }
            let t = &toks[i];
            // `recv.iter()` forms.
            if t.kind == TokKind::Ident
                && ctx.map_names.contains(&t.text)
                && matches!(toks.get(i + 1), Some(d) if d.is_punct("."))
                && matches!(toks.get(i + 2), Some(m) if m.kind == TokKind::Ident
                    && ITER_METHODS.contains(&m.text.as_str()))
                && matches!(toks.get(i + 3), Some(p) if p.is_punct("("))
            {
                out.push(Finding {
                    rule: "map-iter",
                    file: f.rel.clone(),
                    line: t.line,
                    msg: format!(
                        "`{}.{}()` iterates a HashMap/HashSet in unspecified order; \
                         use a BTreeMap, a sorted Vec, or an insertion-order list",
                        t.text,
                        toks[i + 2].text
                    ),
                    chain: None,
                });
            }
            // `for … in [&[mut]] name {` forms.
            if t.is_ident("for") {
                // Find `in` at bracket depth 0, then the `{` opening the body.
                let mut j = i + 1;
                let mut depth = 0isize;
                let mut in_at = None;
                while j < toks.len() && j < i + 24 {
                    let tj = &toks[j];
                    if tj.is_punct("(") || tj.is_punct("[") {
                        depth += 1;
                    } else if tj.is_punct(")") || tj.is_punct("]") {
                        depth -= 1;
                    } else if depth == 0 && tj.is_ident("in") {
                        in_at = Some(j);
                        break;
                    }
                    j += 1;
                }
                let Some(in_at) = in_at else { continue };
                let mut k = in_at + 1;
                depth = 0;
                let mut body_at = None;
                while k < toks.len() {
                    let tk = &toks[k];
                    if tk.is_punct("(") || tk.is_punct("[") {
                        depth += 1;
                    } else if tk.is_punct(")") || tk.is_punct("]") {
                        depth -= 1;
                    } else if depth == 0 && tk.is_punct("{") {
                        body_at = Some(k);
                        break;
                    }
                    k += 1;
                }
                let Some(body_at) = body_at else { continue };
                if body_at == in_at + 1 {
                    continue;
                }
                let last = &toks[body_at - 1];
                let before = &toks[body_at - 2];
                if last.kind == TokKind::Ident
                    && ctx.map_names.contains(&last.text)
                    && (before.is_punct(".")
                        || before.is_punct("&")
                        || before.is_ident("in")
                        || before.is_ident("mut"))
                {
                    out.push(Finding {
                        rule: "map-iter",
                        file: f.rel.clone(),
                        line: t.line,
                        msg: format!(
                            "`for .. in {}` iterates a HashMap/HashSet in unspecified order",
                            last.text
                        ),
                        chain: None,
                    });
                }
            }
        }
    }
}

// ---- counter-arith ------------------------------------------------------

fn counter_arith(ctx: &PassCtx<'_>, out: &mut Vec<Finding>) {
    for f in ctx.files {
        // The rule applies in files that declare a u64-typed counter field.
        let declares = f
            .fields
            .iter()
            .any(|fd| fd.is_u64 && COUNTER_TOKENS.contains(&fd.name.as_str()));
        if !declares {
            continue;
        }
        for (line, range) in line_ranges(&f.tokens) {
            if f.test_tok[range.start] {
                continue;
            }
            let toks = &f.tokens[range.clone()];
            let touches = toks
                .iter()
                .any(|t| t.kind == TokKind::Ident && COUNTER_TOKENS.contains(&t.text.as_str()));
            if !touches {
                continue;
            }
            let kind = if toks.iter().any(|t| t.is_punct("+=") || t.is_punct("-=")) {
                Some("compound assignment")
            } else if toks.iter().any(|t| t.is_punct("+")) {
                Some("bare `+`")
            } else if has_binary_minus(toks) {
                Some("bare `-`")
            } else if toks.iter().any(|t| t.is_ident("as")) {
                Some("bare `as` cast")
            } else {
                None
            };
            if let Some(kind) = kind {
                out.push(Finding {
                    rule: "counter-arith",
                    file: f.rel.clone(),
                    line,
                    msg: format!(
                        "{kind} on a byte/occupancy counter; use netsim::units::checked \
                         (checked_accum, checked_drain, scale_bytes, bytes_to_f64) or a \
                         saturating_* method"
                    ),
                    chain: None,
                });
            }
        }
    }
}

/// `-` used as a binary operator within a line's tokens (the lexer makes
/// `->` a separate token, so only real minus signs are seen here).
fn has_binary_minus(toks: &[Tok]) -> bool {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct("-") {
            continue;
        }
        if i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let binary = matches!(prev.kind, TokKind::Ident | TokKind::Num)
            || prev.is_punct(")")
            || prev.is_punct("]");
        if binary && !prev.is_ident("return") && !prev.is_ident("as") {
            return true;
        }
    }
    false
}

// ---- float-cmp ----------------------------------------------------------

fn float_cmp(ctx: &PassCtx<'_>, out: &mut Vec<Finding>) {
    for f in ctx.files {
        let is_stats = f.rel.ends_with("stats.rs");
        for (line, range) in line_ranges(&f.tokens) {
            if f.test_tok[range.start] {
                continue;
            }
            let toks = &f.tokens[range.clone()];
            let has_pc = toks.iter().any(|t| t.is_ident("partial_cmp"));
            let has_unwrap = toks
                .iter()
                .any(|t| t.is_ident("unwrap") || t.is_ident("expect"));
            if has_pc && has_unwrap {
                out.push(Finding {
                    rule: "float-cmp",
                    file: f.rel.clone(),
                    line,
                    msg: "`partial_cmp().unwrap()` panics on NaN; use `total_cmp`".into(),
                    chain: None,
                });
            }
            if is_stats {
                for (i, t) in toks.iter().enumerate() {
                    if !(t.is_punct("==") || t.is_punct("!=")) {
                        continue;
                    }
                    let float_side = [i.checked_sub(1), Some(i + 1)]
                        .into_iter()
                        .flatten()
                        .filter_map(|k| toks.get(k))
                        .any(|n| n.is_float());
                    if float_side {
                        out.push(Finding {
                            rule: "float-cmp",
                            file: f.rel.clone(),
                            line,
                            msg: "exact equality against a float literal in stats code; \
                                  use an epsilon or integer domain"
                                .into(),
                            chain: None,
                        });
                        break;
                    }
                }
            }
        }
    }
}

// ---- hot-path passes ----------------------------------------------------

/// Iterates all hot, non-test functions with their file and chain.
fn for_hot_fns(ctx: &PassCtx<'_>, mut visit: impl FnMut(&ParsedFile, FnId, &str)) {
    for &id in &ctx.graph.hot {
        let file = &ctx.files[id.0];
        let f = &file.fns[id.1];
        if f.is_test {
            continue;
        }
        let chain = ctx.graph.chain(ctx.files, id);
        visit(file, id, &chain);
    }
}

fn hot_unwrap(ctx: &PassCtx<'_>, out: &mut Vec<Finding>) {
    for_hot_fns(ctx, |file, id, chain| {
        let body = &file.fns[id.1].body;
        let toks = &file.tokens;
        for i in body.clone() {
            if !toks[i].is_punct(".") {
                continue;
            }
            let Some(m) = toks.get(i + 1) else { continue };
            if (m.is_ident("unwrap") || m.is_ident("expect"))
                && matches!(toks.get(i + 2), Some(p) if p.is_punct("("))
            {
                out.push(Finding {
                    rule: "hot-unwrap",
                    file: file.rel.clone(),
                    line: m.line,
                    msg: "`unwrap()`/`expect()` in a dispatch-reachable function; use \
                          let-else with a degrade path (drop + debug_assert)"
                        .into(),
                    chain: Some(chain.to_owned()),
                });
            }
        }
    });
}

fn metric_lookup(ctx: &PassCtx<'_>, out: &mut Vec<Finding>) {
    for_hot_fns(ctx, |file, id, chain| {
        let body = &file.fns[id.1].body;
        let toks = &file.tokens;
        for i in body.clone() {
            if !toks[i].is_punct(".") {
                continue;
            }
            let Some(m) = toks.get(i + 1) else { continue };
            if m.kind != TokKind::Ident {
                continue;
            }
            let registration = ["counter", "gauge", "histogram"].contains(&m.text.as_str())
                && matches!(toks.get(i + 2), Some(p) if p.is_punct("("))
                && matches!(toks.get(i + 3), Some(s) if s.kind == TokKind::Str);
            let by_name = ["counter_value", "gauge_value", "hist_by_name"]
                .contains(&m.text.as_str())
                && matches!(toks.get(i + 2), Some(p) if p.is_punct("("));
            if registration || by_name {
                out.push(Finding {
                    rule: "metric-lookup",
                    file: file.rel.clone(),
                    line: m.line,
                    msg: format!(
                        "`.{}(…)` string-keyed metric access in a dispatch-reachable \
                         function; resolve a CounterId/GaugeId/HistId handle at \
                         registration and index through it",
                        m.text
                    ),
                    chain: Some(chain.to_owned()),
                });
            }
        }
    });
}

fn determinism_taint(ctx: &PassCtx<'_>, out: &mut Vec<Finding>) {
    for_hot_fns(ctx, |file, id, chain| {
        if ctx.config_files.iter().any(|c| c == &file.rel) {
            return;
        }
        let body = &file.fns[id.1].body;
        let toks = &file.tokens;
        for i in body.clone() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let what: Option<&str> = match t.text.as_str() {
                "Instant" => Some("wall-clock `Instant` read"),
                "SystemTime" => Some("wall-clock `SystemTime` read"),
                "RandomState" | "DefaultHasher" => Some("per-process randomized hasher"),
                "FxHashMap" | "FxHasher" | "fxhash" => Some("address-sensitive fxhash"),
                "env" if matches!(toks.get(i + 1), Some(n) if n.is_punct("::")) => {
                    Some("process-environment read")
                }
                "thread"
                    if matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
                        && matches!(toks.get(i + 2), Some(m) if m.is_ident("current")
                            || m.is_ident("available_parallelism")
                            || m.is_ident("sleep")
                            || m.is_ident("spawn")) =>
                {
                    Some("thread-identity/scheduling dependence")
                }
                "as" if matches!(toks.get(i + 1), Some(s) if s.is_punct("*"))
                    && matches!(toks.get(i + 2), Some(c) if c.is_ident("const") || c.is_ident("mut")) =>
                {
                    Some("pointer-identity cast (addresses as values)")
                }
                _ => None,
            };
            if let Some(what) = what {
                out.push(Finding {
                    rule: "determinism-taint",
                    file: file.rel.clone(),
                    line: t.line,
                    msg: format!(
                        "{what} reachable from the dispatch loop breaks \
                         byte-identical replay (run = f(config, seed))"
                    ),
                    chain: Some(chain.to_owned()),
                });
            }
        }
    });
}

fn hot_alloc(ctx: &PassCtx<'_>, out: &mut Vec<Finding>) {
    const ALLOC_TYPES: [&str; 8] = [
        "Vec", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "String", "Box",
    ];
    const ALLOC_MACROS: [&str; 4] = ["vec", "format", "println", "eprintln"];
    const ALLOC_METHODS: [&str; 5] = ["to_string", "to_owned", "to_vec", "collect", "clone"];
    for_hot_fns(ctx, |file, id, chain| {
        let body = &file.fns[id.1].body;
        let toks = &file.tokens;
        for i in body.clone() {
            let t = &toks[i];
            let what: Option<String> = if t.kind == TokKind::Ident
                && ALLOC_TYPES.contains(&t.text.as_str())
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
                && matches!(toks.get(i + 2), Some(m) if m.is_ident("new")
                    || m.is_ident("with_capacity")
                    || m.is_ident("from"))
            {
                Some(format!("`{}::{}`", t.text, toks[i + 2].text))
            } else if t.kind == TokKind::Ident
                && ALLOC_MACROS.contains(&t.text.as_str())
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
            {
                Some(format!("`{}!`", t.text))
            } else if t.is_punct(".")
                && matches!(toks.get(i + 1), Some(m) if m.kind == TokKind::Ident
                    && ALLOC_METHODS.contains(&m.text.as_str()))
                && matches!(toks.get(i + 2), Some(p) if p.is_punct("(") || p.is_punct("::"))
            {
                Some(format!("`.{}()`", toks[i + 1].text))
            } else {
                None
            };
            if let Some(what) = what {
                let line = if t.is_punct(".") {
                    toks[i + 1].line
                } else {
                    t.line
                };
                out.push(Finding {
                    rule: "hot-alloc",
                    file: file.rel.clone(),
                    line,
                    msg: format!(
                        "{what} in a dispatch-reachable function allocates in steady \
                         state; reuse a scratch buffer, reserve capacity up front, or \
                         move the work off the hot path"
                    ),
                    chain: Some(chain.to_owned()),
                });
            }
        }
    });
}

fn shard_safety(ctx: &PassCtx<'_>, out: &mut Vec<Finding>) {
    // Whole hot *files* (module-level statics live outside any fn).
    let hot_files: BTreeSet<&str> = ctx.graph.hot_files.iter().map(String::as_str).collect();
    for f in ctx.files {
        if !hot_files.contains(f.rel.as_str()) {
            continue;
        }
        let toks = &f.tokens;
        // `use` lines only import names; the construct is flagged where
        // it is declared or stored.
        let use_lines: BTreeSet<u32> = line_ranges(toks)
            .into_iter()
            .filter(|(_, r)| toks[r.start].is_ident("use"))
            .map(|(l, _)| l)
            .collect();
        for i in 0..toks.len() {
            if f.test_tok[i] {
                continue;
            }
            let t = &toks[i];
            if t.kind != TokKind::Ident || use_lines.contains(&t.line) {
                continue;
            }
            let what: Option<&str> = match t.text.as_str() {
                "Rc" if followed_by_type_use(toks, i) => Some("`Rc` (non-atomic shared ownership)"),
                "RefCell" => Some("`RefCell` (unsynchronized interior mutability)"),
                "UnsafeCell" => Some("`UnsafeCell`"),
                "Cell" if followed_by_type_use(toks, i) => {
                    Some("`Cell` (unsynchronized interior mutability)")
                }
                "static" if matches!(toks.get(i + 1), Some(m) if m.is_ident("mut")) => {
                    Some("`static mut` (global mutable state)")
                }
                "thread_local" if matches!(toks.get(i + 1), Some(n) if n.is_punct("!")) => {
                    Some("`thread_local!` (per-worker divergence)")
                }
                _ => None,
            };
            if let Some(what) = what {
                out.push(Finding {
                    rule: "shard-safety",
                    file: f.rel.clone(),
                    line: t.line,
                    msg: format!(
                        "{what} in a hot-path module would poison deterministic \
                         sharded execution (ROADMAP 2b); use per-shard state or a \
                         message-passing boundary"
                    ),
                    chain: None,
                });
            }
        }
    }
}

/// `Rc`/`Cell` only count when used as a type or constructor (`Rc<`,
/// `Rc::new`) — a local variable merely *named* `rc` stays an `Ident`
/// with different text, but an enum variant `Cell` in a match arm should
/// not fire.
fn followed_by_type_use(toks: &[Tok], i: usize) -> bool {
    matches!(toks.get(i + 1), Some(n) if n.is_punct("<") || n.is_punct("::"))
}

/// Groups a token stream into per-line index ranges.
fn line_ranges(toks: &[Tok]) -> Vec<(u32, std::ops::Range<usize>)> {
    let mut out: Vec<(u32, std::ops::Range<usize>)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match out.last_mut() {
            Some((line, range)) if *line == t.line => range.end = i + 1,
            _ => out.push((t.line, i..i + 1)),
        }
    }
    out
}
