//! The intra-workspace call graph, rooted at the event dispatch loop.
//!
//! The hot-path file/function set is **computed** here instead of being
//! a hard-coded file list: every function reachable from the roots
//! (`Network::run_until`, `EventQueue::pop_batch` by default) is hot,
//! and each hot function carries one example call chain from a root for
//! diagnostics.
//!
//! Resolution is deliberately over-approximate where types are unknown —
//! a lint would rather check a cold function than miss a hot one — but
//! three mechanisms keep the over-approximation tight:
//!
//! 1. `self.method(…)` resolves exactly against the enclosing impl type.
//! 2. `self.field.method(…)` / `param.method(…)` / `param.field.method(…)`
//!    chains resolve through the workspace-wide struct-field table.
//! 3. Untyped method calls resolve by name across workspace `&self`
//!    methods — except names shadowed by std collections (`push`, `get`,
//!    `take`, …), which would otherwise drag cold code into the hot set
//!    through every `Vec::push`.

use crate::items::{Call, FnDef, ParsedFile, STD_SHADOWED};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A function's globally unique id: (file index, fn index).
pub type FnId = (usize, usize);

/// The computed graph and reachability.
pub struct CallGraph {
    /// Hot (dispatch-reachable) functions.
    pub hot: BTreeSet<FnId>,
    /// BFS parent of each hot function (roots map to themselves).
    parent: BTreeMap<FnId, FnId>,
    /// Files containing at least one hot function, sorted.
    pub hot_files: Vec<String>,
    /// Total resolved call edges (for the summary).
    pub edges: usize,
}

/// A dispatch root: `Type::method` (owner required — roots are methods
/// on the simulator's core types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootSpec {
    /// The owning type.
    pub owner: String,
    /// The method name.
    pub method: String,
}

impl RootSpec {
    /// Parses `"Type::method"`.
    pub fn parse(s: &str) -> Option<RootSpec> {
        let (owner, method) = s.split_once("::")?;
        if owner.is_empty() || method.is_empty() {
            return None;
        }
        Some(RootSpec {
            owner: owner.to_owned(),
            method: method.to_owned(),
        })
    }
}

/// Builds the call graph over all parsed files and computes reachability
/// from `roots`.
pub fn build(files: &[ParsedFile], roots: &[RootSpec]) -> CallGraph {
    // Index non-test defs three ways.
    let mut by_owner: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
    let mut by_method: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let id = (fi, gi);
            if let Some(owner) = &f.owner {
                by_owner
                    .entry((owner.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
            if f.has_self {
                by_method.entry(f.name.clone()).or_default().push(id);
            }
            if f.owner.is_none() {
                free_by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
    }

    let def = |id: FnId| -> &FnDef { &files[id.0].fns[id.1] };

    // Resolve one call from within `from` to target defs.
    let resolve = |from: FnId, call: &Call, out: &mut Vec<FnId>| {
        match call {
            Call::Typed(ty, name) => {
                if let Some(ids) = by_owner.get(&(ty.clone(), name.clone())) {
                    out.extend(ids.iter().copied());
                }
            }
            Call::Path(q, name) => {
                let owner = if q == "Self" {
                    match &def(from).owner {
                        Some(o) => o.clone(),
                        None => return,
                    }
                } else {
                    q.clone()
                };
                if let Some(ids) = by_owner.get(&(owner, name.clone())) {
                    out.extend(ids.iter().copied());
                }
            }
            Call::Method(name) => {
                // Exact self-dispatch first: the enclosing type's own method.
                if let Some(owner) = &def(from).owner {
                    if let Some(ids) = by_owner.get(&(owner.clone(), name.clone())) {
                        out.extend(ids.iter().copied());
                        // Self-dispatch does not suppress other candidates:
                        // the receiver may not have been `self`.
                    }
                }
                if !STD_SHADOWED.contains(&name.as_str()) {
                    if let Some(ids) = by_method.get(name) {
                        out.extend(ids.iter().copied());
                    }
                }
            }
            Call::Free(name) => {
                if let Some(ids) = free_by_name.get(name) {
                    out.extend(ids.iter().copied());
                }
            }
            Call::Macro(_) => {}
        }
    };

    // Roots.
    let mut queue: VecDeque<FnId> = VecDeque::new();
    let mut hot: BTreeSet<FnId> = BTreeSet::new();
    let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
    for r in roots {
        if let Some(ids) = by_owner.get(&(r.owner.clone(), r.method.clone())) {
            for &id in ids {
                if hot.insert(id) {
                    parent.insert(id, id);
                    queue.push_back(id);
                }
            }
        }
    }

    // BFS.
    let mut edges = 0usize;
    let mut targets: Vec<FnId> = Vec::new();
    while let Some(from) = queue.pop_front() {
        for call in &def(from).calls {
            targets.clear();
            resolve(from, call, &mut targets);
            edges += targets.len();
            for &t in &targets {
                if hot.insert(t) {
                    parent.insert(t, from);
                    queue.push_back(t);
                }
            }
        }
    }

    let mut hot_files: BTreeSet<String> = BTreeSet::new();
    for &(fi, _) in &hot {
        hot_files.insert(files[fi].rel.clone());
    }

    CallGraph {
        hot,
        parent,
        hot_files: hot_files.into_iter().collect(),
        edges,
    }
}

impl CallGraph {
    /// Is this function dispatch-reachable?
    pub fn is_hot(&self, id: FnId) -> bool {
        self.hot.contains(&id)
    }

    /// One example call chain from a root to `id`, rendered as
    /// `Network::run_until → Host::receive → …`.
    pub fn chain(&self, files: &[ParsedFile], id: FnId) -> String {
        let label = |id: FnId| -> String {
            let f = &files[id.0].fns[id.1];
            match &f.owner {
                Some(o) => format!("{o}::{}", f.name),
                None => f.name.clone(),
            }
        };
        let mut parts = vec![label(id)];
        let mut cur = id;
        // Bounded walk (cycles map roots to themselves).
        for _ in 0..64 {
            match self.parent.get(&cur) {
                Some(&p) if p != cur => {
                    parts.push(label(p));
                    cur = p;
                }
                _ => break,
            }
        }
        parts.reverse();
        parts.join(" → ")
    }

    /// Sorted labels of all hot functions (`Type::name` or `name`).
    pub fn hot_fn_labels(&self, files: &[ParsedFile]) -> Vec<String> {
        let mut v: Vec<String> = self
            .hot
            .iter()
            .map(|&(fi, gi)| {
                let f = &files[fi].fns[gi];
                match &f.owner {
                    Some(o) => format!("{}::{} ({})", o, f.name, files[fi].rel),
                    None => format!("{} ({})", f.name, files[fi].rel),
                }
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn graph(srcs: &[(&str, &str)], roots: &[&str]) -> (Vec<ParsedFile>, CallGraph) {
        let mut files: Vec<ParsedFile> = srcs.iter().map(|(rel, s)| parse_file(rel, s)).collect();
        let mut field_ty = BTreeMap::new();
        let mut methods_of: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for f in &files {
            for fd in &f.fields {
                field_ty.insert((fd.owner.clone(), fd.name.clone()), fd.ty.clone());
            }
            for fun in &f.fns {
                if let Some(o) = &fun.owner {
                    methods_of
                        .entry(o.clone())
                        .or_default()
                        .push(fun.name.clone());
                }
            }
        }
        for f in &mut files {
            crate::items::type_calls(f, &field_ty, &methods_of);
        }
        let roots: Vec<RootSpec> = roots.iter().filter_map(|r| RootSpec::parse(r)).collect();
        let g = build(&files, &roots);
        (files, g)
    }

    #[test]
    fn reaches_through_self_field_and_name_dispatch() {
        let (files, g) = graph(
            &[
                (
                    "a.rs",
                    "pub struct Network { pub ctx: Ctx }\n\
                     pub struct Ctx { pub queue: EventQueue }\n\
                     impl Network {\n\
                         pub fn run_until(&mut self) { self.dispatch(); }\n\
                         fn dispatch(&mut self) { self.ctx.queue.schedule(); unrelated.receive(); }\n\
                         fn cold(&mut self) { }\n\
                     }\n",
                ),
                (
                    "b.rs",
                    "pub struct EventQueue;\n\
                     impl EventQueue { pub fn schedule(&mut self) { helper(); } }\n\
                     fn helper() {}\n\
                     pub struct Host;\n\
                     impl Host { pub fn receive(&mut self) {} }\n\
                     pub struct Cold;\n\
                     impl Cold { pub fn never(&mut self) {} }\n",
                ),
            ],
            &["Network::run_until"],
        );
        let labels = g.hot_fn_labels(&files);
        let names: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        assert!(names.iter().any(|s| s.starts_with("Network::run_until")));
        assert!(names.iter().any(|s| s.starts_with("Network::dispatch")));
        assert!(names.iter().any(|s| s.starts_with("EventQueue::schedule")));
        assert!(names.iter().any(|s| s.starts_with("helper")));
        // Name-based dispatch on an untyped receiver.
        assert!(names.iter().any(|s| s.starts_with("Host::receive")));
        // Unreached code stays cold.
        assert!(!names.iter().any(|s| s.starts_with("Network::cold")));
        assert!(!names.iter().any(|s| s.starts_with("Cold::never")));
    }

    #[test]
    fn std_shadowed_names_do_not_leak_heat() {
        let (files, g) = graph(
            &[(
                "a.rs",
                "pub struct Q;\n\
                 impl Q { pub fn pop_batch(&mut self) { self.items.push(1); } }\n\
                 pub struct Json;\n\
                 impl Json { pub fn push(&mut self) { } }\n",
            )],
            &["Q::pop_batch"],
        );
        let labels = g.hot_fn_labels(&files);
        assert_eq!(labels.len(), 1, "only the root is hot: {labels:?}");
    }

    #[test]
    fn trait_object_calls_resolve_to_all_impls() {
        let (files, g) = graph(
            &[(
                "a.rs",
                "pub struct Host { pub cc: Box<dyn CongestionControl> }\n\
                 impl Host { pub fn run_until(&mut self) { self.cc.on_ecn(); } }\n\
                 pub struct Dcqcn;\n\
                 impl CongestionControl for Dcqcn { fn on_ecn(&mut self) {} }\n\
                 pub struct Timely;\n\
                 impl CongestionControl for Timely { fn on_ecn(&mut self) {} }\n",
            )],
            &["Host::run_until"],
        );
        let labels = g.hot_fn_labels(&files);
        assert!(labels.iter().any(|s| s.starts_with("Dcqcn::on_ecn")));
        assert!(labels.iter().any(|s| s.starts_with("Timely::on_ecn")));
    }

    #[test]
    fn chains_trace_back_to_a_root() {
        let (files, g) = graph(
            &[(
                "a.rs",
                "pub struct N;\n\
                 impl N {\n\
                     pub fn run_until(&mut self) { self.dispatch(); }\n\
                     fn dispatch(&mut self) { leaf(); }\n\
                 }\n\
                 fn leaf() {}\n",
            )],
            &["N::run_until"],
        );
        let leaf = g
            .hot
            .iter()
            .copied()
            .find(|&id| files[id.0].fns[id.1].name == "leaf")
            .unwrap();
        assert_eq!(g.chain(&files, leaf), "N::run_until → N::dispatch → leaf");
    }

    #[test]
    fn test_fns_are_invisible_to_the_graph() {
        let (files, g) = graph(
            &[(
                "a.rs",
                "pub struct N;\n\
                 impl N { pub fn run_until(&mut self) {} }\n\
                 #[cfg(test)]\n\
                 mod tests {\n\
                     fn run_until() { horror(); }\n\
                     fn horror() {}\n\
                 }\n",
            )],
            &["N::run_until"],
        );
        assert_eq!(g.hot.len(), 1);
        let _ = files;
    }
}
