#![warn(missing_docs)]

//! # roce — a verbs-style RDMA API over the simulated fabric
//!
//! The paper's applications talk to the network through InfiniBand verbs:
//! queue pairs, posted work requests, completion queues. This crate puts
//! that familiar surface over `netsim`, so workloads written against a
//! verbs-shaped API can run on the simulated RoCEv2 fabric unchanged in
//! structure:
//!
//! * [`Rdma`] — the "device": owns the [`netsim::network::Network`],
//! * [`QpHandle`] — a reliable-connected queue pair between two hosts,
//! * [`Rdma::post_write`] / [`Rdma::post_read`] — single-sided operations
//!   (a READ is modelled as the responder streaming the bytes back, which
//!   is exactly what the wire does),
//! * [`Rdma::poll_cq`] — drain work completions.
//!
//! ```
//! use roce::{Rdma, RdmaConfig};
//! use netsim::prelude::*;
//! use netsim::topology::LinkParams;
//!
//! let mut rdma = Rdma::star(4, LinkParams::default(), RdmaConfig::default(), 7);
//! let (a, b) = (rdma.hosts()[0], rdma.hosts()[1]);
//! let qp = rdma.create_qp(a, b);
//! let wr1 = rdma.post_write(qp, 1_000_000, Time::ZERO);
//! let wr2 = rdma.post_write(qp, 4_000_000, Time::ZERO);
//! rdma.net.run_until(Time::from_millis(5));
//! let done = rdma.poll_cq(qp);
//! assert_eq!(done.len(), 2);
//! assert_eq!(done[0].wr_id, wr1);
//! assert_eq!(done[1].wr_id, wr2);
//! assert!(done[1].goodput_gbps() > 10.0);
//! ```

use dcqcn::params::DcqcnParams;
use dcqcn::rp::DcqcnRp;
use netsim::cc::{CongestionControl, NoCc};
use netsim::event::NodeId;
use netsim::host::HostConfig;
use netsim::network::Network;
use netsim::packet::{FlowId, Priority, DATA_PRIORITY};
use netsim::switch::SwitchConfig;
use netsim::topology::{self, LinkParams};
use netsim::units::{Bandwidth, Time};
use std::collections::HashMap;

/// Which congestion control the device runs on its queue pairs.
#[derive(Debug, Clone, Copy)]
pub enum CcMode {
    /// DCQCN with the given parameters (the paper's deployment).
    Dcqcn(DcqcnParams),
    /// PFC only.
    None,
}

/// Device-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct RdmaConfig {
    /// Congestion control for all QPs.
    pub cc: CcMode,
    /// Traffic class of data packets.
    pub priority: Priority,
}

impl Default for RdmaConfig {
    /// DCQCN with the deployed parameters on the default data class.
    fn default() -> RdmaConfig {
        RdmaConfig {
            cc: CcMode::Dcqcn(DcqcnParams::paper()),
            priority: DATA_PRIORITY,
        }
    }
}

impl RdmaConfig {
    fn host_config(&self) -> HostConfig {
        match self.cc {
            CcMode::Dcqcn(p) => dcqcn::dcqcn_host_config(p),
            CcMode::None => HostConfig {
                cnp_interval: None,
                ..HostConfig::default()
            },
        }
    }

    fn switch_config(&self) -> SwitchConfig {
        match self.cc {
            CcMode::Dcqcn(_) => {
                SwitchConfig::paper_default().with_red(dcqcn::params::red_deployed())
            }
            CcMode::None => SwitchConfig::paper_default(),
        }
    }

    fn make_cc(&self, line: Bandwidth) -> Box<dyn CongestionControl> {
        match self.cc {
            CcMode::Dcqcn(p) => Box::new(DcqcnRp::new(line, p)),
            CcMode::None => Box::new(NoCc::new(line)),
        }
    }
}

/// Handle to a reliable-connected queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpHandle(usize);

/// Completion status of a work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcStatus {
    /// Completed successfully.
    Success,
    /// The QP died (transport retry exhaustion) before completion.
    RetryExceeded,
}

/// A work completion, in posting order.
#[derive(Debug, Clone, Copy)]
pub struct WorkCompletion {
    /// The id returned by `post_*`.
    pub wr_id: u64,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// When the operation was posted.
    pub posted: Time,
    /// When the last byte was acknowledged.
    pub completed: Time,
    /// Outcome.
    pub status: WcStatus,
}

impl WorkCompletion {
    /// End-to-end goodput of this operation in Gbps (includes queueing
    /// behind earlier work requests on the same QP).
    pub fn goodput_gbps(&self) -> f64 {
        let secs = (self.completed - self.posted).as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.bytes as f64 * 8.0 / secs / 1e9
        }
    }
}

#[derive(Debug)]
struct QpState {
    /// Initiator → responder flow (WRITE direction).
    tx_flow: FlowId,
    /// Responder → initiator flow (READ data direction), created lazily.
    rx_flow: Option<FlowId>,
    initiator: NodeId,
    responder: NodeId,
    /// Next work-request id.
    next_wr: u64,
    /// wr ids of posted tx-direction ops, in order.
    tx_wrs: Vec<(u64, Time)>,
    /// wr ids of posted rx-direction (READ) ops, in order.
    rx_wrs: Vec<(u64, Time)>,
    /// Completions already drained per direction.
    tx_polled: usize,
    rx_polled: usize,
}

/// The RDMA "device": a simulated fabric plus verbs bookkeeping.
pub struct Rdma {
    /// The underlying network (fully accessible for advanced use).
    pub net: Network,
    config: RdmaConfig,
    hosts: Vec<NodeId>,
    qps: Vec<QpState>,
    qp_by_flow: HashMap<FlowId, QpHandle>,
}

impl Rdma {
    /// Wraps an existing network.
    pub fn new(net: Network, hosts: Vec<NodeId>, config: RdmaConfig) -> Rdma {
        Rdma {
            net,
            config,
            hosts,
            qps: Vec::new(),
            qp_by_flow: HashMap::new(),
        }
    }

    /// Builds `n` hosts around a single switch (the quickest fabric).
    pub fn star(n: usize, link: LinkParams, config: RdmaConfig, seed: u64) -> Rdma {
        let star = topology::star(n, link, config.host_config(), config.switch_config(), seed);
        Rdma::new(star.net, star.hosts, config)
    }

    /// Builds the paper's Figure 2 Clos testbed with `hosts_per_tor`
    /// hosts per rack.
    pub fn clos(hosts_per_tor: usize, link: LinkParams, config: RdmaConfig, seed: u64) -> Rdma {
        let tb = topology::clos_testbed(
            hosts_per_tor,
            link,
            config.host_config(),
            config.switch_config(),
            seed,
        );
        let hosts = tb.hosts.into_iter().flatten().collect();
        Rdma::new(tb.net, hosts, config)
    }

    /// The fabric's hosts.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Creates a reliable-connected QP from `initiator` to `responder`.
    pub fn create_qp(&mut self, initiator: NodeId, responder: NodeId) -> QpHandle {
        assert_ne!(initiator, responder, "loopback QPs are not modelled");
        let cfg = self.config;
        let tx_flow = self
            .net
            .add_flow(initiator, responder, cfg.priority, |l| cfg.make_cc(l));
        let handle = QpHandle(self.qps.len());
        self.qps.push(QpState {
            tx_flow,
            rx_flow: None,
            initiator,
            responder,
            next_wr: 0,
            tx_wrs: Vec::new(),
            rx_wrs: Vec::new(),
            tx_polled: 0,
            rx_polled: 0,
        });
        self.qp_by_flow.insert(tx_flow, handle);
        handle
    }

    /// Posts an RDMA WRITE (or SEND) of `bytes` at time `at`. Returns the
    /// work-request id.
    pub fn post_write(&mut self, qp: QpHandle, bytes: u64, at: Time) -> u64 {
        let state = &mut self.qps[qp.0];
        let wr = state.next_wr;
        state.next_wr += 1;
        state.tx_wrs.push((wr, at.max(self.net.now())));
        let flow = state.tx_flow;
        self.net.send_message(flow, bytes, at);
        wr
    }

    /// Posts an RDMA READ of `bytes`: the responder's NIC streams the
    /// data back without CPU involvement. Returns the work-request id.
    pub fn post_read(&mut self, qp: QpHandle, bytes: u64, at: Time) -> u64 {
        let cfg = self.config;
        let (initiator, responder) = {
            let s = &self.qps[qp.0];
            (s.initiator, s.responder)
        };
        if self.qps[qp.0].rx_flow.is_none() {
            let f = self
                .net
                .add_flow(responder, initiator, cfg.priority, |l| cfg.make_cc(l));
            self.qps[qp.0].rx_flow = Some(f);
            self.qp_by_flow.insert(f, qp);
        }
        let state = &mut self.qps[qp.0];
        let wr = state.next_wr;
        state.next_wr += 1;
        state.rx_wrs.push((wr, at.max(self.net.now())));
        let flow = state.rx_flow.expect("created above");
        self.net.send_message(flow, bytes, at);
        wr
    }

    /// Drains new work completions for `qp`, in per-direction posting
    /// order (WRITEs first, then READs, as separate streams).
    pub fn poll_cq(&mut self, qp: QpHandle) -> Vec<WorkCompletion> {
        let mut out = Vec::new();
        let (tx_flow, rx_flow) = {
            let s = &self.qps[qp.0];
            (s.tx_flow, s.rx_flow)
        };
        // TX direction.
        let tx_stats = self.net.flow_stats(tx_flow);
        let tx_done = tx_stats.completions.len();
        let tx_aborted = tx_stats.aborted;
        let completions: Vec<(Time, u64)> = tx_stats
            .completions
            .iter()
            .map(|c| (c.at, c.bytes))
            .collect();
        {
            let state = &mut self.qps[qp.0];
            while state.tx_polled < tx_done {
                let (wr_id, posted) = state.tx_wrs[state.tx_polled];
                let (at, bytes) = completions[state.tx_polled];
                out.push(WorkCompletion {
                    wr_id,
                    bytes,
                    posted,
                    completed: at,
                    status: WcStatus::Success,
                });
                state.tx_polled += 1;
            }
            // Flush error completions for unfinished WRs on a dead QP.
            if tx_aborted {
                while state.tx_polled < state.tx_wrs.len() {
                    let (wr_id, posted) = state.tx_wrs[state.tx_polled];
                    out.push(WorkCompletion {
                        wr_id,
                        bytes: 0,
                        posted,
                        completed: self.net.now(),
                        status: WcStatus::RetryExceeded,
                    });
                    state.tx_polled += 1;
                }
            }
        }
        // RX (READ) direction.
        if let Some(rx) = rx_flow {
            let rx_stats = self.net.flow_stats(rx);
            let rx_done = rx_stats.completions.len();
            let rx_aborted = rx_stats.aborted;
            let completions: Vec<(Time, u64)> = rx_stats
                .completions
                .iter()
                .map(|c| (c.at, c.bytes))
                .collect();
            let state = &mut self.qps[qp.0];
            while state.rx_polled < rx_done {
                let (wr_id, posted) = state.rx_wrs[state.rx_polled];
                let (at, bytes) = completions[state.rx_polled];
                out.push(WorkCompletion {
                    wr_id,
                    bytes,
                    posted,
                    completed: at,
                    status: WcStatus::Success,
                });
                state.rx_polled += 1;
            }
            if rx_aborted {
                while state.rx_polled < state.rx_wrs.len() {
                    let (wr_id, posted) = state.rx_wrs[state.rx_polled];
                    out.push(WorkCompletion {
                        wr_id,
                        bytes: 0,
                        posted,
                        completed: self.net.now(),
                        status: WcStatus::RetryExceeded,
                    });
                    state.rx_polled += 1;
                }
            }
        }
        out.sort_by_key(|wc| wc.wr_id);
        out
    }

    /// The flow backing a QP's WRITE direction (for stats/sampling).
    pub fn tx_flow(&self, qp: QpHandle) -> FlowId {
        self.qps[qp.0].tx_flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Rdma {
        Rdma::star(4, LinkParams::default(), RdmaConfig::default(), 3)
    }

    #[test]
    fn write_completes_in_order() {
        let mut r = device();
        let (a, b) = (r.hosts()[0], r.hosts()[1]);
        let qp = r.create_qp(a, b);
        let w0 = r.post_write(qp, 100_000, Time::ZERO);
        let w1 = r.post_write(qp, 200_000, Time::ZERO);
        let w2 = r.post_write(qp, 50_000, Time::ZERO);
        r.net.run_until(Time::from_millis(2));
        let wcs = r.poll_cq(qp);
        assert_eq!(
            wcs.iter().map(|w| w.wr_id).collect::<Vec<_>>(),
            vec![w0, w1, w2]
        );
        assert_eq!(wcs[1].bytes, 200_000);
        assert!(wcs.iter().all(|w| w.status == WcStatus::Success));
        // Draining again yields nothing new.
        assert!(r.poll_cq(qp).is_empty());
    }

    #[test]
    fn read_streams_data_back() {
        let mut r = device();
        let (a, b) = (r.hosts()[0], r.hosts()[1]);
        let qp = r.create_qp(a, b);
        let rd = r.post_read(qp, 1_000_000, Time::ZERO);
        r.net.run_until(Time::from_millis(2));
        let wcs = r.poll_cq(qp);
        assert_eq!(wcs.len(), 1);
        assert_eq!(wcs[0].wr_id, rd);
        assert_eq!(wcs[0].bytes, 1_000_000);
        // The data flowed responder -> initiator.
        let rx = r.qps[qp.0].rx_flow.unwrap();
        assert_eq!(r.net.flow_stats(rx).delivered_bytes, 1_000_000);
    }

    #[test]
    fn mixed_reads_and_writes_share_the_qp() {
        let mut r = device();
        let (a, b) = (r.hosts()[0], r.hosts()[1]);
        let qp = r.create_qp(a, b);
        let w = r.post_write(qp, 300_000, Time::ZERO);
        let rd = r.post_read(qp, 300_000, Time::ZERO);
        r.net.run_until(Time::from_millis(2));
        let wcs = r.poll_cq(qp);
        assert_eq!(wcs.len(), 2);
        assert!(wcs.iter().any(|x| x.wr_id == w));
        assert!(wcs.iter().any(|x| x.wr_id == rd));
    }

    #[test]
    fn multiple_qps_between_hosts() {
        let mut r = device();
        let (a, b, c) = (r.hosts()[0], r.hosts()[1], r.hosts()[2]);
        let q1 = r.create_qp(a, c);
        let q2 = r.create_qp(b, c);
        r.post_write(q1, 500_000, Time::ZERO);
        r.post_write(q2, 500_000, Time::ZERO);
        r.net.run_until(Time::from_millis(2));
        assert_eq!(r.poll_cq(q1).len(), 1);
        assert_eq!(r.poll_cq(q2).len(), 1);
    }

    #[test]
    fn incremental_polling() {
        let mut r = device();
        let (a, b) = (r.hosts()[0], r.hosts()[1]);
        let qp = r.create_qp(a, b);
        r.post_write(qp, 100_000, Time::ZERO);
        r.post_write(qp, 100_000, Time::from_millis(3));
        r.net.run_until(Time::from_millis(1));
        assert_eq!(r.poll_cq(qp).len(), 1);
        r.net.run_until(Time::from_millis(5));
        assert_eq!(r.poll_cq(qp).len(), 1);
    }

    #[test]
    fn goodput_accounts_for_queueing() {
        let mut r = device();
        let (a, b) = (r.hosts()[0], r.hosts()[1]);
        let qp = r.create_qp(a, b);
        // Two 5 MB writes posted together: the second waits behind the
        // first, so its end-to-end goodput is roughly half.
        r.post_write(qp, 5_000_000, Time::ZERO);
        r.post_write(qp, 5_000_000, Time::ZERO);
        r.net.run_until(Time::from_millis(10));
        let wcs = r.poll_cq(qp);
        assert!(wcs[0].goodput_gbps() > 1.5 * wcs[1].goodput_gbps());
    }

    #[test]
    fn clos_device_works() {
        let mut r = Rdma::clos(2, LinkParams::default(), RdmaConfig::default(), 5);
        let hosts: Vec<NodeId> = r.hosts().to_vec();
        let qp = r.create_qp(hosts[0], hosts[7]);
        r.post_write(qp, 2_000_000, Time::ZERO);
        r.net.run_until(Time::from_millis(3));
        assert_eq!(r.poll_cq(qp).len(), 1);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_rejected() {
        let mut r = device();
        let a = r.hosts()[0];
        r.create_qp(a, a);
    }
}
