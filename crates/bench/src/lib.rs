//! # bench — Criterion benchmarks
//!
//! Two kinds of benches live here:
//!
//! * **substrate performance** (`eventq`, `fabric`, `protocol`,
//!   `fluidmodel`) — how fast the simulator and the state machines run,
//!   including the ablations DESIGN.md calls out (binary-heap event queue,
//!   PFC on/off forwarding cost, RED sampling),
//! * **per-figure harnesses** (`figures`) — micro-scale versions of every
//!   paper experiment, so regressions in *reproduction cost* are caught;
//!   the full-scale numbers come from `cargo run -p experiments`.

use dcqcn::prelude::*;
use netsim::prelude::*;
use netsim::topology::{star, LinkParams, Star};

/// Builds an n:1 DCQCN incast on a star, ready to run.
pub fn dcqcn_incast(n: usize, seed: u64) -> (Star, Vec<FlowId>) {
    let params = DcqcnParams::paper();
    let mut s = star(
        n + 1,
        LinkParams::default(),
        dcqcn_host_config(params),
        SwitchConfig::paper_default().with_red(red_deployed()),
        seed,
    );
    let dst = s.hosts[n];
    let flows: Vec<FlowId> = (0..n)
        .map(|i| {
            s.net
                .add_flow(s.hosts[i], dst, DATA_PRIORITY, dcqcn(params))
        })
        .collect();
    for &f in &flows {
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    (s, flows)
}

/// Builds an n:1 PFC-only incast on a star.
pub fn pfc_incast(n: usize, seed: u64) -> (Star, Vec<FlowId>) {
    let mut s = star(
        n + 1,
        LinkParams::default(),
        HostConfig {
            cnp_interval: None,
            ..HostConfig::default()
        },
        SwitchConfig::paper_default(),
        seed,
    );
    let dst = s.hosts[n];
    let flows: Vec<FlowId> = (0..n)
        .map(|i| {
            s.net
                .add_flow(s.hosts[i], dst, DATA_PRIORITY, |l| Box::new(NoCc::new(l)))
        })
        .collect();
    for &f in &flows {
        s.net.send_message(f, u64::MAX, Time::ZERO);
    }
    (s, flows)
}
