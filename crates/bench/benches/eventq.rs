//! Event-queue throughput: the simulator's hot path (DESIGN.md ablation:
//! binary-heap ordering cost at different pending-set sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::event::{Event, EventQueue};
use netsim::rng::SplitMix64;
use netsim::units::Time;
use std::hint::black_box;

fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("eventq");
    for &pending in &[64usize, 1024, 16384] {
        group.bench_with_input(
            BenchmarkId::new("churn", pending),
            &pending,
            |b, &pending| {
                b.iter_batched(
                    || {
                        let mut q = EventQueue::new();
                        let mut rng = SplitMix64::new(7);
                        for _ in 0..pending {
                            q.schedule(Time::from_nanos(rng.next_u64() % 1_000_000), Event::Sample);
                        }
                        (q, rng)
                    },
                    |(mut q, mut rng)| {
                        // Steady-state churn: pop one, push one, 1000 times.
                        for _ in 0..1000 {
                            let (t, _) = q.pop().unwrap();
                            q.schedule(
                                t + netsim::units::Duration::from_nanos(rng.next_u64() % 10_000),
                                Event::Sample,
                            );
                        }
                        black_box(q.events_executed())
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

/// Short measurement windows: these benches exist to track regressions,
/// not to resolve nanosecond differences.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_schedule_pop
}
criterion_main!(benches);
