//! Protocol state-machine microbenchmarks: the per-packet / per-event
//! costs a NIC implementation would care about.

use criterion::{criterion_group, criterion_main, Criterion};
use dcqcn::np::NpState;
use dcqcn::params::DcqcnParams;
use dcqcn::rp::{DcqcnRp, TIMER_RATE};
use netsim::cc::{CcActions, CongestionControl};
use netsim::ecn::RedConfig;
use netsim::rng::SplitMix64;
use netsim::units::{Bandwidth, Duration, Time};
use std::hint::black_box;

fn bench_rp(c: &mut Criterion) {
    let mut group = c.benchmark_group("rp");
    group.bench_function("cnp_cut", |b| {
        let mut rp = DcqcnRp::new(Bandwidth::gbps(40), DcqcnParams::paper());
        let mut now = Time::ZERO;
        b.iter(|| {
            let mut a = CcActions::default();
            now += Duration::from_micros(50);
            rp.on_cnp(now, &mut a);
            black_box(rp.rate())
        })
    });
    group.bench_function("timer_increase", |b| {
        let mut rp = DcqcnRp::new(Bandwidth::gbps(40), DcqcnParams::paper());
        let mut a = CcActions::default();
        rp.on_cnp(Time::ZERO, &mut a);
        let mut now = Time::ZERO;
        b.iter(|| {
            let mut a = CcActions::default();
            now += Duration::from_micros(55);
            rp.on_timer(now, TIMER_RATE, &mut a);
            // Keep it limited so the path stays hot.
            if !rp.is_limited() {
                rp.on_cnp(now, &mut a);
            }
            black_box(rp.rate())
        })
    });
    group.bench_function("byte_counter_send", |b| {
        let mut rp = DcqcnRp::new(Bandwidth::gbps(40), DcqcnParams::paper());
        let mut a = CcActions::default();
        rp.on_cnp(Time::ZERO, &mut a);
        b.iter(|| {
            let mut a = CcActions::default();
            rp.on_send(Time::ZERO, 1500, &mut a);
            black_box(rp.rate())
        })
    });
    group.finish();
}

fn bench_np(c: &mut Criterion) {
    c.bench_function("np_marked_packet", |b| {
        let mut np = NpState::paper();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(np.on_packet(Time::from_nanos(t * 300), true))
        })
    });
}

fn bench_red(c: &mut Criterion) {
    c.bench_function("red_sample", |b| {
        let red = dcqcn::params::red_deployed();
        let mut rng = SplitMix64::new(3);
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 1500) % 250_000;
            black_box(red.should_mark(q, &mut rng))
        })
    });
    c.bench_function("red_cutoff_sample", |b| {
        let red = RedConfig::cutoff(40_000);
        let mut rng = SplitMix64::new(3);
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 1500) % 80_000;
            black_box(red.should_mark(q, &mut rng))
        })
    });
}

fn bench_dctcp(c: &mut Criterion) {
    use baselines::dctcp::{Dctcp, DctcpParams};
    c.bench_function("dctcp_ack", |b| {
        let mut d = Dctcp::new(Bandwidth::gbps(40), DctcpParams::default_40g());
        b.iter(|| {
            let mut a = CcActions::default();
            d.on_ack(Time::ZERO, 3000, 2, 1, None, &mut a);
            black_box(d.cwnd_bytes())
        })
    });
}

/// Short measurement windows: these benches exist to track regressions,
/// not to resolve nanosecond differences.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_rp, bench_np, bench_red, bench_dctcp
}
criterion_main!(benches);
