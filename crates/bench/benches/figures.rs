//! One benchmark per paper table/figure: micro-scale versions of each
//! reproduction harness (the full-scale series come from
//! `cargo run -p experiments --release -- <id>`). These keep every
//! experiment's machinery exercised and its cost tracked.

use baselines::hostmodel::{tcp_stack, throughput, Machine, FIG1_SIZES};
use bench::{dcqcn_incast, pfc_incast};
use criterion::{criterion_group, criterion_main, Criterion};
use dcqcn::np::NpState;
use dcqcn::params::DcqcnParams;
use dcqcn::rp::{DcqcnRp, TIMER_RATE};
use dcqcn::thresholds;
use experiments::common::CcChoice;
use experiments::scenarios::{benchmark_run, unfairness_run, victim_run, BenchmarkConfig};
use fluid::model::FluidSim;
use fluid::params::FluidParams;
use fluid::sweep::{g_queue_trace, sweep_pmax, two_flow_convergence};
use netsim::buffer::BufferConfig;
use netsim::cc::{CcActions, CongestionControl};
use netsim::topology::{clos_testbed, parking_lot, LinkParams};
use netsim::units::{Bandwidth, Duration, Time};
use std::hint::black_box;

fn micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig1_host_model", |b| {
        let m = Machine::paper_testbed();
        b.iter(|| {
            let total: f64 = FIG1_SIZES
                .iter()
                .map(|&s| throughput(&tcp_stack(), &m, s).gbps)
                .sum();
            black_box(total)
        })
    });

    g.bench_function("fig2_build_testbed", |b| {
        b.iter(|| {
            let tb = clos_testbed(
                5,
                LinkParams::default(),
                netsim::host::HostConfig::default(),
                netsim::switch::SwitchConfig::paper_default(),
                1,
            );
            black_box(tb.net.nodes.len())
        })
    });

    g.bench_function("fig3_pfc_unfairness_micro", |b| {
        b.iter(|| {
            black_box(unfairness_run(
                CcChoice::None,
                1,
                Duration::from_millis(4),
                Duration::from_millis(1),
            ))
        })
    });

    g.bench_function("fig4_victim_micro", |b| {
        b.iter(|| {
            black_box(victim_run(
                CcChoice::None,
                1,
                1,
                Duration::from_millis(4),
                Duration::from_millis(1),
            ))
        })
    });

    g.bench_function("fig5_red_curve", |b| {
        let red = dcqcn::params::red_deployed();
        b.iter(|| {
            let s: f64 = (0..250).map(|kb| red.mark_probability(kb * 1000)).sum();
            black_box(s)
        })
    });

    g.bench_function("fig6_np_state_machine", |b| {
        b.iter(|| {
            let mut np = NpState::paper();
            let mut cnps = 0u32;
            for us in 0..500u64 {
                cnps += np.on_packet(Time::from_micros(us), us % 3 == 0) as u32;
            }
            black_box(cnps)
        })
    });

    g.bench_function("fig7_rp_trace", |b| {
        b.iter(|| {
            let mut rp = DcqcnRp::new(Bandwidth::gbps(40), DcqcnParams::paper());
            let mut a = CcActions::default();
            rp.on_cnp(Time::ZERO, &mut a);
            rp.on_cnp(Time::from_micros(50), &mut a);
            for i in 1..=20 {
                rp.on_timer(Time::from_micros(100 + 55 * i), TIMER_RATE, &mut a);
            }
            black_box(rp.rate())
        })
    });

    g.bench_function("fig8_dcqcn_fairness_micro", |b| {
        b.iter(|| {
            black_box(unfairness_run(
                CcChoice::dcqcn_paper(),
                1,
                Duration::from_millis(4),
                Duration::from_millis(1),
            ))
        })
    });

    g.bench_function("fig9_dcqcn_victim_micro", |b| {
        b.iter(|| {
            black_box(victim_run(
                CcChoice::dcqcn_paper(),
                1,
                1,
                Duration::from_millis(4),
                Duration::from_millis(1),
            ))
        })
    });

    g.bench_function("fig10_fluid_vs_sim_micro", |b| {
        b.iter(|| {
            let (mut s, flows) = dcqcn_incast(2, 1);
            s.net.run_until(Time::from_millis(3));
            let sim = s.net.flow_stats(flows[0]).delivered_bytes;
            let mut fsim = FluidSim::incast(FluidParams::paper_40g(), 2, 1e-6);
            let trace = fsim.run(0.003, 1e-3);
            black_box((sim, trace.queue_kb.len()))
        })
    });

    g.bench_function("fig11_sweep_point", |b| {
        b.iter(|| black_box(sweep_pmax(&[0.01], 0.02).len()))
    });

    g.bench_function("fig12_g_trace", |b| {
        b.iter(|| black_box(g_queue_trace(1.0 / 256.0, 4, 0.02).queue_kb.len()))
    });

    g.bench_function("fig13_param_validation_micro", |b| {
        b.iter(|| {
            let red = dcqcn::params::red_cutoff_strawman();
            let (_, diff) =
                two_flow_convergence(&DcqcnParams::strawman(), &red, Bandwidth::gbps(40), 0.02);
            black_box(diff)
        })
    });

    g.bench_function("fig14_sec4_parameters", |b| {
        b.iter(|| {
            let p = DcqcnParams::paper();
            let r = thresholds::report(&BufferConfig::trident2(), 8.0);
            black_box((p.byte_counter, r.t_ecn_dynamic))
        })
    });

    let micro_bench = |cc: CcChoice, pfc: bool, misconfig: bool| BenchmarkConfig {
        cc,
        pairs: 4,
        incast_degree: 4,
        duration: Duration::from_millis(15),
        pfc,
        misconfigured: misconfig,
        nack_enabled: true,
        seed: 1,
    };

    g.bench_function("fig15_pause_count_micro", |b| {
        b.iter(|| {
            black_box(benchmark_run(&micro_bench(CcChoice::None, true, false)).spine_pause_rx)
        })
    });

    g.bench_function("fig16_benchmark_micro", |b| {
        b.iter(|| {
            black_box(
                benchmark_run(&micro_bench(CcChoice::dcqcn_paper(), true, false))
                    .incast_goodputs
                    .len(),
            )
        })
    });

    g.bench_function("fig17_user_scaling_micro", |b| {
        b.iter(|| {
            let mut cfg = micro_bench(CcChoice::dcqcn_paper(), true, false);
            cfg.pairs = 16;
            black_box(benchmark_run(&cfg).user_goodputs.len())
        })
    });

    g.bench_function("fig18_no_pfc_micro", |b| {
        b.iter(|| {
            black_box(benchmark_run(&micro_bench(CcChoice::dcqcn_paper(), false, false)).drops)
        })
    });

    g.bench_function("fig19_queue_cdf_micro", |b| {
        b.iter(|| {
            let (mut s, _) = dcqcn_incast(2, 3);
            let port = netsim::event::PortId(2);
            s.net.enable_sampling(
                Duration::from_micros(10),
                netsim::stats::SamplerConfig {
                    queues: vec![(s.switch, port)],
                    ..Default::default()
                },
            );
            s.net.run_until(Time::from_millis(5));
            black_box(s.net.queue_timeline(s.switch, port).unwrap().points())
        })
    });

    g.bench_function("fig20_parking_lot_micro", |b| {
        b.iter(|| {
            let cc = CcChoice::dcqcn_paper();
            let pl = parking_lot(
                LinkParams::default(),
                cc.host_config(),
                cc.switch_config(true, false),
                1,
            );
            let mut net = pl.net;
            let f = cc.factory();
            for (src, dst) in [(pl.h1, pl.r1), (pl.h2, pl.r2), (pl.h3, pl.r2)] {
                let fl = net.add_flow(src, dst, netsim::packet::DATA_PRIORITY, &f);
                net.send_message(fl, u64::MAX, Time::ZERO);
            }
            net.run_until(Time::from_millis(4));
            black_box(net.events_executed())
        })
    });

    // PFC-only forwarding included for a like-for-like cost baseline.
    g.bench_function("pfc_incast_micro", |b| {
        b.iter(|| {
            let (mut s, flows) = pfc_incast(4, 1);
            s.net.run_until(Time::from_millis(2));
            black_box(s.net.flow_stats(flows[0]).delivered_bytes)
        })
    });

    g.finish();
}

/// Short measurement windows: these benches exist to track regressions,
/// not to resolve nanosecond differences.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = micro
}
criterion_main!(benches);
