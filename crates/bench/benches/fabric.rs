//! Packet-forwarding throughput of the full simulator: events per second
//! on representative fabrics, with the PFC-on/PFC-off and DCQCN-on/off
//! ablations.

use bench::{dcqcn_incast, pfc_incast};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::units::Time;
use std::hint::black_box;

fn bench_star_forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric");
    group.sample_size(10);

    // Calibrate throughput reporting on the number of events a 2 ms run
    // executes.
    let events_per_run = {
        let (mut s, _) = pfc_incast(4, 1);
        s.net.run_until(Time::from_millis(2));
        s.net.events_executed()
    };
    group.throughput(Throughput::Elements(events_per_run));

    group.bench_function("pfc_only_4to1_2ms", |b| {
        b.iter(|| {
            let (mut s, flows) = pfc_incast(4, 1);
            s.net.run_until(Time::from_millis(2));
            black_box(s.net.flow_stats(flows[0]).delivered_bytes)
        })
    });
    group.bench_function("dcqcn_4to1_2ms", |b| {
        b.iter(|| {
            let (mut s, flows) = dcqcn_incast(4, 1);
            s.net.run_until(Time::from_millis(2));
            black_box(s.net.flow_stats(flows[0]).delivered_bytes)
        })
    });
    group.finish();
}

fn bench_clos(c: &mut Criterion) {
    use experiments::common::CcChoice;
    use experiments::scenarios::unfairness_run;
    use netsim::units::Duration;
    let mut group = c.benchmark_group("clos");
    group.sample_size(10);
    group.bench_function("unfairness_5ms", |b| {
        b.iter(|| {
            black_box(unfairness_run(
                CcChoice::None,
                1,
                Duration::from_millis(5),
                Duration::from_millis(1),
            ))
        })
    });
    group.finish();
}

/// Short measurement windows: these benches exist to track regressions,
/// not to resolve nanosecond differences.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_star_forwarding, bench_clos
}
criterion_main!(benches);
