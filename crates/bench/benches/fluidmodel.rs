//! Fluid-model performance: integration step rate and fixed-point solve
//! time (the §5 tooling must stay interactive for parameter screening).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fluid::fixedpoint::solve;
use fluid::model::FluidSim;
use fluid::params::FluidParams;
use std::hint::black_box;

fn bench_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_step");
    for &n in &[2usize, 16] {
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(BenchmarkId::new("flows", n), &n, |b, &n| {
            b.iter_batched(
                || FluidSim::incast(FluidParams::paper_40g(), n, 1e-6),
                |mut sim| {
                    for _ in 0..10_000 {
                        sim.step();
                    }
                    black_box(sim.q)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_fixed_point(c: &mut Criterion) {
    c.bench_function("fixed_point_solve", |b| {
        let params = FluidParams::paper_40g();
        b.iter(|| black_box(solve(&params, 16).p))
    });
}

/// Short measurement windows: these benches exist to track regressions,
/// not to resolve nanosecond differences.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_integration, bench_fixed_point
}
criterion_main!(benches);
