//! DCTCP (Alizadeh et al., SIGCOMM 2010) — the window-based ECN baseline
//! the paper compares DCQCN against (§6.3, Figure 19, and the
//! multi-bottleneck discussion of §7).
//!
//! Per the DCTCP paper:
//!
//! * the switch marks with a cut-off threshold K (instantaneous queue),
//! * the receiver echoes CE marks back on ACKs,
//! * the sender maintains `α ← (1 − g)·α + g·F` once per window, where `F`
//!   is the fraction of marked ACKs in that window,
//! * a window containing any marks is cut once: `cwnd ← cwnd·(1 − α/2)`,
//! * otherwise standard TCP growth applies (slow start, then one MSS per
//!   window of congestion avoidance).
//!
//! Unlike DCQCN this is **window-based**: the NIC sends at line rate while
//! un-ACKed bytes fit in `cwnd`. The contrast in required ECN threshold —
//! DCTCP needs a deep K to absorb bursts, DCQCN's hardware pacing allows a
//! shallow K_min — is exactly the paper's Figure 19 argument.

use netsim::cc::{CcActions, CongestionControl};
use netsim::units::{Bandwidth, Time};

/// DCTCP parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DctcpParams {
    /// EWMA gain for α. The DCTCP paper recommends 1/16.
    pub g: f64,
    /// Maximum segment size in wire bytes (window accounting unit).
    pub mss: u64,
    /// Initial congestion window, in MSS.
    pub init_cwnd_mss: u64,
    /// Slow-start threshold at start, in MSS (effectively unbounded).
    pub init_ssthresh_mss: u64,
    /// Hard cap on the window, in bytes (bandwidth-delay headroom).
    pub max_cwnd_bytes: u64,
}

impl DctcpParams {
    /// Defaults scaled to the paper's 40 Gbps testbed: g = 1/16,
    /// 10-segment initial window, window capped at 2 MB (≈ 400 µs of
    /// 40 Gbps — far above the bandwidth-delay product).
    pub fn default_40g() -> DctcpParams {
        DctcpParams {
            g: 1.0 / 16.0,
            mss: 1500,
            init_cwnd_mss: 10,
            init_ssthresh_mss: u64::MAX / 3000,
            max_cwnd_bytes: 2_000_000,
        }
    }
}

/// DCTCP sender state for one flow.
#[derive(Debug, Clone)]
pub struct Dctcp {
    params: DctcpParams,
    line_rate: Bandwidth,
    /// Congestion window in bytes.
    cwnd: f64,
    /// Slow-start threshold in bytes.
    ssthresh: f64,
    /// The ECN-fraction EWMA α.
    alpha: f64,
    /// Bytes acknowledged in the current observation window.
    window_acked: u64,
    /// ACK-covered packets / marked packets in the current window.
    acked_pkts: u32,
    marked_pkts: u32,
    /// Size of the current observation window (cwnd at its start).
    window_size: u64,
    /// Did the current window observe any marks?
    saw_mark: bool,
}

impl Dctcp {
    /// A fresh DCTCP flow.
    pub fn new(line_rate: Bandwidth, params: DctcpParams) -> Dctcp {
        Dctcp {
            params,
            line_rate,
            cwnd: (params.init_cwnd_mss * params.mss) as f64,
            ssthresh: (params.init_ssthresh_mss.saturating_mul(params.mss)) as f64,
            alpha: 0.0,
            window_acked: 0,
            acked_pkts: 0,
            marked_pkts: 0,
            window_size: params.init_cwnd_mss * params.mss,
            saw_mark: false,
        }
    }

    /// Current α (ECN-fraction estimate).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn clamp(&mut self) {
        let min = self.params.mss as f64;
        let max = self.params.max_cwnd_bytes as f64;
        self.cwnd = self.cwnd.clamp(min, max);
    }

    fn end_window(&mut self) {
        let frac = if self.acked_pkts > 0 {
            self.marked_pkts as f64 / self.acked_pkts as f64
        } else {
            0.0
        };
        self.alpha = (1.0 - self.params.g) * self.alpha + self.params.g * frac;
        if self.saw_mark {
            // One multiplicative cut per marked window.
            self.cwnd *= 1.0 - self.alpha / 2.0;
            self.ssthresh = self.cwnd;
        }
        self.clamp();
        self.window_acked = 0;
        self.acked_pkts = 0;
        self.marked_pkts = 0;
        self.saw_mark = false;
        self.window_size = self.cwnd as u64;
    }
}

impl CongestionControl for Dctcp {
    fn rate(&self) -> Bandwidth {
        // Window-based: no pacing, the window does the throttling.
        self.line_rate
    }

    fn window(&self) -> Option<u64> {
        Some(self.cwnd as u64)
    }

    fn on_ack(
        &mut self,
        _now: Time,
        acked_bytes: u64,
        acked_pkts: u32,
        marked: u32,
        _rtt: Option<netsim::units::Duration>,
        _actions: &mut CcActions,
    ) {
        // Growth first (per-ACK), cut bookkeeping at window boundaries.
        if self.in_slow_start() {
            self.cwnd += acked_bytes as f64;
        } else {
            self.cwnd += self.params.mss as f64 * acked_bytes as f64 / self.cwnd;
        }
        self.clamp();

        self.window_acked += acked_bytes;
        self.acked_pkts += acked_pkts;
        self.marked_pkts += marked;
        if marked > 0 {
            self.saw_mark = true;
        }
        if self.window_acked >= self.window_size {
            self.end_window();
        }
    }

    fn on_loss(&mut self, _now: Time, _actions: &mut CcActions) {
        // Timeout/NAK: classic TCP response.
        self.ssthresh = (self.cwnd / 2.0).max(self.params.mss as f64);
        self.cwnd = self.params.mss as f64;
        self.clamp();
        self.window_acked = 0;
        self.acked_pkts = 0;
        self.marked_pkts = 0;
        self.saw_mark = false;
        self.window_size = self.cwnd as u64;
    }

    fn reset(&mut self, _now: Time, _actions: &mut CcActions) {
        *self = Dctcp::new(self.line_rate, self.params);
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

/// Convenience factory for [`netsim::network::Network::add_flow`].
pub fn dctcp(params: DctcpParams) -> impl Fn(Bandwidth) -> Box<dyn CongestionControl> {
    move |line| Box::new(Dctcp::new(line, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> Dctcp {
        Dctcp::new(Bandwidth::gbps(40), DctcpParams::default_40g())
    }

    #[test]
    fn starts_in_slow_start_with_initial_window() {
        let d = flow();
        assert_eq!(d.window(), Some(15_000));
        assert!(d.in_slow_start());
        assert_eq!(d.alpha(), 0.0);
        assert_eq!(d.rate(), Bandwidth::gbps(40));
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut d = flow();
        let mut a = CcActions::default();
        let w0 = d.cwnd_bytes();
        // ACK a full window of unmarked data.
        d.on_ack(Time::ZERO, w0, (w0 / 1500) as u32, 0, None, &mut a);
        assert!(
            d.cwnd_bytes() >= 2 * w0 - 1500,
            "cwnd {} < 2×{}",
            d.cwnd_bytes(),
            w0
        );
    }

    #[test]
    fn congestion_avoidance_grows_one_mss_per_window() {
        let mut d = flow();
        let mut a = CcActions::default();
        // Leave slow start via a marked window.
        d.on_ack(Time::ZERO, d.cwnd_bytes(), 10, 10, None, &mut a);
        assert!(!d.in_slow_start());
        let w = d.cwnd_bytes();
        // One full unmarked window in CA.
        let mut acked = 0;
        while acked < w {
            d.on_ack(Time::ZERO, 1500, 1, 0, None, &mut a);
            acked += 1500;
        }
        let grown = d.cwnd_bytes() as i64 - w as i64;
        assert!((1000..2600).contains(&grown), "grew {grown} bytes");
    }

    #[test]
    fn alpha_tracks_mark_fraction() {
        let mut d = flow();
        let mut a = CcActions::default();
        // Several fully marked windows: α → 1.
        for _ in 0..64 {
            let w = d.cwnd_bytes();
            d.on_ack(
                Time::ZERO,
                w,
                (w / 1500).max(1) as u32,
                (w / 1500).max(1) as u32,
                None,
                &mut a,
            );
        }
        assert!(d.alpha() > 0.9, "alpha {}", d.alpha());
        // Then unmarked windows: α decays toward 0.
        for _ in 0..64 {
            let w = d.cwnd_bytes();
            d.on_ack(Time::ZERO, w, (w / 1500).max(1) as u32, 0, None, &mut a);
        }
        assert!(d.alpha() < 0.1, "alpha {}", d.alpha());
    }

    #[test]
    fn low_alpha_gives_gentle_cuts() {
        let mut d = flow();
        let mut a = CcActions::default();
        // Mostly unmarked traffic with an occasional mark: α small, so a
        // marked window cuts only slightly (DCTCP's key property).
        for _ in 0..50 {
            let w = d.cwnd_bytes();
            d.on_ack(Time::ZERO, w, (w / 1500).max(1) as u32, 0, None, &mut a);
        }
        let before = d.cwnd_bytes();
        let w = d.cwnd_bytes();
        d.on_ack(Time::ZERO, w, (w / 1500).max(1) as u32, 1, None, &mut a);
        let after = d.cwnd_bytes();
        // Cut less than 10%, unlike TCP's 50%.
        assert!(after as f64 > before as f64 * 0.9, "{before} -> {after}");
    }

    #[test]
    fn fully_marked_windows_halve_eventually() {
        let mut d = flow();
        let mut a = CcActions::default();
        // Saturate α first.
        for _ in 0..100 {
            let w = d.cwnd_bytes();
            d.on_ack(
                Time::ZERO,
                w,
                (w / 1500).max(1) as u32,
                (w / 1500).max(1) as u32,
                None,
                &mut a,
            );
        }
        // With α ≈ 1 a marked window cuts ≈ 50%... but growth within the
        // window partially offsets; net effect must push cwnd to the floor.
        assert!(d.cwnd_bytes() <= 4 * 1500, "cwnd {}", d.cwnd_bytes());
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut d = flow();
        let mut a = CcActions::default();
        d.on_ack(Time::ZERO, 15_000, 10, 0, None, &mut a);
        d.on_loss(Time::ZERO, &mut a);
        assert_eq!(d.cwnd_bytes(), 1500);
        assert!(!d.in_slow_start() || d.cwnd_bytes() == 1500);
    }

    #[test]
    fn window_never_exceeds_cap_or_floor() {
        let mut d = flow();
        let mut a = CcActions::default();
        for _ in 0..1000 {
            let w = d.cwnd_bytes();
            d.on_ack(Time::ZERO, w, (w / 1500).max(1) as u32, 0, None, &mut a);
        }
        assert!(d.cwnd_bytes() <= DctcpParams::default_40g().max_cwnd_bytes);
        for _ in 0..1000 {
            let w = d.cwnd_bytes();
            d.on_ack(
                Time::ZERO,
                w,
                (w / 1500).max(1) as u32,
                (w / 1500).max(1) as u32,
                None,
                &mut a,
            );
        }
        assert!(d.cwnd_bytes() >= 1500);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = flow();
        let mut a = CcActions::default();
        d.on_ack(Time::ZERO, 15_000, 10, 5, None, &mut a);
        d.reset(Time::ZERO, &mut a);
        assert_eq!(d.cwnd_bytes(), 15_000);
        assert_eq!(d.alpha(), 0.0);
    }

    #[test]
    fn factory_and_name() {
        let f = dctcp(DctcpParams::default_40g());
        let cc = f(Bandwidth::gbps(40));
        assert_eq!(cc.name(), "dctcp");
        assert!(cc.window().is_some());
    }
}
