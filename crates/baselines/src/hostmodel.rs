//! Host networking-stack cost model — the Figure 1 substitution.
//!
//! Figure 1 of the paper measures TCP vs RDMA throughput, CPU utilization
//! and latency on real Windows Server machines (Intel Xeon E5-2660,
//! 16 cores @ 2.2 GHz, 40 Gbps ConnectX-3). That hardware measurement is
//! replaced here by an analytic cycle-cost model:
//!
//! ```text
//! cycles/byte(msg) = per_byte + per_packet/MTU + per_message/msg_bytes
//! throughput       = min(link_rate, cpu_budget / cycles_per_byte)
//! cpu%             = cycles_consumed / cpu_budget
//! latency(msg)     = stack_overhead + wire_time(msg)
//! ```
//!
//! The per-*stack* constants are calibrated so the model reproduces the
//! paper's headline observations: TCP burns >20% of 16 cores to fill
//! 40 Gbps at 4 MB messages and cannot saturate the link below ~64 KB;
//! RDMA saturates from small messages at <3% client CPU and ~0% server
//! CPU; and user-level 2 KB latency is ~25.4 µs for TCP vs 1.7/2.8 µs for
//! RDMA read-write/send. The *shape* (CPU-boundedness vs link-boundedness
//! as a function of message size) is what the model preserves; see
//! DESIGN.md for the substitution note.

/// Machine configuration (the paper's testbed servers).
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// Core count.
    pub cores: u32,
    /// Clock in GHz.
    pub ghz: f64,
    /// NIC line rate in Gbps.
    pub link_gbps: f64,
    /// MTU in bytes.
    pub mtu: u64,
}

impl Machine {
    /// Intel Xeon E5-2660: 16 cores, 2.2 GHz, 40 Gbps NIC.
    pub fn paper_testbed() -> Machine {
        Machine {
            cores: 16,
            ghz: 2.2,
            link_gbps: 40.0,
            mtu: 1500,
        }
    }

    /// Total cycle budget per second.
    pub fn cycle_budget(&self) -> f64 {
        self.cores as f64 * self.ghz * 1e9
    }
}

/// Cycle costs of one networking stack on one side of a transfer.
#[derive(Debug, Clone, Copy)]
pub struct StackProfile {
    /// Fixed cycles per message (syscalls, locking, completion handling).
    pub per_message_cycles: f64,
    /// Cycles per payload byte (copies, checksums — zero-copy stacks keep
    /// this small).
    pub per_byte_cycles: f64,
    /// Cycles per packet (per-segment protocol processing, interrupts).
    pub per_packet_cycles: f64,
    /// One-way software latency added on top of the wire, in µs.
    pub sw_latency_us: f64,
}

/// A tuned conventional TCP stack (LSO+RSS+zero-copy enabled, 16 threads),
/// calibrated to the paper's Windows measurements.
pub fn tcp_stack() -> StackProfile {
    StackProfile {
        per_message_cycles: 32_000.0,
        per_byte_cycles: 1.25,
        per_packet_cycles: 600.0,
        sw_latency_us: 24.5,
    }
}

/// RDMA client (IB READ initiator): NIC does the transfer; the CPU only
/// posts work requests and polls completions.
pub fn rdma_client_stack() -> StackProfile {
    StackProfile {
        per_message_cycles: 700.0,
        per_byte_cycles: 0.02,
        per_packet_cycles: 0.0,
        sw_latency_us: 0.8,
    }
}

/// RDMA server for single-sided operations: the server CPU is not involved
/// at all.
pub fn rdma_server_stack() -> StackProfile {
    StackProfile {
        per_message_cycles: 0.0,
        per_byte_cycles: 0.0,
        per_packet_cycles: 0.0,
        sw_latency_us: 0.0,
    }
}

/// RDMA SEND/RECV involves the receiver posting buffers, so it costs a bit
/// more latency than single-sided read/write (the paper: 2.8 vs 1.7 µs).
pub fn rdma_send_stack() -> StackProfile {
    StackProfile {
        per_message_cycles: 1_200.0,
        per_byte_cycles: 0.02,
        per_packet_cycles: 0.0,
        sw_latency_us: 1.9,
    }
}

/// Outcome of the throughput/CPU model for one message size.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Achieved throughput in Gbps.
    pub gbps: f64,
    /// CPU utilization as a percentage of all cores.
    pub cpu_percent: f64,
}

/// Effective cycles per payload byte for a given message size.
pub fn cycles_per_byte(stack: &StackProfile, machine: &Machine, msg_bytes: u64) -> f64 {
    stack.per_byte_cycles
        + stack.per_packet_cycles / machine.mtu as f64
        + stack.per_message_cycles / msg_bytes as f64
}

/// Throughput and CPU for a stream of `msg_bytes`-sized transfers.
pub fn throughput(stack: &StackProfile, machine: &Machine, msg_bytes: u64) -> ThroughputPoint {
    let cpb = cycles_per_byte(stack, machine, msg_bytes);
    let link_bytes_per_sec = machine.link_gbps * 1e9 / 8.0;
    let budget = machine.cycle_budget();
    let cpu_bound_bytes_per_sec = if cpb > 0.0 {
        budget / cpb
    } else {
        f64::INFINITY
    };
    let achieved = link_bytes_per_sec.min(cpu_bound_bytes_per_sec);
    ThroughputPoint {
        msg_bytes,
        gbps: achieved * 8.0 / 1e9,
        cpu_percent: 100.0 * (achieved * cpb / budget).min(1.0),
    }
}

/// One-way user-level latency for a `msg_bytes` transfer, in µs:
/// software overhead plus wire time (serialization at line rate + ~0.5 µs
/// of propagation/switching, one switch).
pub fn latency_us(stack: &StackProfile, machine: &Machine, msg_bytes: u64) -> f64 {
    let wire = msg_bytes as f64 * 8.0 / (machine.link_gbps * 1e3) + 0.5;
    stack.sw_latency_us + wire
}

/// The message sizes of Figure 1.
pub const FIG1_SIZES: [u64; 6] = [
    4 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_saturates_large_messages_at_high_cpu() {
        let m = Machine::paper_testbed();
        let p = throughput(&tcp_stack(), &m, 4 * 1024 * 1024);
        assert!(p.gbps > 39.0, "4MB TCP should fill the link: {}", p.gbps);
        assert!(
            p.cpu_percent > 20.0,
            "paper: >20% CPU across all cores, got {:.1}%",
            p.cpu_percent
        );
    }

    #[test]
    fn tcp_cannot_saturate_small_messages() {
        let m = Machine::paper_testbed();
        let p = throughput(&tcp_stack(), &m, 4 * 1024);
        assert!(p.gbps < 35.0, "4KB TCP is CPU-bound: {}", p.gbps);
        assert!(p.cpu_percent > 95.0, "CPU saturated: {:.1}%", p.cpu_percent);
    }

    #[test]
    fn rdma_saturates_all_sizes_under_3_percent() {
        let m = Machine::paper_testbed();
        for &s in &FIG1_SIZES {
            let p = throughput(&rdma_client_stack(), &m, s);
            assert!(p.gbps > 39.0, "RDMA at {s}B: {}", p.gbps);
            assert!(
                p.cpu_percent < 3.0,
                "RDMA CPU at {s}B: {:.2}%",
                p.cpu_percent
            );
        }
    }

    #[test]
    fn rdma_server_is_free() {
        let m = Machine::paper_testbed();
        let p = throughput(&rdma_server_stack(), &m, 4096);
        assert_eq!(p.cpu_percent, 0.0);
        assert!(p.gbps > 39.0);
    }

    #[test]
    fn latency_matches_paper_2kb_numbers() {
        let m = Machine::paper_testbed();
        let tcp = latency_us(&tcp_stack(), &m, 2048);
        let rw = latency_us(&rdma_client_stack(), &m, 2048);
        let send = latency_us(&rdma_send_stack(), &m, 2048);
        assert!(
            (tcp - 25.4).abs() < 1.0,
            "TCP 2KB: {tcp:.1} µs (paper 25.4)"
        );
        assert!(
            (rw - 1.7).abs() < 0.3,
            "RDMA r/w 2KB: {rw:.2} µs (paper 1.7)"
        );
        assert!(
            (send - 2.8).abs() < 0.5,
            "RDMA send 2KB: {send:.2} µs (paper 2.8)"
        );
        assert!(tcp > 5.0 * send, "order-of-magnitude gap");
    }

    #[test]
    fn throughput_monotone_in_message_size() {
        let m = Machine::paper_testbed();
        let mut last = 0.0;
        for &s in &FIG1_SIZES {
            let p = throughput(&tcp_stack(), &m, s);
            assert!(p.gbps >= last);
            last = p.gbps;
        }
    }

    #[test]
    fn cpu_percent_never_exceeds_100() {
        let m = Machine::paper_testbed();
        for s in [64, 512, 1024, 4096] {
            let p = throughput(&tcp_stack(), &m, s);
            assert!(p.cpu_percent <= 100.0);
            assert!(p.gbps > 0.0);
        }
    }
}
