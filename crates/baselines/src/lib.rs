#![warn(missing_docs)]

//! # baselines — what the paper compares DCQCN against
//!
//! * [`dctcp`] — DCTCP, the window-based ECN scheme (§6.3 / Figure 19 and
//!   the §7 multi-bottleneck discussion),
//! * [`qcn`] — the QCN (802.1Qau) reaction point, DCQCN's L2 ancestor
//!   (§2.3),
//! * [`hostmodel`] — the analytic TCP-vs-RDMA host-stack cost model that
//!   stands in for the Figure 1 hardware measurement,
//! * [`timely`] — the RTT-gradient scheme §3.3 contrasts DCQCN against,
//! * PFC-only ("No DCQCN") is simply [`netsim::cc::NoCc`].

pub mod dctcp;
pub mod hostmodel;
pub mod qcn;
pub mod timely;

/// Common imports.
pub mod prelude {
    pub use crate::dctcp::{dctcp, Dctcp, DctcpParams};
    pub use crate::hostmodel::{
        latency_us, rdma_client_stack, rdma_send_stack, rdma_server_stack, tcp_stack, throughput,
        Machine, StackProfile, FIG1_SIZES,
    };
    pub use crate::qcn::{qcn, QcnParams, QcnRp};
    pub use crate::timely::{timely, timely_host_config, Timely, TimelyParams};
    pub use netsim::cc::NoCc;
}
