//! QCN (IEEE 802.1Qau) reaction point — DCQCN's L2 ancestor (§2.3).
//!
//! QCN's congestion point computes a quantized feedback value
//! `Fb = −(q_off + w·q_delta)` and probabilistically samples packets to
//! carry it back to the *source MAC* — which is why it cannot cross an IP
//! router (§2.3: "the original Ethernet header is not preserved"). In this
//! simulator the feedback message is routed like any packet, so the
//! baseline can still be exercised on L3 topologies; the protocol-level
//! limitation is documented rather than replicated.
//!
//! The RP is rate-based like DCQCN's, but cuts in proportion to the
//! quantized feedback (`R_C ← R_C (1 − G_d·Fb)`, `G_d = 1/128` so the
//! maximum cut with 6-bit Fb is 50%) and recovers with the same byte
//! counter + timer machinery DCQCN inherited.

use netsim::cc::{CcActions, CongestionControl};
use netsim::units::{Bandwidth, Duration, Time};

/// Timer id for the QCN rate-increase timer.
pub const TIMER_RATE: u32 = 1;

/// QCN RP parameters (802.1Qau defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcnParams {
    /// Multiplicative decrease gain `G_d` (1/128: 6-bit Fb max 63 → ~49%).
    pub gd: f64,
    /// Byte counter for rate increase (QCN default 150 KB).
    pub byte_counter: u64,
    /// Rate-increase timer (QCN default 1.5 ms... the value the DCQCN
    /// paper's strawman inherits).
    pub rate_timer: Duration,
    /// Fast-recovery steps before active increase.
    pub fast_recovery_steps: u32,
    /// Active-increase step.
    pub rai: Bandwidth,
    /// Hyper-increase step.
    pub rhai: Bandwidth,
    /// Rate floor.
    pub min_rate: Bandwidth,
}

impl QcnParams {
    /// 802.1Qau-recommended values.
    pub fn standard() -> QcnParams {
        QcnParams {
            gd: 1.0 / 128.0,
            byte_counter: 150_000,
            rate_timer: Duration::from_micros(1500),
            fast_recovery_steps: 5,
            rai: Bandwidth::mbps(40),
            rhai: Bandwidth::mbps(400),
            min_rate: Bandwidth::mbps(10),
        }
    }
}

/// The QCN reaction point for one flow.
#[derive(Debug, Clone)]
pub struct QcnRp {
    params: QcnParams,
    line_rate: Bandwidth,
    rc: Bandwidth,
    rt: Bandwidth,
    t_count: u32,
    bc_count: u32,
    bytes: u64,
    limited: bool,
}

impl QcnRp {
    /// A fresh QCN RP at line rate.
    pub fn new(line_rate: Bandwidth, params: QcnParams) -> QcnRp {
        QcnRp {
            params,
            line_rate,
            rc: line_rate,
            rt: line_rate,
            t_count: 0,
            bc_count: 0,
            bytes: 0,
            limited: false,
        }
    }

    /// Target rate.
    pub fn target_rate(&self) -> Bandwidth {
        self.rt
    }

    /// Is the limiter engaged?
    pub fn is_limited(&self) -> bool {
        self.limited
    }

    fn release(&mut self, actions: &mut CcActions) {
        self.limited = false;
        self.rc = self.line_rate;
        self.rt = self.line_rate;
        self.t_count = 0;
        self.bc_count = 0;
        self.bytes = 0;
        actions.disarm(TIMER_RATE);
    }

    fn rate_increase(&mut self, actions: &mut CcActions) {
        let f = self.params.fast_recovery_steps;
        if self.t_count.max(self.bc_count) < f {
            // fast recovery: move halfway to target
        } else if self.t_count.min(self.bc_count) > f {
            let i = (self.t_count.min(self.bc_count) - f) as u64;
            self.rt = self
                .rt
                .saturating_add(Bandwidth(self.params.rhai.0.saturating_mul(i)))
                .min(self.line_rate);
        } else {
            self.rt = self.rt.saturating_add(self.params.rai).min(self.line_rate);
        }
        self.rc = self.rt.midpoint(self.rc).min(self.line_rate);
        if self.rc == self.line_rate {
            self.release(actions);
        }
    }
}

impl CongestionControl for QcnRp {
    fn rate(&self) -> Bandwidth {
        self.rc
    }

    fn on_qcn_feedback(&mut self, now: Time, fb: u8, actions: &mut CcActions) {
        let fb = fb.min(63) as f64;
        self.rt = self.rc;
        self.rc = self
            .rc
            .scale(1.0 - self.params.gd * fb)
            .max(self.params.min_rate);
        self.t_count = 0;
        self.bc_count = 0;
        self.bytes = 0;
        self.limited = true;
        actions.arm(TIMER_RATE, now + self.params.rate_timer);
    }

    fn on_send(&mut self, _now: Time, bytes: u64, actions: &mut CcActions) {
        if !self.limited {
            return;
        }
        self.bytes += bytes;
        while self.bytes >= self.params.byte_counter {
            self.bytes -= self.params.byte_counter;
            self.bc_count += 1;
            self.rate_increase(actions);
            if !self.limited {
                return;
            }
        }
    }

    fn on_timer(&mut self, now: Time, id: u32, actions: &mut CcActions) {
        if !self.limited || id != TIMER_RATE {
            return;
        }
        self.t_count += 1;
        self.rate_increase(actions);
        if self.limited {
            actions.arm(TIMER_RATE, now + self.params.rate_timer);
        }
    }

    fn reset(&mut self, _now: Time, actions: &mut CcActions) {
        self.release(actions);
    }

    fn name(&self) -> &'static str {
        "qcn"
    }
}

/// Convenience factory for [`netsim::network::Network::add_flow`].
pub fn qcn(params: QcnParams) -> impl Fn(Bandwidth) -> Box<dyn CongestionControl> {
    move |line| Box::new(QcnRp::new(line, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rp() -> QcnRp {
        QcnRp::new(Bandwidth::gbps(40), QcnParams::standard())
    }

    #[test]
    fn starts_unlimited_at_line_rate() {
        let r = rp();
        assert_eq!(r.rate(), Bandwidth::gbps(40));
        assert!(!r.is_limited());
    }

    #[test]
    fn max_feedback_cuts_about_half() {
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_qcn_feedback(Time::ZERO, 63, &mut a);
        let gbps = r.rate().as_gbps_f64();
        assert!((20.0..21.0).contains(&gbps), "rate {gbps}");
        assert_eq!(r.target_rate(), Bandwidth::gbps(40));
    }

    #[test]
    fn cut_scales_with_feedback() {
        let mut mild = rp();
        let mut severe = rp();
        let mut a = CcActions::default();
        mild.on_qcn_feedback(Time::ZERO, 4, &mut a);
        severe.on_qcn_feedback(Time::ZERO, 60, &mut a);
        assert!(mild.rate() > severe.rate());
        // fb = 4: cut by 4/128 ≈ 3%.
        assert!(mild.rate().as_gbps_f64() > 38.5);
    }

    #[test]
    fn feedback_is_clamped_to_six_bits() {
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_qcn_feedback(Time::ZERO, 255, &mut a);
        assert!(r.rate().as_gbps_f64() >= 19.9, "never cuts more than ~50%");
    }

    #[test]
    fn byte_counter_recovery() {
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_qcn_feedback(Time::ZERO, 63, &mut a);
        let r0 = r.rate();
        // One 150 KB byte-counter period → one fast-recovery step.
        r.on_send(Time::ZERO, 150_000, &mut a);
        assert!(r.rate() > r0);
    }

    #[test]
    fn full_recovery_releases_limiter() {
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_qcn_feedback(Time::ZERO, 63, &mut a);
        for i in 1..10_000 {
            if !r.is_limited() {
                break;
            }
            r.on_timer(Time::from_micros(1500 * i), TIMER_RATE, &mut a);
        }
        assert!(!r.is_limited());
        assert_eq!(r.rate(), Bandwidth::gbps(40));
    }

    #[test]
    fn floor_is_respected() {
        let mut r = rp();
        let mut a = CcActions::default();
        for i in 0..5000 {
            r.on_qcn_feedback(Time::from_micros(i), 63, &mut a);
        }
        assert_eq!(r.rate(), QcnParams::standard().min_rate);
    }

    #[test]
    fn factory_and_name() {
        let f = qcn(QcnParams::standard());
        assert_eq!(f(Bandwidth::gbps(40)).name(), "qcn");
    }
}
