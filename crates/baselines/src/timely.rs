//! TIMELY (Mittal et al., SIGCOMM 2015) — the RTT-gradient rate controller
//! the DCQCN paper contrasts itself with in §3.3: "DCQCN is not
//! particularly sensitive to congestion on the reverse path, as the send
//! rate does not depend on accurate RTT estimation like TIMELY."
//!
//! Per the TIMELY paper, each RTT sample drives:
//!
//! * `new_rtt < T_low`  → additive increase `R += δ`,
//! * `new_rtt > T_high` → multiplicative decrease
//!   `R ← R·(1 − β·(1 − T_high/new_rtt))`,
//! * otherwise gradient mode on the normalized RTT gradient
//!   `g = EWMA(ΔRTT)/minRTT`:
//!   - `g ≤ 0`: additive increase (×N after 5 consecutive negatives — HAI),
//!   - `g > 0`: `R ← R·(1 − β·g)`.
//!
//! RTT samples come from the transport's ACK path; because TIMELY measures
//! through the *data* class, its hosts send ACKs on the data priority (see
//! `timely_host_config`), which is exactly what makes it sensitive to
//! reverse-path congestion — reproduced in the `ext-timely` experiment.

use netsim::cc::{CcActions, CongestionControl};
use netsim::host::HostConfig;
use netsim::packet::DATA_PRIORITY;
use netsim::units::{Bandwidth, Duration, Time};

/// TIMELY parameters (scaled to the 40 G fabric's ~10 µs base RTT).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelyParams {
    /// Low RTT threshold `T_low`: below this, always increase.
    pub t_low: Duration,
    /// High RTT threshold `T_high`: above this, always decrease.
    pub t_high: Duration,
    /// Expected propagation (minimum) RTT, for gradient normalization.
    pub min_rtt: Duration,
    /// Additive increase step δ.
    pub delta: Bandwidth,
    /// Multiplicative decrease factor β.
    pub beta: f64,
    /// EWMA weight for the RTT-difference filter.
    pub alpha: f64,
    /// Consecutive negative-gradient samples before hyper increase.
    pub hai_after: u32,
    /// Rate floor.
    pub min_rate: Bandwidth,
}

impl TimelyParams {
    /// Defaults for the 40 Gbps testbed (base RTT ≈ 8–10 µs through one
    /// switch): T_low 20 µs, T_high 100 µs, δ = 10 Mbps, β = 0.8.
    pub fn default_40g() -> TimelyParams {
        TimelyParams {
            t_low: Duration::from_micros(20),
            t_high: Duration::from_micros(100),
            min_rtt: Duration::from_micros(10),
            delta: Bandwidth::mbps(10),
            beta: 0.8,
            alpha: 0.875,
            hai_after: 5,
            min_rate: Bandwidth::mbps(10),
        }
    }
}

/// TIMELY sender state for one flow.
#[derive(Debug, Clone)]
pub struct Timely {
    params: TimelyParams,
    line_rate: Bandwidth,
    rate: Bandwidth,
    prev_rtt: Option<Duration>,
    /// EWMA of RTT differences, in seconds.
    rtt_diff_ewma: f64,
    negatives: u32,
}

impl Timely {
    /// A fresh TIMELY flow at line rate.
    pub fn new(line_rate: Bandwidth, params: TimelyParams) -> Timely {
        Timely {
            params,
            line_rate,
            rate: line_rate,
            prev_rtt: None,
            rtt_diff_ewma: 0.0,
            negatives: 0,
        }
    }

    /// The current normalized gradient estimate.
    pub fn gradient(&self) -> f64 {
        self.rtt_diff_ewma / self.params.min_rtt.as_secs_f64()
    }

    fn apply_sample(&mut self, rtt: Duration) {
        let p = self.params;
        // Update the gradient filter first.
        if let Some(prev) = self.prev_rtt {
            let diff = rtt.as_secs_f64() - prev.as_secs_f64();
            self.rtt_diff_ewma = (1.0 - p.alpha) * self.rtt_diff_ewma + p.alpha * diff;
        }
        self.prev_rtt = Some(rtt);

        if rtt < p.t_low {
            self.rate = self.rate.saturating_add(p.delta).min(self.line_rate);
            self.negatives = 0;
            return;
        }
        if rtt > p.t_high {
            let f = 1.0 - p.beta * (1.0 - p.t_high.as_secs_f64() / rtt.as_secs_f64());
            self.rate = self.rate.scale(f).max(p.min_rate);
            self.negatives = 0;
            return;
        }
        let g = self.gradient();
        if g <= 0.0 {
            self.negatives += 1;
            let n = if self.negatives >= p.hai_after { 5 } else { 1 };
            self.rate = self
                .rate
                .saturating_add(Bandwidth(p.delta.0 * n))
                .min(self.line_rate);
        } else {
            self.negatives = 0;
            let f = (1.0 - p.beta * g.min(1.0)).max(0.0);
            self.rate = self.rate.scale(f).max(p.min_rate);
        }
    }
}

impl CongestionControl for Timely {
    fn rate(&self) -> Bandwidth {
        self.rate
    }

    fn on_ack(
        &mut self,
        _now: Time,
        _acked_bytes: u64,
        _acked_pkts: u32,
        _marked: u32,
        rtt: Option<Duration>,
        _actions: &mut CcActions,
    ) {
        if let Some(sample) = rtt {
            self.apply_sample(sample);
        }
    }

    fn reset(&mut self, _now: Time, _actions: &mut CcActions) {
        *self = Timely::new(self.line_rate, self.params);
    }

    fn name(&self) -> &'static str {
        "timely"
    }
}

/// Factory for [`netsim::network::Network::add_flow`].
pub fn timely(params: TimelyParams) -> impl Fn(Bandwidth) -> Box<dyn CongestionControl> {
    move |line| Box::new(Timely::new(line, params))
}

/// TIMELY host profile: no CNPs, per-packet-ish ACKs for dense RTT
/// sampling, and — crucially — ACKs on the **data** class, so the RTT
/// signal traverses the same queues as data (the measurement TIMELY
/// actually performs).
pub fn timely_host_config() -> HostConfig {
    HostConfig {
        cnp_interval: None,
        ack_every: 2,
        ack_priority: DATA_PRIORITY,
        ..HostConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(u: u64) -> Duration {
        Duration::from_micros(u)
    }

    fn flow() -> Timely {
        Timely::new(Bandwidth::gbps(40), TimelyParams::default_40g())
    }

    fn ack(t: &mut Timely, rtt: Duration) {
        let mut a = CcActions::default();
        t.on_ack(Time::ZERO, 1500, 1, 0, Some(rtt), &mut a);
    }

    #[test]
    fn starts_at_line_rate() {
        let t = flow();
        assert_eq!(t.rate(), Bandwidth::gbps(40));
        assert_eq!(t.window(), None);
        assert_eq!(t.name(), "timely");
    }

    #[test]
    fn low_rtt_increases_additively() {
        let mut t = flow();
        // Push rate down first so increase is visible.
        for _ in 0..20 {
            ack(&mut t, us(300));
        }
        let r0 = t.rate();
        ack(&mut t, us(5));
        assert_eq!(t.rate(), Bandwidth(r0.0 + Bandwidth::mbps(10).0));
    }

    #[test]
    fn high_rtt_cuts_multiplicatively() {
        let mut t = flow();
        ack(&mut t, us(300)); // 3× T_high
        let expect = 1.0 - 0.8 * (1.0 - 100.0 / 300.0);
        assert!((t.rate().as_gbps_f64() - 40.0 * expect).abs() < 0.1);
    }

    #[test]
    fn sustained_high_rtt_drives_to_floor() {
        let mut t = flow();
        for _ in 0..200 {
            ack(&mut t, us(500));
        }
        assert_eq!(t.rate(), TimelyParams::default_40g().min_rate);
    }

    #[test]
    fn rising_gradient_in_band_decreases() {
        let mut t = flow();
        // RTT rising within [T_low, T_high]: gradient positive → decrease.
        for rtt in [30u64, 40, 50, 60, 70, 80] {
            ack(&mut t, us(rtt));
        }
        assert!(t.gradient() > 0.0);
        assert!(t.rate() < Bandwidth::gbps(40));
    }

    #[test]
    fn falling_gradient_in_band_increases() {
        let mut t = flow();
        for _ in 0..30 {
            ack(&mut t, us(400)); // drive down
        }
        let r0 = t.rate();
        for rtt in [90u64, 80, 70, 60, 50, 40, 30, 25, 24, 23] {
            ack(&mut t, us(rtt));
        }
        assert!(t.gradient() < 0.0);
        assert!(t.rate() > r0, "{} -> {}", r0, t.rate());
    }

    #[test]
    fn hyper_increase_after_consecutive_negatives() {
        let mut t = flow();
        for _ in 0..30 {
            ack(&mut t, us(400));
        }
        // Feed a long falling sequence within the band; after 5 samples
        // the step jumps to 5δ.
        let mut last = t.rate();
        let mut steps = Vec::new();
        for i in 0..10 {
            ack(&mut t, us(90 - i * 5));
            steps.push(t.rate().0 - last.0);
            last = t.rate();
        }
        assert!(steps.last().unwrap() > steps.first().unwrap());
    }

    #[test]
    fn missing_rtt_samples_are_ignored() {
        let mut t = flow();
        let mut a = CcActions::default();
        t.on_ack(Time::ZERO, 1500, 1, 0, None, &mut a);
        assert_eq!(t.rate(), Bandwidth::gbps(40));
    }

    #[test]
    fn rate_bounds_hold_under_arbitrary_samples() {
        let mut t = flow();
        let p = TimelyParams::default_40g();
        for i in 0..1000u64 {
            ack(&mut t, us((i * 37) % 600 + 1));
            assert!(t.rate() >= p.min_rate);
            assert!(t.rate() <= Bandwidth::gbps(40));
        }
    }

    #[test]
    fn host_profile_measures_through_data_class() {
        let c = timely_host_config();
        assert_eq!(c.ack_priority, DATA_PRIORITY);
        assert!(c.cnp_interval.is_none());
    }
}
