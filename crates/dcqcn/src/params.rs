//! DCQCN protocol parameters.
//!
//! Two canonical sets:
//!
//! * [`DcqcnParams::paper`] — the deployed values of Figure 14 (derived from
//!   the fluid-model analysis of §5),
//! * [`DcqcnParams::strawman`] — the QCN/DCTCP-recommended values §5.2
//!   starts from and shows to be non-convergent.
//!
//! Plus the CP (switch RED) presets used throughout the evaluation.

use netsim::ecn::RedConfig;
use netsim::units::{bytes, Bandwidth, Duration};

/// Rate-increase step sizes and timers of the DCQCN reaction point, and the
/// NP's CNP pacing interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcqcnParams {
    /// EWMA gain `g` for α (Equation 1). Deployed: 1/256.
    pub g: f64,
    /// NP CNP generation interval `N` (one CNP per flow per interval at
    /// most). Deployed: 50 µs.
    pub cnp_interval: Duration,
    /// RP α-decay timer `K` (Equation 2 fires when no CNP arrives for this
    /// long). Must exceed `cnp_interval`. Deployed: 55 µs.
    pub alpha_timer: Duration,
    /// RP rate-increase timer `T`. Deployed: 55 µs (the strawman's 1.5 ms
    /// is what breaks convergence).
    pub rate_timer: Duration,
    /// RP byte counter `B`: one increase event per this many sent bytes.
    /// Deployed: 10 MB.
    pub byte_counter: u64,
    /// Fast-recovery steps `F` before additive increase. Fixed at 5.
    pub fast_recovery_steps: u32,
    /// Additive increase step `R_AI`. Deployed: 40 Mbps.
    pub rai: Bandwidth,
    /// Hyper increase step `R_HAI` (after `F` timer *and* byte-counter
    /// expirations). 10 × `R_AI` per the QCN lineage.
    pub rhai: Bandwidth,
    /// Floor on the sending rate.
    pub min_rate: Bandwidth,
}

impl DcqcnParams {
    /// The deployed parameters of Figure 14.
    pub fn paper() -> DcqcnParams {
        DcqcnParams {
            g: 1.0 / 256.0,
            cnp_interval: Duration::from_micros(50),
            alpha_timer: Duration::from_micros(55),
            rate_timer: Duration::from_micros(55),
            byte_counter: bytes::mb(10),
            fast_recovery_steps: 5,
            rai: Bandwidth::mbps(40),
            rhai: Bandwidth::mbps(400),
            min_rate: Bandwidth::mbps(10),
        }
    }

    /// The strawman §5.2 starts from: QCN-recommended byte counter
    /// (150 KB) and timer (1.5 ms), DCTCP-recommended g = 1/16.
    pub fn strawman() -> DcqcnParams {
        DcqcnParams {
            g: 1.0 / 16.0,
            byte_counter: bytes::kb(150),
            rate_timer: Duration::from_millis(1) + Duration::from_micros(500),
            ..DcqcnParams::paper()
        }
    }

    /// Paper parameters with a different rate-increase timer (Fig 11b/13b).
    pub fn with_timer(mut self, t: Duration) -> DcqcnParams {
        self.rate_timer = t;
        self
    }

    /// Paper parameters with a different byte counter (Fig 11a).
    pub fn with_byte_counter(mut self, b: u64) -> DcqcnParams {
        self.byte_counter = b;
        self
    }

    /// Paper parameters with a different g (Fig 12).
    pub fn with_g(mut self, g: f64) -> DcqcnParams {
        self.g = g;
        self
    }
}

/// The deployed CP (switch RED) configuration of Figure 14:
/// K_min = 5 KB, K_max = 200 KB, P_max = 1 %.
pub fn red_deployed() -> RedConfig {
    RedConfig {
        kmin_bytes: bytes::kb(5),
        kmax_bytes: bytes::kb(200),
        pmax: 0.01,
    }
}

/// DCTCP-like cut-off marking at the strawman threshold (§5.2:
/// K_min = K_max = 40 KB, P_max = 1).
pub fn red_cutoff_strawman() -> RedConfig {
    RedConfig::cutoff(bytes::kb(40))
}

/// The §6.3 DCTCP comparison threshold: 160 KB cut-off per the DCTCP
/// guidelines at 40 Gbps.
pub fn red_cutoff_dctcp_40g() -> RedConfig {
    RedConfig::cutoff(bytes::kb(160))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 14 — assert the deployed parameter table verbatim.
    #[test]
    fn figure_14_table() {
        let p = DcqcnParams::paper();
        assert_eq!(p.rate_timer, Duration::from_micros(55));
        assert_eq!(p.byte_counter, 10_000_000);
        assert_eq!(p.g, 1.0 / 256.0);
        assert_eq!(p.fast_recovery_steps, 5);
        assert_eq!(p.rai, Bandwidth::mbps(40));
        let red = red_deployed();
        assert_eq!(red.kmin_bytes, 5_000);
        assert_eq!(red.kmax_bytes, 200_000);
        assert_eq!(red.pmax, 0.01);
    }

    #[test]
    fn alpha_timer_exceeds_cnp_interval() {
        // §5: "These values need to be larger than CNP generation interval
        // to prevent unwarranted rate increases between successive CNPs."
        let p = DcqcnParams::paper();
        assert!(p.alpha_timer > p.cnp_interval);
        assert!(p.rate_timer >= p.cnp_interval);
    }

    #[test]
    fn strawman_differs_where_the_paper_says() {
        let s = DcqcnParams::strawman();
        let p = DcqcnParams::paper();
        assert_eq!(s.byte_counter, 150_000);
        assert_eq!(s.rate_timer, Duration::from_micros(1500));
        assert_eq!(s.g, 1.0 / 16.0);
        // Everything else matches the deployed set.
        assert_eq!(s.cnp_interval, p.cnp_interval);
        assert_eq!(s.rai, p.rai);
    }

    #[test]
    fn builders_override_single_fields() {
        let p = DcqcnParams::paper()
            .with_timer(Duration::from_micros(300))
            .with_byte_counter(1_000_000)
            .with_g(1.0 / 16.0);
        assert_eq!(p.rate_timer, Duration::from_micros(300));
        assert_eq!(p.byte_counter, 1_000_000);
        assert_eq!(p.g, 1.0 / 16.0);
        assert_eq!(p.rai, Bandwidth::mbps(40));
    }

    #[test]
    fn cutoff_presets() {
        let s = red_cutoff_strawman();
        assert_eq!(s.kmin_bytes, s.kmax_bytes);
        assert_eq!(s.pmax, 1.0);
        assert_eq!(red_cutoff_dctcp_40g().kmin_bytes, 160_000);
    }
}
