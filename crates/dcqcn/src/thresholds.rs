//! The §4 buffer-threshold engineering: `t_flight`, `t_PFC`, `t_ECN`.
//!
//! Correct DCQCN operation needs two guarantees at every switch:
//!
//! 1. PFC must not fire *before* ECN has had a chance to mark (otherwise
//!    congestion spreads before the end-to-end loop reacts), and
//! 2. PFC must fire *before* the buffer overflows (losslessness).
//!
//! This module reproduces the paper's worst-case arithmetic for a
//! shared-buffer switch with `n` ports and 8 PFC priorities, and computes
//! the feasible ECN threshold for both the static and the dynamic-β PFC
//! threshold.

use netsim::buffer::BufferConfig;
use netsim::packet::NUM_PRIORITIES;
use netsim::units::{Bandwidth, Duration};

/// Worst-case headroom (`t_flight`) a PAUSE sender must reserve per
/// (port, priority), following the 802.1Qbb guidelines the paper cites:
/// the in-flight bytes of a round trip on the cable, one maximum-size frame
/// that the upstream device had already started transmitting, one
/// maximum-size frame that *we* may be busy transmitting when the PAUSE is
/// due (delaying it), the PAUSE frame itself, and the upstream response
/// time (2 PFC quanta of 512 bit times).
pub fn headroom_bytes(bandwidth: Bandwidth, one_way_delay: Duration, mtu: u64) -> u64 {
    let bytes_per_sec = bandwidth.0 as f64 / 8.0;
    let rtt_bytes = (2.0 * one_way_delay.as_secs_f64() * bytes_per_sec) as u64;
    let quanta_bytes = 2 * 512 / 8; // 2 × 512-bit PFC quanta
    rtt_bytes + 2 * mtu + 64 + quanta_bytes
}

/// The paper's quoted per-(port, priority) headroom for its 40 G testbed.
pub const PAPER_HEADROOM_BYTES: u64 = 22_400;

/// The static upper bound on `t_PFC`:
/// `(B − 8·n·t_flight) / (8·n)` — every (port, priority) pair must be able
/// to sit at the threshold simultaneously without exhausting the pool.
pub fn static_pfc_bound(cfg: &BufferConfig) -> u64 {
    cfg.shared_pool() / (NUM_PRIORITIES as u64 * cfg.num_ports as u64)
}

/// The infeasible naive ECN bound under the static `t_PFC`:
/// `t_ECN < t_PFC / n` (worst case: all egress queues fed by one ingress).
/// For the paper's switch this is ~0.76 KB — less than one MTU, hence the
/// move to dynamic thresholds.
pub fn naive_ecn_bound(cfg: &BufferConfig) -> u64 {
    static_pfc_bound(cfg) / cfg.num_ports as u64
}

/// The feasible ECN bound under the dynamic threshold
/// `t_PFC = β (B − 8·n·t_flight − s) / 8`:
///
/// just before ECN triggers anywhere, `s ≤ n·t_ECN`, so requiring
/// `t_PFC > n·t_ECN` at that point yields
/// `t_ECN < β (B − 8·n·t_flight) / (8·n·(β + 1))`.
pub fn dynamic_ecn_bound(cfg: &BufferConfig, beta: f64) -> u64 {
    let pool = cfg.shared_pool() as f64;
    (beta * pool / (8.0 * cfg.num_ports as f64 * (beta + 1.0))) as u64
}

/// A summary of the §4 threshold derivation for a given switch, suitable
/// for printing (the `sec4` experiment) and asserting (tests).
#[derive(Debug, Clone, Copy)]
pub struct ThresholdReport {
    /// Reserved headroom per (port, priority).
    pub t_flight: u64,
    /// Static `t_PFC` upper bound.
    pub t_pfc_static: u64,
    /// Naive (infeasible) static ECN bound.
    pub t_ecn_naive: u64,
    /// Dynamic-β ECN bound.
    pub t_ecn_dynamic: u64,
    /// The β used.
    pub beta: f64,
}

/// Computes the full report for a switch configuration.
pub fn report(cfg: &BufferConfig, beta: f64) -> ThresholdReport {
    ThresholdReport {
        t_flight: cfg.headroom_bytes,
        t_pfc_static: static_pfc_bound(cfg),
        t_ecn_naive: naive_ecn_bound(cfg),
        t_ecn_dynamic: dynamic_ecn_bound(cfg, beta),
        beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_static_bound_is_24_47_kb() {
        let r = report(&BufferConfig::trident2(), 8.0);
        assert_eq!(r.t_pfc_static, 24_475);
    }

    #[test]
    fn paper_naive_ecn_bound_is_under_one_mtu() {
        // §4: "we get t_ECN < 0.8 KB. This is less than one MTU and hence
        // infeasible."
        let b = naive_ecn_bound(&BufferConfig::trident2());
        assert_eq!(b, 764);
        assert!(b < 1500);
    }

    #[test]
    fn paper_dynamic_ecn_bound_with_beta_8() {
        // §4: "we use β = 8, which leads to t_ECN < 21.7 KB" (2 s.f.).
        let b = dynamic_ecn_bound(&BufferConfig::trident2(), 8.0);
        assert!((21_000..22_100).contains(&b), "t_ECN bound = {b}");
    }

    #[test]
    fn larger_beta_leaves_more_ecn_room() {
        let cfg = BufferConfig::trident2();
        let b1 = dynamic_ecn_bound(&cfg, 1.0);
        let b8 = dynamic_ecn_bound(&cfg, 8.0);
        let b64 = dynamic_ecn_bound(&cfg, 64.0);
        assert!(b1 < b8 && b8 < b64);
        // And the bound approaches pool/(8n) as β → ∞.
        assert!(b64 < static_pfc_bound(&cfg));
    }

    #[test]
    fn deployed_kmin_is_below_the_dynamic_bound() {
        // The deployed K_min = 5 KB must satisfy the §4 constraint.
        let bound = dynamic_ecn_bound(&BufferConfig::trident2(), 8.0);
        assert!(crate::params::red_deployed().kmin_bytes < bound);
    }

    #[test]
    fn headroom_formula_magnitude() {
        // At 40 Gbps with a 1.5 µs one-way cable + processing delay the
        // worst case is ~ the paper's 22.4 KB figure.
        let h = headroom_bytes(Bandwidth::gbps(40), Duration::from_nanos(1900), 1500);
        assert!((20_000..25_000).contains(&h), "headroom = {h} bytes");
        // Faster links need more headroom.
        let h100 = headroom_bytes(Bandwidth::gbps(100), Duration::from_nanos(1900), 1500);
        assert!(h100 > h);
    }

    #[test]
    fn headroom_grows_with_cable_length() {
        let short = headroom_bytes(Bandwidth::gbps(40), Duration::from_nanos(500), 1500);
        let long = headroom_bytes(Bandwidth::gbps(40), Duration::from_micros(5), 1500);
        assert!(long > short);
    }
}
