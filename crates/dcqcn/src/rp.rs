//! The DCQCN reaction point (RP) — the sender-side rate controller of
//! §3.1, Figure 7 and Equations 1–4.
//!
//! On every CNP the RP cuts its rate multiplicatively and remembers the
//! pre-cut rate as the recovery target:
//!
//! ```text
//! R_T ← R_C            R_C ← R_C (1 − α/2)          α ← (1 − g) α + g
//! ```
//!
//! When no CNP arrives for `K` time units, α decays: `α ← (1 − g) α`.
//!
//! Rate increases are driven by a **byte counter** (every `B` sent bytes)
//! and a **timer** (every `T`), counted since the last CNP as `BC` and `T`:
//!
//! * fast recovery while `max(T, BC) < F`:   `R_C ← (R_T + R_C)/2`
//! * hyper increase once `min(T, BC) > F`:   `R_T ← R_T + i·R_HAI`
//! * additive increase otherwise:            `R_T ← R_T + R_AI`
//!
//! (both increase phases then also set `R_C ← (R_T + R_C)/2`).
//!
//! Per §3.3, the state exists only while the flow is rate limited: when
//! `R_C` recovers to the line rate the limiter is released and the next
//! congestion episode starts fresh (α = 1, "flows start at line rate").

use crate::params::DcqcnParams;
use netsim::cc::{CcActions, CongestionControl};
use netsim::units::{Bandwidth, Time};

/// Timer id for the α-decay timer (`K`).
pub const TIMER_ALPHA: u32 = 0;
/// Timer id for the rate-increase timer (`T`).
pub const TIMER_RATE: u32 = 1;

/// The DCQCN reaction point for one flow.
#[derive(Debug, Clone)]
pub struct DcqcnRp {
    params: DcqcnParams,
    line_rate: Bandwidth,
    /// Current rate `R_C`.
    rc: Bandwidth,
    /// Target rate `R_T`.
    rt: Bandwidth,
    /// Rate-reduction factor α.
    alpha: f64,
    /// Timer expirations since the last CNP (`T` in Figure 7).
    t_count: u32,
    /// Byte-counter expirations since the last CNP (`BC` in Figure 7).
    bc_count: u32,
    /// Bytes sent since the byte counter last expired.
    bytes: u64,
    /// Is the hardware rate limiter engaged?
    limited: bool,
}

impl DcqcnRp {
    /// A fresh RP: unlimited, sending at line rate.
    pub fn new(line_rate: Bandwidth, params: DcqcnParams) -> DcqcnRp {
        DcqcnRp {
            params,
            line_rate,
            rc: line_rate,
            rt: line_rate,
            alpha: 1.0,
            t_count: 0,
            bc_count: 0,
            bytes: 0,
            limited: false,
        }
    }

    /// Current α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Target rate `R_T`.
    pub fn target_rate(&self) -> Bandwidth {
        self.rt
    }

    /// Is the rate limiter currently engaged?
    pub fn is_limited(&self) -> bool {
        self.limited
    }

    /// The parameters in force.
    pub fn params(&self) -> &DcqcnParams {
        &self.params
    }

    fn release(&mut self, actions: &mut CcActions) {
        self.limited = false;
        self.rc = self.line_rate;
        self.rt = self.line_rate;
        self.alpha = 1.0;
        self.t_count = 0;
        self.bc_count = 0;
        self.bytes = 0;
        actions.disarm(TIMER_ALPHA);
        actions.disarm(TIMER_RATE);
    }

    /// One rate-increase event (from either the timer or the byte counter),
    /// per the Figure 7 state machine.
    fn rate_increase(&mut self, actions: &mut CcActions) {
        let f = self.params.fast_recovery_steps;
        if self.t_count.max(self.bc_count) < f {
            // Fast recovery: halve the gap to the target (Equation 3).
        } else if self.t_count.min(self.bc_count) > f {
            // Hyper increase: both clocks past F (Equation 4 with R_HAI,
            // scaled by how deep into the hyper phase we are, per QCN).
            let i = (self.t_count.min(self.bc_count) - f) as u64;
            self.rt = self
                .rt
                .saturating_add(Bandwidth(self.params.rhai.0.saturating_mul(i)))
                .min(self.line_rate);
        } else {
            // Additive increase (Equation 4).
            self.rt = self.rt.saturating_add(self.params.rai).min(self.line_rate);
        }
        self.rc = self.rt.midpoint(self.rc).min(self.line_rate);
        if self.rc == self.line_rate {
            // Fully recovered: free the limiter (§3.3).
            self.release(actions);
        }
    }
}

impl CongestionControl for DcqcnRp {
    fn rate(&self) -> Bandwidth {
        self.rc
    }

    fn on_cnp(&mut self, now: Time, actions: &mut CcActions) {
        // Equation 1: cut rate, remember target, bump α.
        self.rt = self.rc;
        self.rc = self
            .rc
            .scale(1.0 - self.alpha / 2.0)
            .max(self.params.min_rate);
        self.alpha = (1.0 - self.params.g) * self.alpha + self.params.g;
        // Figure 7: Reset(Timer, ByteCounter, T, BC, AlphaTimer).
        self.t_count = 0;
        self.bc_count = 0;
        self.bytes = 0;
        self.limited = true;
        actions.arm(TIMER_ALPHA, now + self.params.alpha_timer);
        actions.arm(TIMER_RATE, now + self.params.rate_timer);
    }

    fn on_send(&mut self, _now: Time, bytes: u64, actions: &mut CcActions) {
        if !self.limited {
            return;
        }
        self.bytes += bytes;
        while self.bytes >= self.params.byte_counter {
            self.bytes -= self.params.byte_counter;
            self.bc_count += 1;
            self.rate_increase(actions);
            if !self.limited {
                return;
            }
        }
    }

    fn on_timer(&mut self, now: Time, id: u32, actions: &mut CcActions) {
        if !self.limited {
            return;
        }
        match id {
            TIMER_ALPHA => {
                // Equation 2: no CNP for K time units.
                self.alpha *= 1.0 - self.params.g;
                actions.arm(TIMER_ALPHA, now + self.params.alpha_timer);
            }
            TIMER_RATE => {
                self.t_count += 1;
                self.rate_increase(actions);
                if self.limited {
                    actions.arm(TIMER_RATE, now + self.params.rate_timer);
                }
            }
            _ => {}
        }
    }

    fn reset(&mut self, _now: Time, actions: &mut CcActions) {
        self.release(actions);
    }

    fn name(&self) -> &'static str {
        "dcqcn"
    }

    fn audit_info(&self) -> Option<netsim::cc::CcAuditInfo> {
        Some(netsim::cc::CcAuditInfo {
            rate: self.rc,
            target: self.rt,
            line: self.line_rate,
            alpha: Some(self.alpha),
        })
    }
}

/// Convenience: a closure suitable for [`netsim::network::Network::add_flow`].
pub fn dcqcn(params: DcqcnParams) -> impl Fn(Bandwidth) -> Box<dyn CongestionControl> {
    move |line| Box::new(DcqcnRp::new(line, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::units::Duration;

    fn rp() -> DcqcnRp {
        DcqcnRp::new(Bandwidth::gbps(40), DcqcnParams::paper())
    }

    #[test]
    fn starts_at_line_rate_unlimited() {
        let r = rp();
        assert_eq!(r.rate(), Bandwidth::gbps(40));
        assert!(!r.is_limited());
        assert_eq!(r.alpha(), 1.0);
        assert_eq!(r.window(), None);
    }

    #[test]
    fn first_cnp_halves_rate() {
        // With initial α = 1, the first cut is R_C(1 − 1/2) = R_C/2.
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_cnp(Time::from_micros(100), &mut a);
        assert_eq!(r.rate(), Bandwidth::gbps(20));
        assert_eq!(r.target_rate(), Bandwidth::gbps(40));
        assert!(r.is_limited());
        // α ← (1−g)·1 + g = 1 still.
        assert!((r.alpha() - 1.0).abs() < 1e-12);
        // Both timers armed.
        let ids: Vec<u32> = a.timers.iter().map(|&(id, _)| id).collect();
        assert!(ids.contains(&TIMER_ALPHA) && ids.contains(&TIMER_RATE));
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_cnp(Time::ZERO, &mut a);
        let a0 = r.alpha();
        let mut t = Time::ZERO + Duration::from_micros(55);
        for _ in 0..10 {
            r.on_timer(t, TIMER_ALPHA, &mut a);
            t += Duration::from_micros(55);
        }
        let g: f64 = 1.0 / 256.0;
        let expect = a0 * (1.0 - g).powi(10);
        assert!((r.alpha() - expect).abs() < 1e-12);
    }

    #[test]
    fn fast_recovery_converges_to_target() {
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_cnp(Time::ZERO, &mut a);
        let target = r.target_rate();
        let mut last_gap = target.0 - r.rate().0;
        // F−1 = 4 timer events stay in fast recovery, halving the gap.
        for i in 0..4 {
            r.on_timer(Time::from_micros(55 * (i + 1)), TIMER_RATE, &mut a);
            let gap = target.0 - r.rate().0;
            assert!(gap <= last_gap / 2 + 1, "gap did not halve");
            last_gap = gap;
            assert_eq!(r.target_rate(), target, "target fixed in fast recovery");
        }
    }

    #[test]
    fn additive_increase_raises_target_by_rai() {
        let mut r = rp();
        let mut a = CcActions::default();
        // Two cuts so the target sits below line rate (no clamping).
        r.on_cnp(Time::ZERO, &mut a);
        r.on_cnp(Time::from_micros(50), &mut a);
        let t0 = r.target_rate();
        assert_eq!(t0, Bandwidth::gbps(20));
        // Drive 5 timer expirations: the 5th (T = 5 = F, max(T,BC) = F) is
        // additive increase.
        for i in 0..5 {
            r.on_timer(Time::from_micros(100 + 55 * (i + 1)), TIMER_RATE, &mut a);
        }
        assert_eq!(r.target_rate(), Bandwidth(t0.0 + Bandwidth::mbps(40).0));
    }

    #[test]
    fn byte_counter_drives_increase() {
        let p = DcqcnParams::paper().with_byte_counter(1_000_000);
        let mut r = DcqcnRp::new(Bandwidth::gbps(40), p);
        let mut a = CcActions::default();
        r.on_cnp(Time::ZERO, &mut a);
        let rc0 = r.rate();
        // 1 MB sent → one byte-counter event → fast recovery step.
        r.on_send(Time::from_micros(10), 1_000_000, &mut a);
        assert!(r.rate() > rc0);
        assert_eq!(r.rate(), r.target_rate().midpoint(rc0));
    }

    #[test]
    fn byte_counter_accumulates_partial_sends() {
        let p = DcqcnParams::paper().with_byte_counter(10_000);
        let mut r = DcqcnRp::new(Bandwidth::gbps(40), p);
        let mut a = CcActions::default();
        r.on_cnp(Time::ZERO, &mut a);
        let rc0 = r.rate();
        for _ in 0..6 {
            r.on_send(Time::ZERO, 1_500, &mut a);
        }
        // 9000 bytes: no event yet.
        assert_eq!(r.rate(), rc0);
        r.on_send(Time::ZERO, 1_500, &mut a);
        assert!(r.rate() > rc0);
    }

    #[test]
    fn recovery_to_line_rate_releases_limiter() {
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_cnp(Time::ZERO, &mut a);
        // Many timer events: fast recovery back toward 40G, then additive
        // increase pushes the target up; eventually R_C == line rate.
        for i in 1..10_000 {
            if !r.is_limited() {
                break;
            }
            r.on_timer(Time::from_micros(55 * i), TIMER_RATE, &mut a);
        }
        assert!(!r.is_limited());
        assert_eq!(r.rate(), Bandwidth::gbps(40));
        assert_eq!(r.alpha(), 1.0, "released state starts fresh");
        // Timers disarmed at release.
        assert_eq!(
            a.timers.last().map(|&(id, at)| (id, at)).unwrap().1,
            Time::NEVER
        );
    }

    #[test]
    fn repeated_cnps_drive_rate_toward_floor() {
        let mut r = rp();
        let mut a = CcActions::default();
        for i in 0..2000 {
            r.on_cnp(Time::from_micros(50 * i), &mut a);
        }
        assert_eq!(r.rate(), DcqcnParams::paper().min_rate);
    }

    #[test]
    fn alpha_saturates_at_one_under_sustained_cnps() {
        let mut r = rp();
        let mut a = CcActions::default();
        for i in 0..100 {
            r.on_cnp(Time::from_micros(50 * i), &mut a);
            assert!(r.alpha() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn hyper_increase_engages_after_f_both_clocks() {
        // Tiny byte counter so BC races ahead, then timers catch up.
        let p = DcqcnParams::paper().with_byte_counter(1000);
        let mut r = DcqcnRp::new(Bandwidth::gbps(400), p); // huge line rate so we stay limited
        let mut a = CcActions::default();
        // Two cuts: rt = 200 G, rc = 100 G — far from the line-rate clamp.
        r.on_cnp(Time::ZERO, &mut a);
        r.on_cnp(Time::from_micros(50), &mut a);
        // 6 byte-counter events: BC = 6 > F.
        for _ in 0..6 {
            r.on_send(Time::from_micros(60), 1000, &mut a);
        }
        // 5 timer events: min(T,BC) = T ≤ F, so no hyper increase yet.
        for i in 1..=5 {
            r.on_timer(Time::from_micros(100 + 55 * i), TIMER_RATE, &mut a);
        }
        let before = r.target_rate();
        // 6th timer event: min(6, 6) > F → hyper increase by i·R_HAI.
        r.on_timer(Time::from_micros(100 + 55 * 6), TIMER_RATE, &mut a);
        assert!(
            r.target_rate().0 - before.0 >= Bandwidth::mbps(400).0,
            "hyper increase step (got {} -> {})",
            before,
            r.target_rate()
        );
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_cnp(Time::ZERO, &mut a);
        r.reset(Time::from_millis(5), &mut a);
        assert!(!r.is_limited());
        assert_eq!(r.rate(), Bandwidth::gbps(40));
        assert_eq!(r.alpha(), 1.0);
    }

    #[test]
    fn unlimited_rp_ignores_timers_and_sends() {
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_timer(Time::from_micros(55), TIMER_RATE, &mut a);
        r.on_send(Time::ZERO, 100_000_000, &mut a);
        assert_eq!(r.rate(), Bandwidth::gbps(40));
        assert!(!r.is_limited());
    }

    #[test]
    fn factory_builds_flows_at_line_rate() {
        let f = dcqcn(DcqcnParams::paper());
        let cc = f(Bandwidth::gbps(10));
        assert_eq!(cc.rate(), Bandwidth::gbps(10));
        assert_eq!(cc.name(), "dcqcn");
    }

    /// Equation 1 cross-check: two successive CNPs with α updates.
    #[test]
    fn equation_one_sequence() {
        let g = 1.0 / 256.0;
        let mut r = rp();
        let mut a = CcActions::default();
        r.on_cnp(Time::ZERO, &mut a);
        // After 1st: rc = 20G, α = 1.
        r.on_cnp(Time::from_micros(50), &mut a);
        // rt = 20G; rc = 20G(1 − α/2) with α = 1 → 10G; α ← (1−g)·1+g = 1.
        assert_eq!(r.target_rate(), Bandwidth::gbps(20));
        assert_eq!(r.rate(), Bandwidth::gbps(10));
        let _ = g;
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use netsim::units::Duration;
    use proptest::prelude::*;

    proptest! {
        /// Under arbitrary interleavings of CNPs, timers and sends, the RP
        /// never violates min_rate ≤ R_C ≤ R_T ≤ line, α ∈ [0, 1], and a
        /// released limiter always reports exactly the line rate.
        #[test]
        fn rp_invariants(events in prop::collection::vec(0u8..5, 1..400), line_gbps in 1u64..100) {
            let line = Bandwidth::gbps(line_gbps);
            let p = DcqcnParams::paper();
            let mut rp = DcqcnRp::new(line, p);
            let mut now = Time::ZERO;
            let mut a = CcActions::default();
            for e in events {
                now += Duration::from_micros(13);
                match e {
                    0 => rp.on_cnp(now, &mut a),
                    1 => rp.on_timer(now, TIMER_RATE, &mut a),
                    2 => rp.on_timer(now, TIMER_ALPHA, &mut a),
                    3 => rp.on_send(now, 1500, &mut a),
                    _ => rp.reset(now, &mut a),
                }
                prop_assert!(rp.rate() >= p.min_rate.min(line));
                prop_assert!(rp.rate() <= line);
                prop_assert!(rp.rate() <= rp.target_rate());
                prop_assert!(rp.target_rate() <= line);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&rp.alpha()));
                if !rp.is_limited() {
                    prop_assert_eq!(rp.rate(), line);
                    prop_assert!((rp.alpha() - 1.0).abs() < 1e-12);
                }
            }
        }

        /// CNPs strictly reduce the rate until the floor, regardless of
        /// prior state.
        #[test]
        fn cnp_is_monotone_decrease(pre_timers in 0u32..20) {
            let p = DcqcnParams::paper();
            let mut rp = DcqcnRp::new(Bandwidth::gbps(40), p);
            let mut a = CcActions::default();
            let mut now = Time::ZERO;
            rp.on_cnp(now, &mut a);
            for _ in 0..pre_timers {
                now += Duration::from_micros(55);
                rp.on_timer(now, TIMER_RATE, &mut a);
            }
            let before = rp.rate();
            now += Duration::from_micros(50);
            rp.on_cnp(now, &mut a);
            prop_assert!(rp.rate() <= before);
            prop_assert!(rp.rate() >= p.min_rate || rp.rate() == before);
        }

        /// Timer-driven recovery is monotone non-decreasing between CNPs.
        #[test]
        fn recovery_is_monotone(ticks in 1u64..200) {
            let p = DcqcnParams::paper();
            let mut rp = DcqcnRp::new(Bandwidth::gbps(40), p);
            let mut a = CcActions::default();
            rp.on_cnp(Time::ZERO, &mut a);
            rp.on_cnp(Time::from_micros(50), &mut a);
            let mut last = rp.rate();
            for i in 1..=ticks {
                rp.on_timer(Time::from_micros(100 + 55 * i), TIMER_RATE, &mut a);
                prop_assert!(rp.rate() >= last);
                last = rp.rate();
            }
        }
    }
}
