#![warn(missing_docs)]

//! # dcqcn — Datacenter QCN congestion control
//!
//! The primary contribution of *"Congestion Control for Large-Scale RDMA
//! Deployments"* (Zhu et al., SIGCOMM 2015): a rate-based, end-to-end
//! congestion control protocol for RoCEv2 implemented entirely in NICs and
//! commodity switch features (RED/ECN), designed to keep PFC from firing.
//!
//! The protocol has three parts:
//!
//! * **CP** (congestion point, the switch): RED/ECN marking on the egress
//!   queue — configured via [`params::red_deployed`] and friends; the
//!   mechanism itself lives in `netsim::ecn`,
//! * **NP** (notification point, the receiver): paced CNP generation —
//!   [`np::NpState`],
//! * **RP** (reaction point, the sender): multiplicative rate cuts on CNPs
//!   with byte-counter/timer-driven recovery — [`rp::DcqcnRp`], a
//!   [`netsim::cc::CongestionControl`] implementation.
//!
//! [`thresholds`] reproduces the §4 switch buffer engineering that
//! guarantees ECN marks before PFC pauses.
//!
//! ## Running DCQCN on a simulated fabric
//!
//! ```
//! use dcqcn::prelude::*;
//! use netsim::prelude::*;
//!
//! let params = DcqcnParams::paper();
//! let mut star = netsim::topology::star(
//!     3,
//!     netsim::topology::LinkParams::default(),
//!     dcqcn_host_config(params),
//!     SwitchConfig::paper_default().with_red(red_deployed()),
//!     7,
//! );
//! // 2:1 incast of greedy flows.
//! let f1 = star.net.add_flow(star.hosts[0], star.hosts[2], DATA_PRIORITY, dcqcn(params));
//! let f2 = star.net.add_flow(star.hosts[1], star.hosts[2], DATA_PRIORITY, dcqcn(params));
//! star.net.send_message(f1, u64::MAX, Time::ZERO);
//! star.net.send_message(f2, u64::MAX, Time::ZERO);
//! star.net.run_until(Time::from_millis(60));
//! // The two flows share the bottleneck fairly and recover to high
//! // utilization after the line-rate-start transient.
//! let g1 = star.net.flow_stats(f1).delivered_bytes as f64;
//! let g2 = star.net.flow_stats(f2).delivered_bytes as f64;
//! assert!((g1 + g2) * 8.0 / 60e-3 / 1e9 > 25.0, "high utilization");
//! assert!((g1 - g2).abs() / (g1 + g2) < 0.1, "fair split");
//! ```

pub mod np;
pub mod params;
pub mod rp;
pub mod thresholds;

use netsim::host::HostConfig;

/// A `netsim` host configuration whose NP matches `params` (CNP pacing at
/// the configured interval; everything else default).
pub fn dcqcn_host_config(params: params::DcqcnParams) -> HostConfig {
    HostConfig {
        cnp_interval: Some(params.cnp_interval),
        ..HostConfig::default()
    }
}

/// Common imports.
pub mod prelude {
    pub use crate::dcqcn_host_config;
    pub use crate::np::NpState;
    pub use crate::params::{red_cutoff_dctcp_40g, red_cutoff_strawman, red_deployed, DcqcnParams};
    pub use crate::rp::{dcqcn, DcqcnRp};
    pub use crate::thresholds;
}
