//! The DCQCN notification point (NP) — the receiver-side CNP generator of
//! §3.1, Figure 6.
//!
//! When a CE-marked packet arrives for a flow and no CNP has been sent for
//! that flow in the last `N` microseconds, a CNP is sent immediately; at
//! most one CNP per `N` per flow is generated. Unmarked packets never
//! generate feedback ("no CNPs are generated in the common case of no
//! congestion").
//!
//! This is the same state machine the `netsim` host executes inline (see
//! `netsim::host::Host::receive`); it is factored out here so the paper's
//! Figure 6 semantics are unit-testable in isolation and reusable by the
//! fluid model.

use netsim::units::{Duration, Time};

/// Per-flow NP state.
#[derive(Debug, Clone, Copy)]
pub struct NpState {
    interval: Duration,
    last_cnp: Option<Time>,
}

impl NpState {
    /// NP for one flow with CNP pacing interval `N`.
    pub fn new(interval: Duration) -> NpState {
        NpState {
            interval,
            last_cnp: None,
        }
    }

    /// The paper's deployed N = 50 µs.
    pub fn paper() -> NpState {
        NpState::new(Duration::from_micros(50))
    }

    /// A packet for the flow arrived; `marked` is its CE bit. Returns true
    /// when a CNP must be sent now.
    pub fn on_packet(&mut self, now: Time, marked: bool) -> bool {
        if !marked {
            return false;
        }
        let due = match self.last_cnp {
            None => true,
            Some(last) => now - last >= self.interval,
        };
        if due {
            self.last_cnp = Some(now);
        }
        due
    }

    /// When the last CNP was generated.
    pub fn last_cnp(&self) -> Option<Time> {
        self.last_cnp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(u: u64) -> Time {
        Time::from_micros(u)
    }

    #[test]
    fn first_marked_packet_fires_immediately() {
        let mut np = NpState::paper();
        assert!(np.on_packet(us(1), true));
        assert_eq!(np.last_cnp(), Some(us(1)));
    }

    #[test]
    fn unmarked_packets_never_fire() {
        let mut np = NpState::paper();
        for t in 0..1000 {
            assert!(!np.on_packet(us(t), false));
        }
        assert_eq!(np.last_cnp(), None);
    }

    #[test]
    fn at_most_one_cnp_per_interval() {
        let mut np = NpState::paper();
        assert!(np.on_packet(us(0), true));
        // A burst of marked packets within the window: suppressed.
        for t in 1..50 {
            assert!(!np.on_packet(us(t), true));
        }
        // Window elapsed: next marked packet fires.
        assert!(np.on_packet(us(50), true));
    }

    #[test]
    fn quiet_period_does_not_accumulate_credit() {
        let mut np = NpState::paper();
        assert!(np.on_packet(us(0), true));
        // Long silence, then two marked packets back to back: only one CNP.
        assert!(np.on_packet(us(500), true));
        assert!(!np.on_packet(us(501), true));
    }

    #[test]
    fn rate_is_bounded_by_interval() {
        let mut np = NpState::paper();
        let mut cnps = 0;
        // 1 ms of continuously marked packets every microsecond.
        for t in 0..1000 {
            if np.on_packet(us(t), true) {
                cnps += 1;
            }
        }
        assert_eq!(cnps, 20, "1000 µs / 50 µs per CNP");
    }

    #[test]
    fn custom_interval() {
        let mut np = NpState::new(Duration::from_micros(10));
        assert!(np.on_packet(us(0), true));
        assert!(!np.on_packet(us(9), true));
        assert!(np.on_packet(us(10), true));
    }
}
