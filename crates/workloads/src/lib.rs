#![warn(missing_docs)]

//! # workloads — synthetic traffic for the evaluation (§6.2)
//!
//! The paper drives its benchmark from a proprietary cloud-storage trace
//! by extracting "salient characteristics ... such as flow size
//! distribution" and generating synthetic traffic to match. This crate
//! does the same with a documented synthetic distribution:
//!
//! * [`dist`] — heavy-tailed cloud-storage flow sizes (log-normal body,
//!   bounded-Pareto tail), exponential/Poisson helpers,
//! * [`traffic`] — communicating user pairs with Poisson transfer
//!   arrivals, and the incast (disk-rebuild) event generator.
//!
//! All generation is deterministic under a seed.

pub mod dist;
pub mod traffic;

/// Common imports.
pub mod prelude {
    pub use crate::dist::{CloudStorageDist, EmpiricalDist, SizeDist};
    pub use crate::traffic::{
        flow_goodputs, poisson_arrivals, setup_incast, setup_user_traffic, transfer_goodputs,
        UserPair, UserTrafficConfig,
    };
}
