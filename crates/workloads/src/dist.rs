//! Flow-size and inter-arrival distributions.
//!
//! The paper replays "salient characteristics" (flow-size distribution) of
//! a one-day trace from a 480-machine cloud-storage cluster. The trace is
//! proprietary, so [`CloudStorageDist`] is a documented synthetic stand-in
//! with the same qualitative shape the paper describes for such traffic:
//! a large count of small control/metadata transfers, a body of medium
//! reads/writes, and a heavy tail of multi-megabyte storage transfers that
//! carries most of the bytes.
//!
//! All sampling runs on `netsim::rng::SplitMix64`, the simulator's own
//! deterministic generator, so workload draws are a pure function of the
//! seed with no external-crate randomness.

use netsim::rng::SplitMix64;

/// Samples an exponential with the given mean via inverse transform.
pub fn exponential(rng: &mut SplitMix64, mean: f64) -> f64 {
    let u: f64 = rng.next_f64();
    -(1.0 - u).ln() * mean
}

/// Samples a log-normal via Box–Muller.
pub fn log_normal(rng: &mut SplitMix64, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.next_f64().max(1e-12);
    let u2: f64 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// Samples a bounded Pareto on `[xm, cap]` with shape `alpha`.
pub fn bounded_pareto(rng: &mut SplitMix64, xm: f64, alpha: f64, cap: f64) -> f64 {
    let u: f64 = rng.next_f64().min(1.0 - 1e-12);
    (xm / (1.0 - u).powf(1.0 / alpha)).min(cap)
}

/// The synthetic cloud-storage flow-size mix.
#[derive(Debug, Clone, Copy)]
pub struct CloudStorageDist {
    /// Probability of a small control/metadata transfer.
    pub p_small: f64,
    /// Probability of a medium read/write.
    pub p_medium: f64,
    // Large storage transfers take the rest.
}

impl Default for CloudStorageDist {
    fn default() -> CloudStorageDist {
        CloudStorageDist {
            p_small: 0.5,
            p_medium: 0.3,
        }
    }
}

impl CloudStorageDist {
    /// Samples one flow size in bytes.
    ///
    /// * small: log-normal centred ~4 KB (control RPCs),
    /// * medium: log-normal centred ~128 KB (metadata, small objects),
    /// * large: bounded Pareto 1 MB–64 MB, α = 1.2 (storage transfers —
    ///   the paper's user transfers, cf. the 4 MB transfers of §2.2).
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u: f64 = rng.next_f64();
        let bytes = if u < self.p_small {
            log_normal(rng, (4096.0f64).ln(), 0.7)
        } else if u < self.p_small + self.p_medium {
            log_normal(rng, (131_072.0f64).ln(), 0.8)
        } else {
            bounded_pareto(rng, 1_048_576.0, 1.2, 67_108_864.0)
        };
        (bytes.max(64.0)) as u64
    }

    /// Empirical mean of the distribution (bytes), estimated with `n`
    /// samples — used to convert a target load into an arrival rate.
    pub fn mean_bytes(&self, rng: &mut SplitMix64, n: usize) -> f64 {
        (0..n).map(|_| self.sample(rng) as f64).sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng() -> SplitMix64 {
        SplitMix64::new(1234)
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut r = rng();
        assert!((0..10_000).all(|_| exponential(&mut r, 1.0) >= 0.0));
    }

    #[test]
    fn log_normal_median() {
        let mut r = rng();
        let mut v: Vec<f64> = (0..100_001)
            .map(|_| log_normal(&mut r, (1000.0f64).ln(), 0.5))
            .collect();
        v.sort_by(|a, b| a.total_cmp(b));
        let median = v[v.len() / 2];
        assert!((median / 1000.0 - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = bounded_pareto(&mut r, 1e6, 1.2, 64e6);
            assert!((1e6..=64e6).contains(&x));
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| bounded_pareto(&mut r, 1e6, 1.2, 64e6))
            .collect();
        let above_10m = samples.iter().filter(|&&x| x > 10e6).count() as f64 / n as f64;
        // α = 1.2 ⇒ P(X > 10·xm) ≈ 10^−1.2 ≈ 6.3%.
        assert!((above_10m - 0.063).abs() < 0.01, "tail mass {above_10m}");
    }

    #[test]
    fn mix_fractions() {
        let d = CloudStorageDist::default();
        let mut r = rng();
        let n = 100_000;
        let sizes: Vec<u64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let small = sizes.iter().filter(|&&s| s < 64_000).count() as f64 / n as f64;
        let large = sizes.iter().filter(|&&s| s >= 1_000_000).count() as f64 / n as f64;
        assert!(small > 0.4, "small fraction {small}");
        assert!((0.1..0.35).contains(&large), "large fraction {large}");
    }

    #[test]
    fn bytes_dominated_by_heavy_tail() {
        let d = CloudStorageDist::default();
        let mut r = rng();
        let sizes: Vec<u64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        let total: u64 = sizes.iter().sum();
        let from_large: u64 = sizes.iter().filter(|&&s| s >= 1_000_000).sum();
        assert!(
            from_large as f64 / total as f64 > 0.8,
            "storage transfers carry most bytes"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let d = CloudStorageDist::default();
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mean_estimate_is_finite_and_positive() {
        let d = CloudStorageDist::default();
        let mut r = rng();
        let m = d.mean_bytes(&mut r, 10_000);
        assert!(m > 100_000.0 && m.is_finite(), "mean {m}");
    }
}

/// An empirical flow-size distribution loaded from a trace summary:
/// `bytes,weight` CSV lines (weights need not be normalized). This is the
/// interface for replaying *your own* trace's "salient characteristics"
/// the way the paper replays its cluster trace.
#[derive(Debug, Clone)]
pub struct EmpiricalDist {
    sizes: Vec<u64>,
    cumulative: Vec<f64>,
}

impl EmpiricalDist {
    /// Parses `bytes,weight` lines. Blank lines and `#` comments are
    /// skipped. Errors on malformed rows or an empty table.
    pub fn from_csv_str(csv: &str) -> Result<EmpiricalDist, String> {
        let mut rows: Vec<(u64, f64)> = Vec::new();
        for (ln, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',');
            let bytes: u64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing bytes", ln + 1))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad bytes: {e}", ln + 1))?;
            let weight: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing weight", ln + 1))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad weight: {e}", ln + 1))?;
            if weight < 0.0 || !weight.is_finite() {
                return Err(format!("line {}: weight must be finite and >= 0", ln + 1));
            }
            if bytes == 0 {
                return Err(format!("line {}: zero-byte flows are not allowed", ln + 1));
            }
            if weight > 0.0 {
                rows.push((bytes, weight));
            }
        }
        if rows.is_empty() {
            return Err("empty distribution".to_string());
        }
        let mut sizes = Vec::with_capacity(rows.len());
        let mut cumulative = Vec::with_capacity(rows.len());
        let mut acc = 0.0;
        for (b, w) in rows {
            acc += w;
            sizes.push(b);
            cumulative.push(acc);
        }
        Ok(EmpiricalDist { sizes, cumulative })
    }

    /// Loads from a file (same format).
    pub fn from_file(path: &std::path::Path) -> Result<EmpiricalDist, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        EmpiricalDist::from_csv_str(&text)
    }

    /// Samples one flow size.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let total = *self.cumulative.last().expect("nonempty");
        let u: f64 = rng.next_f64() * total;
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.sizes.len() - 1);
        self.sizes[idx]
    }

    /// Weighted mean flow size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        let total = *self.cumulative.last().expect("nonempty");
        let mut prev = 0.0;
        let mut acc = 0.0;
        for (b, c) in self.sizes.iter().zip(&self.cumulative) {
            acc += *b as f64 * (c - prev);
            prev = *c;
        }
        acc / total
    }
}

/// Any flow-size distribution usable by the traffic generators.
#[derive(Debug, Clone)]
pub enum SizeDist {
    /// The built-in synthetic cloud-storage mix.
    Cloud(CloudStorageDist),
    /// An empirical (trace-derived) table.
    Empirical(EmpiricalDist),
}

impl SizeDist {
    /// Samples one flow size.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match self {
            SizeDist::Cloud(c) => c.sample(rng),
            SizeDist::Empirical(e) => e.sample(rng),
        }
    }
}

impl Default for SizeDist {
    fn default() -> SizeDist {
        SizeDist::Cloud(CloudStorageDist::default())
    }
}

#[cfg(test)]
mod empirical_tests {
    use super::*;

    const SAMPLE: &str = "\
# bytes,weight — a toy storage trace summary
4096,50
131072,30
4194304,20
";

    #[test]
    fn parses_and_samples_in_proportion() {
        let d = EmpiricalDist::from_csv_str(SAMPLE).unwrap();
        let mut rng = SplitMix64::new(1);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            match d.sample(&mut rng) {
                4096 => counts[0] += 1,
                131072 => counts[1] += 1,
                4194304 => counts[2] += 1,
                other => panic!("unexpected size {other}"),
            }
        }
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.2).abs() < 0.01);
    }

    #[test]
    fn mean_matches_weights() {
        let d = EmpiricalDist::from_csv_str(SAMPLE).unwrap();
        let expect = 0.5 * 4096.0 + 0.3 * 131072.0 + 0.2 * 4194304.0;
        assert!((d.mean_bytes() - expect).abs() < 1.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(EmpiricalDist::from_csv_str("").is_err());
        assert!(EmpiricalDist::from_csv_str("abc,1").is_err());
        assert!(EmpiricalDist::from_csv_str("100,-1").is_err());
        assert!(EmpiricalDist::from_csv_str("0,1").is_err());
        assert!(EmpiricalDist::from_csv_str("100").is_err());
        assert!(EmpiricalDist::from_csv_str("# only comments\n\n").is_err());
    }

    #[test]
    fn zero_weight_rows_are_dropped() {
        let d = EmpiricalDist::from_csv_str("10,0\n20,1\n").unwrap();
        let mut rng = SplitMix64::new(2);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 20);
        }
    }

    #[test]
    fn size_dist_enum_dispatches() {
        let mut rng = SplitMix64::new(3);
        let cloud = SizeDist::default();
        assert!(cloud.sample(&mut rng) > 0);
        let emp = SizeDist::Empirical(EmpiricalDist::from_csv_str("77,1").unwrap());
        assert_eq!(emp.sample(&mut rng), 77);
    }
}
