//! Traffic assembly on top of `netsim`: communicating user pairs with
//! trace-like transfer sizes, and the incast (disk-rebuild) pattern of §6.2.

use crate::dist::{exponential, SizeDist};
use netsim::cc::CongestionControl;
use netsim::event::NodeId;
use netsim::network::Network;
use netsim::packet::{FlowId, Priority};
use netsim::rng::SplitMix64;
use netsim::units::{Bandwidth, Duration, Time};

/// A reusable congestion-control factory (one instance per flow).
pub type CcFactory<'a> = &'a dyn Fn(Bandwidth) -> Box<dyn CongestionControl>;

/// A communicating user pair and its flow.
#[derive(Debug, Clone, Copy)]
pub struct UserPair {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// The flow carrying this pair's transfers.
    pub flow: FlowId,
    /// Number of transfers scheduled.
    pub transfers: usize,
}

/// Configuration of the user-traffic generator.
#[derive(Debug, Clone)]
pub struct UserTrafficConfig {
    /// Number of communicating pairs.
    pub pairs: usize,
    /// Traffic runs from time 0 until here.
    pub duration: Duration,
    /// Mean inter-arrival of transfers within a pair (open-loop Poisson;
    /// the paper replays transfer sizes from its trace — we use Poisson
    /// arrivals with trace-like sizes).
    pub mean_interarrival: Duration,
    /// Priority class of user traffic.
    pub priority: Priority,
    /// Flow-size distribution (synthetic or trace-derived).
    pub sizes: SizeDist,
}

impl UserTrafficConfig {
    /// The §6.2 benchmark default: transfers arriving every ~2 ms per
    /// pair, cloud-storage sizes.
    pub fn benchmark(pairs: usize, duration: Duration) -> UserTrafficConfig {
        UserTrafficConfig {
            pairs,
            duration,
            mean_interarrival: Duration::from_micros(2000),
            priority: netsim::packet::DATA_PRIORITY,
            sizes: SizeDist::default(),
        }
    }
}

/// Picks `pairs` random (src, dst) pairs among `hosts` (src ≠ dst) and
/// schedules Poisson transfer arrivals on each. Returns the pairs.
pub fn setup_user_traffic(
    net: &mut Network,
    hosts: &[NodeId],
    cfg: &UserTrafficConfig,
    cc: CcFactory,
    seed: u64,
) -> Vec<UserPair> {
    assert!(hosts.len() >= 2, "need at least two hosts");
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(cfg.pairs);
    for _ in 0..cfg.pairs {
        let src = *rng.pick(hosts);
        let dst = loop {
            let d = *rng.pick(hosts);
            if d != src {
                break d;
            }
        };
        let flow = net.add_flow(src, dst, cfg.priority, |line| cc(line));
        let mut t = 0.0f64;
        let horizon = cfg.duration.as_secs_f64();
        let mean = cfg.mean_interarrival.as_secs_f64();
        let mut transfers = 0;
        loop {
            t += exponential(&mut rng, mean);
            if t >= horizon {
                break;
            }
            let bytes = cfg.sizes.sample(&mut rng);
            net.send_message(flow, bytes, Time::from_secs_f64(t));
            transfers += 1;
        }
        out.push(UserPair {
            src,
            dst,
            flow,
            transfers,
        });
    }
    out
}

/// The §6.2 incast (disk-rebuild) event: `degree` senders each stream
/// `bytes_per_sender` to `target`, starting at `start`. Senders are drawn
/// from `candidates` excluding the target. Returns the incast flows.
#[allow(clippy::too_many_arguments)]
pub fn setup_incast(
    net: &mut Network,
    candidates: &[NodeId],
    target: NodeId,
    degree: usize,
    bytes_per_sender: u64,
    start: Time,
    priority: Priority,
    cc: CcFactory,
    seed: u64,
) -> Vec<FlowId> {
    let mut rng = SplitMix64::new(seed);
    let mut pool: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&h| h != target)
        .collect();
    assert!(
        pool.len() >= degree,
        "need {degree} distinct incast senders, have {}",
        pool.len()
    );
    rng.shuffle(&mut pool);
    pool.truncate(degree);
    pool.iter()
        .map(|&src| {
            let flow = net.add_flow(src, target, priority, |line| cc(line));
            net.send_message(flow, bytes_per_sender, start);
            flow
        })
        .collect()
}

/// Per-transfer goodputs (Gbps) of a set of flows, from their completion
/// records — the §6.2 user-flow metric. Zero-duration completions carry
/// no measurable rate and are skipped so they cannot drag a mean or
/// percentile toward zero.
pub fn transfer_goodputs(net: &Network, flows: &[FlowId], min_bytes: u64) -> Vec<f64> {
    let mut out = Vec::new();
    for &f in flows {
        for c in &net.flow_stats(f).completions {
            if c.bytes >= min_bytes && c.has_duration() {
                out.push(c.goodput_gbps());
            }
        }
    }
    out
}

/// Average receiver goodput (Gbps) of each flow over `[from, to]` — the
/// §6.2 incast-flow metric (long-running flows that may not complete).
pub fn flow_goodputs(net: &Network, flows: &[FlowId], from: Time, to: Time) -> Vec<f64> {
    flows
        .iter()
        .map(|&f| net.goodput_gbps(f, from, to))
        .collect()
}

/// Draws a random element (deterministic under seed); helper for
/// experiment setup.
pub fn pick_one<T: Copy>(items: &[T], seed: u64) -> T {
    *SplitMix64::new(seed).pick(items)
}

/// Poisson arrival times helper exposed for tests and custom generators.
pub fn poisson_arrivals(seed: u64, mean: Duration, horizon: Duration) -> Vec<Time> {
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0;
    let mut out = Vec::new();
    loop {
        t += exponential(&mut rng, mean.as_secs_f64());
        if t >= horizon.as_secs_f64() {
            return out;
        }
        out.push(Time::from_secs_f64(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::host::HostConfig;
    use netsim::switch::SwitchConfig;
    use netsim::topology::{star, LinkParams};

    fn nocc() -> impl Fn(Bandwidth) -> Box<dyn CongestionControl> {
        |line: Bandwidth| Box::new(netsim::cc::NoCc::new(line)) as Box<dyn CongestionControl>
    }

    #[test]
    fn poisson_arrival_count_matches_rate() {
        let arr = poisson_arrivals(5, Duration::from_micros(100), Duration::from_millis(100));
        // Expect ~1000 arrivals.
        assert!((800..1200).contains(&arr.len()), "{} arrivals", arr.len());
        assert!(arr.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn user_traffic_creates_pairs_and_messages() {
        let mut s = star(
            6,
            LinkParams::default(),
            HostConfig::default(),
            SwitchConfig::paper_default(),
            3,
        );
        let cfg = UserTrafficConfig::benchmark(4, Duration::from_millis(10));
        let cc = nocc();
        let pairs = setup_user_traffic(&mut s.net, &s.hosts.clone(), &cfg, &cc, 77);
        assert_eq!(pairs.len(), 4);
        for p in &pairs {
            assert_ne!(p.src, p.dst);
            assert!(p.transfers > 0, "pair scheduled transfers");
        }
        // Run and confirm transfers actually complete.
        s.net.run_until(Time::from_millis(40));
        let goodputs =
            transfer_goodputs(&s.net, &pairs.iter().map(|p| p.flow).collect::<Vec<_>>(), 0);
        assert!(!goodputs.is_empty(), "some transfers completed");
        assert!(goodputs.iter().all(|&g| g > 0.0));
    }

    #[test]
    fn incast_selects_distinct_senders_excluding_target() {
        let mut s = star(
            10,
            LinkParams::default(),
            HostConfig::default(),
            SwitchConfig::paper_default(),
            3,
        );
        let hosts = s.hosts.clone();
        let target = hosts[0];
        let cc = nocc();
        let flows = setup_incast(
            &mut s.net,
            &hosts,
            target,
            8,
            1_000_000,
            Time::ZERO,
            netsim::packet::DATA_PRIORITY,
            &cc,
            11,
        );
        assert_eq!(flows.len(), 8);
        s.net.run_until(Time::from_millis(20));
        let total: u64 = flows
            .iter()
            .map(|&f| s.net.flow_stats(f).delivered_bytes)
            .sum();
        assert_eq!(total, 8_000_000, "all rebuild bytes delivered");
    }

    #[test]
    fn deterministic_pair_selection() {
        let mk = || {
            let mut s = star(
                6,
                LinkParams::default(),
                HostConfig::default(),
                SwitchConfig::paper_default(),
                3,
            );
            let cfg = UserTrafficConfig::benchmark(3, Duration::from_millis(1));
            let cc = nocc();
            setup_user_traffic(&mut s.net, &s.hosts.clone(), &cfg, &cc, 42)
                .iter()
                .map(|p| (p.src.0, p.dst.0, p.transfers))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "distinct incast senders")]
    fn incast_panics_without_enough_senders() {
        let mut s = star(
            3,
            LinkParams::default(),
            HostConfig::default(),
            SwitchConfig::paper_default(),
            3,
        );
        let hosts = s.hosts.clone();
        let cc = nocc();
        let _ = setup_incast(&mut s.net, &hosts, hosts[0], 5, 1000, Time::ZERO, 3, &cc, 1);
    }
}
