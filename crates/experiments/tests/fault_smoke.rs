//! Sanitized fault-injection smoke run: a full Clos run with a mid-run
//! link flap, bit errors, and a pause storm must finish with zero audit
//! violations — fault-induced drops are tagged, PFC pairing state is
//! reset on link transitions, and storm PAUSEs bypass the pairing audit
//! by construction.
#![cfg(feature = "sanitize")]

use experiments::common::CcChoice;
use experiments::scenarios::testbed;
use netsim::packet::{FlowId, DATA_PRIORITY};
use netsim::prelude::{FaultConfig, FaultPlan};
use netsim::switch::PfcWatchdogConfig;
use netsim::units::{Duration, Time};

/// Every fault class at once, under the auditor. The flapped link is a
/// fabric link (T1–L1) so no destination ever becomes unroutable — the
/// auditor must see tagged wire drops, not lossless-class violations.
#[test]
fn faulted_clos_run_is_clean_under_auditor() {
    assert!(netsim::audit::Auditor::enabled());
    let cc = CcChoice::dcqcn_paper();
    let mut tb = testbed(cc, true, false, 3, 42);
    for s in tb.tors.iter().chain(&tb.leaves).chain(&tb.spines) {
        tb.net.switch_mut(*s).config.watchdog = Some(PfcWatchdogConfig {
            threshold: Duration::from_micros(200),
            recovery: Duration::from_micros(800),
        });
    }
    let f = cc.factory();
    let flows: Vec<FlowId> = (0..6)
        .map(|i| {
            let fl = tb.net.add_flow(
                tb.hosts[i % 3][i / 3],
                tb.hosts[3][i % 3],
                DATA_PRIORITY,
                &f,
            );
            tb.net.send_message(fl, u64::MAX, Time::ZERO);
            fl
        })
        .collect();

    let t1_l1 = tb.net.link_between(tb.tors[0], tb.leaves[0]).unwrap();
    let l3_s1 = tb.net.link_between(tb.leaves[2], tb.spines[0]).unwrap();
    let plan = FaultPlan::new()
        .link_flap(
            t1_l1,
            Time::from_millis(2),
            Duration::from_millis(3),
            Duration::from_millis(4),
            1,
        )
        .bit_error(Time::from_millis(1), l3_s1, 0.001)
        .pause_storm(
            tb.hosts[3][0],
            DATA_PRIORITY,
            Time::from_millis(4),
            Time::from_millis(7),
            Duration::from_micros(20),
        );
    tb.net.install_faults(&plan, FaultConfig::default());
    tb.net.run_until(Time::from_millis(12));

    // The faults all actually fired…
    let fs = tb.net.fault_stats();
    assert_eq!(fs.transitions, 2, "flap went down and came back");
    assert!(fs.reroutes >= 2, "failover recomputed routes");
    assert!(fs.link_drops > 0, "the down window dropped traffic");
    assert!(fs.crc_drops > 0, "the noisy link corrupted frames");
    assert!(fs.storm_pauses > 50, "the storm kept refreshing");
    // …the fabric degraded gracefully…
    for &fl in &flows {
        assert!(tb.net.flow_stats(fl).delivered_bytes > 0);
        assert!(!tb.net.flow_stats(fl).aborted, "failover kept QPs alive");
    }
    assert!(tb.net.events_executed() > 100_000, "full-scale run");
    // …and the auditor saw tagged fault drops, zero violations.
    assert!(tb.net.audit().fault_drops() > 0);
    tb.net.audit().assert_clean();
}
