//! The `--json` report contract: a report is a pure function of the
//! experiment's config + seeds, so it must be byte-identical no matter
//! how many worker threads `REPRO_THREADS` fans the runs across — the
//! same property `tests/determinism.rs` pins for raw results, extended
//! here through the telemetry registry and the JSON renderer.

use std::sync::Mutex;

/// Serializes tests that mutate `REPRO_THREADS` / the report sink —
/// both are process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn fig3_report_is_byte_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("REPRO_THREADS", "1");
    let serial = experiments::report::capture("fig3", true).expect("fig3 is a known id");
    std::env::set_var("REPRO_THREADS", "8");
    let parallel = experiments::report::capture("fig3", true).expect("fig3 is a known id");
    assert!(
        serial == parallel,
        "fig3 report differs between REPRO_THREADS=1 and =8"
    );
    // And it is a real report, not an empty shell: stamped with its id
    // and carrying per-run telemetry from the registry.
    assert!(serial.contains("\"id\": \"fig3\""));
    assert!(serial.contains("\"per_host_goodput_gbps\""));
    assert!(serial.contains("\"queue_depth_bytes\""));
    assert!(serial.contains("\"pause_tx\""));
}

#[test]
fn json_dir_writes_one_report_per_dispatch() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("repro-json-{}", std::process::id()));
    experiments::report::set_dir(&dir).unwrap();
    assert!(experiments::report::enabled());
    // A cheap closed-form experiment still produces a stamped report.
    assert!(experiments::dispatch("fig5", true));
    let text = std::fs::read_to_string(dir.join("fig5.json")).unwrap();
    assert!(text.starts_with("{\n"), "report is a JSON object");
    assert!(text.ends_with("\n"), "report ends with a newline");
    assert!(text.contains("\"id\": \"fig5\""));
    assert!(text.contains("\"quick\": true"));
    std::fs::remove_dir_all(&dir).ok();
}
