//! The parallel harness contract (see `src/runner.rs`): fanning runs out
//! across threads must reproduce a serial run exactly — same results, in
//! input order, bit-for-bit — and repeated parallel runs must agree with
//! each other. These tests exercise the contract with a *real* simulation
//! (the Clos unfairness scenario), not a toy closure, so they also pin the
//! underlying property that a run is a pure function of config + seed.

use std::sync::Mutex;

use experiments::common::CcChoice;
use experiments::runner::{par_map, par_runs};
use experiments::scenarios::{link_flap_run, unfairness_run};
use netsim::units::{Duration, Time};

/// Serializes tests that mutate `REPRO_THREADS` — the test harness runs
/// `#[test]` functions concurrently in one process, and the environment
/// is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn set_threads(n: usize) {
    std::env::set_var("REPRO_THREADS", n.to_string());
}

/// One short-but-real run: 20 flows over the 3-tier Clos testbed.
fn run(seed: u64) -> Vec<f64> {
    unfairness_run(
        CcChoice::None,
        seed,
        Duration::from_millis(2),
        Duration::from_micros(500),
    )
}

/// Bit-exact comparison: `==` on f64 treats -0.0 == 0.0 and NaN != NaN;
/// the determinism guarantee is stronger than numeric equality.
fn assert_bits_eq(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        let ba: Vec<u64> = ra.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = rb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ba, bb, "{what}: run {i} differs");
    }
}

#[test]
fn parallel_reproduces_serial_run_for_run() {
    let _guard = ENV_LOCK.lock().unwrap();
    let seeds: Vec<u64> = vec![11, 23, 31];

    // Ground truth: a plain serial map, no harness involved.
    let serial: Vec<Vec<f64>> = seeds.iter().map(|&s| run(s)).collect();

    // The harness on one thread takes its serial fast path…
    set_threads(1);
    let harness_serial = par_runs(&seeds, run);
    assert_bits_eq(&serial, &harness_serial, "REPRO_THREADS=1 vs plain map");

    // …and on many threads (more workers than this box has cores, so the
    // scheduler genuinely interleaves) must still be bit-identical and in
    // seed order.
    set_threads(4);
    let parallel = par_runs(&seeds, run);
    assert_bits_eq(&serial, &parallel, "REPRO_THREADS=4 vs plain map");

    // Run-to-run: a second parallel pass agrees with the first.
    let again = par_runs(&seeds, run);
    assert_bits_eq(&parallel, &again, "repeated parallel runs");
}

/// A run with an active fault plan — link down, reroute, link up, plus
/// the dedicated bit-error RNG stream — is still a pure function of
/// config + seed: fanned out across threads it reproduces the serial
/// timeline bit-for-bit.
#[test]
fn faulted_runs_are_deterministic_under_parallelism() {
    let _guard = ENV_LOCK.lock().unwrap();
    let faulted = |seed: u64| -> Vec<f64> {
        let r = link_flap_run(
            CcChoice::None,
            true,
            seed,
            Time::from_millis(1),
            Time::from_millis(3),
            Duration::from_millis(5),
        );
        let mut out = r.bins;
        out.push(r.aborts as f64);
        out.push(r.reroutes as f64);
        out.push(r.link_drops as f64);
        out
    };
    let seeds: Vec<u64> = vec![7, 19];
    let serial: Vec<Vec<f64>> = seeds.iter().map(|&s| faulted(s)).collect();
    assert!(
        serial.iter().all(|r| r[r.len() - 1] > 0.0),
        "the flap really dropped packets on the wire"
    );
    set_threads(4);
    let parallel = par_runs(&seeds, faulted);
    assert_bits_eq(&serial, &parallel, "faulted REPRO_THREADS=4 vs plain map");
    let again = par_runs(&seeds, faulted);
    assert_bits_eq(&parallel, &again, "repeated faulted parallel runs");
}

#[test]
fn par_map_preserves_input_order_under_contention() {
    let _guard = ENV_LOCK.lock().unwrap();
    set_threads(8);
    // Unequal work per item so fast items finish while slow ones are still
    // running — completion order is scrambled, output order must not be.
    let items: Vec<(u64, u32)> = (0..32).map(|i| (i, (i % 7) as u32)).collect();
    let out = par_map(&items, |&(seed, extra)| {
        let mut rng = netsim::rng::SplitMix64::new(seed);
        let spins = 1_000 + extra as usize * 10_000;
        (0..spins).map(|_| rng.next_u64() & 0xF).sum::<u64>()
    });
    let serial: Vec<u64> = items
        .iter()
        .map(|&(seed, extra)| {
            let mut rng = netsim::rng::SplitMix64::new(seed);
            let spins = 1_000 + extra as usize * 10_000;
            (0..spins).map(|_| rng.next_u64() & 0xF).sum::<u64>()
        })
        .collect();
    assert_eq!(out, serial);
}
