//! The `repro compare` / `repro bench-trajectory` exit-code contract,
//! driven through the real binary: self-diff is clean (exit 0), an
//! injected counter regression fails (exit 1), tolerances forgive small
//! drift, and the bench trajectory flags >10% events/sec drops.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-compare-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, text).unwrap();
    p
}

const BASE: &str = r#"{
  "id": "fig19",
  "metrics": {
    "counters": {
      "ecn_marks": 1200,
      "pause_tx": 40
    },
    "wall_ms": 917
  },
  "quick": true
}
"#;

#[test]
fn self_diff_exits_zero() {
    let dir = tmp_dir("self");
    let a = write(&dir, "a.json", BASE);
    let status = repro().arg("compare").arg(&a).arg(&a).status().unwrap();
    assert_eq!(status.code(), Some(0), "a report always matches itself");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_counter_regression_exits_nonzero() {
    let dir = tmp_dir("regress");
    let a = write(&dir, "a.json", BASE);
    let b = write(&dir, "b.json", &BASE.replace("1200", "1400"));
    let out = repro().arg("compare").arg(&a).arg(&b).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "regression must fail the diff");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("metrics.counters.ecn_marks"),
        "diff names the regressed leaf:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wall_clock_noise_is_ignored_and_tolerances_forgive() {
    let dir = tmp_dir("tol");
    let a = write(&dir, "a.json", BASE);
    // wall_ms is in the default ignore list; pause_tx drifts by 2.5%.
    let b = write(
        &dir,
        "b.json",
        &BASE
            .replace("917", "2048")
            .replace("\"pause_tx\": 40", "\"pause_tx\": 41"),
    );
    let strict = repro().arg("compare").arg(&a).arg(&b).status().unwrap();
    assert_eq!(
        strict.code(),
        Some(1),
        "2.5% drift differs at default tolerance"
    );
    let loose = repro()
        .args(["compare"])
        .arg(&a)
        .arg(&b)
        .args(["--rel-pct", "5"])
        .status()
        .unwrap();
    assert_eq!(loose.code(), Some(0), "--rel-pct 5 forgives 2.5% drift");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_is_a_usage_error() {
    let status = repro()
        .args(["compare", "/nonexistent/a.json", "/nonexistent/b.json"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(2));
}

fn bench_snapshot(label: &str, events_per_sec: u64) -> String {
    format!(
        r#"{{
  "label": "{label}",
  "profile": "release",
  "quick": false,
  "schema": "bench-core-v1",
  "scenarios": [
    {{
      "allocations": 10,
      "checksum": 12345,
      "events_executed": 1000000,
      "events_per_sec": {events_per_sec},
      "name": "queue_churn",
      "peak_pending_events": 64,
      "sim_time_us": 1000.0,
      "wall_ms": 50.0
    }}
  ]
}}
"#
    )
}

#[test]
fn trajectory_warns_on_drop_and_strict_fails() {
    let dir = tmp_dir("traj");
    write(&dir, "BENCH_pr1.json", &bench_snapshot("pr1", 10_000_000));
    write(&dir, "BENCH_pr2.json", &bench_snapshot("pr2", 8_000_000));
    // 20% drop: plain run reports it but exits 0; --strict exits 1.
    let out = repro().arg("bench-trajectory").arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("queue_churn"),
        "warning names the scenario:\n{text}"
    );
    let strict = repro()
        .arg("bench-trajectory")
        .arg(&dir)
        .arg("--strict")
        .status()
        .unwrap();
    assert_eq!(
        strict.code(),
        Some(1),
        "--strict turns warnings into failure"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trajectory_is_quiet_when_throughput_holds() {
    let dir = tmp_dir("flat");
    write(&dir, "BENCH_pr1.json", &bench_snapshot("pr1", 10_000_000));
    write(&dir, "BENCH_pr2.json", &bench_snapshot("pr2", 9_500_000));
    // 5% is within the 10% tolerance band.
    let status = repro()
        .arg("bench-trajectory")
        .arg(&dir)
        .arg("--strict")
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}
