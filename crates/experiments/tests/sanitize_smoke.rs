//! Sanitized smoke run: the full Figure 3/8 unfairness experiment on the
//! Clos testbed with the invariant auditor active must finish clean.
#![cfg(feature = "sanitize")]

use experiments::common::CcChoice;
use experiments::scenarios::testbed;
use netsim::packet::{FlowId, DATA_PRIORITY};
use netsim::units::{Duration, Time};

/// The Figure 3 scenario (H1–H3 under T1 plus H4 under T4, all greedy to R
/// under T4) with DCQCN, run under the auditor: PFC pairing, buffer
/// conservation, PSN ordering and the DCQCN domains all hold end to end.
#[test]
fn fig3_unfairness_run_is_clean_under_auditor() {
    assert!(netsim::audit::Auditor::enabled());
    let cc = CcChoice::dcqcn_paper();
    let mut tb = testbed(cc, true, false, 5, 42);
    let senders = [
        tb.hosts[0][0],
        tb.hosts[0][1],
        tb.hosts[0][2],
        tb.hosts[3][0],
    ];
    let receiver = tb.hosts[3][1];
    let f = cc.factory();
    let flows: Vec<FlowId> = senders
        .iter()
        .map(|&h| tb.net.add_flow(h, receiver, DATA_PRIORITY, &f))
        .collect();
    for &fl in &flows {
        tb.net.send_message(fl, u64::MAX, Time::ZERO);
    }
    let end = Time::ZERO + Duration::from_millis(20);
    tb.net.run_until(end);

    // The experiment actually ran: every sender delivered traffic.
    for &fl in &flows {
        assert!(tb.net.flow_stats(fl).delivered_bytes > 0);
    }
    assert!(tb.net.events_executed() > 100_000, "full-scale run");
    tb.net.audit().assert_clean();
}
