//! The chaos campaign contract, end to end: campaign summaries are
//! byte-identical across `REPRO_THREADS` settings, a deliberately broken
//! recovery path (a wedged PFC watchdog) is caught by the convergence
//! auditor, and the shrinker reduces it to a minimal replayable case
//! file that still reproduces the failure.

use std::sync::Mutex;

use experiments::chaos::{campaign, execute, replay};
use netsim::audit::ViolationKind;
use netsim::chaos::{
    generate_case, shrink_case, CcName, ChaosCase, ChaosFlow, FaultSpec, TopoPick,
};
use netsim::packet::DATA_PRIORITY;

/// Serializes tests that mutate `REPRO_THREADS` — the test harness runs
/// `#[test]` functions concurrently in one process, and the environment
/// is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn set_threads(n: usize) {
    std::env::set_var("REPRO_THREADS", n.to_string());
}

/// A hand-built case whose only fault is the test-only watchdog wedge —
/// the "firmware bug" the generator never emits. It can never converge.
fn wedged_case() -> ChaosCase {
    ChaosCase {
        seed: 0xBAD_D06,
        topo: TopoPick::Star { hosts: 4 },
        cc: CcName::Dcqcn,
        flows: vec![
            ChaosFlow {
                src: 0,
                dst: 1,
                bytes: 256 * 1024,
                start_us: 0,
            },
            ChaosFlow {
                src: 2,
                dst: 3,
                bytes: 256 * 1024,
                start_us: 100,
            },
        ],
        faults: vec![
            FaultSpec::Flap {
                link: 2,
                at_us: 1_000,
                down_us: 400,
                times: 1,
                period_us: 1_000,
            },
            FaultSpec::Wedge {
                switch: 0,
                port: 1,
                class: DATA_PRIORITY,
                at_us: 2_000,
            },
        ],
        duration_us: 10_000,
        settle_us: 20_000,
        queue_threshold: 64 * 1024,
    }
}

#[test]
fn campaign_summary_is_byte_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join("chaos_campaign_test_threads");
    set_threads(1);
    let serial = campaign(1, 12, true, &dir);
    set_threads(4);
    let parallel = campaign(1, 12, true, &dir);
    assert_eq!(
        serial.summary, parallel.summary,
        "summary must not depend on REPRO_THREADS"
    );
    assert!(serial.summary.contains("12/12 cases converged"));
    assert!(serial.repro_files.is_empty(), "no failures, no repro files");
}

#[test]
fn wedged_watchdog_fails_convergence_and_shrinks_to_a_replayable_file() {
    let case = wedged_case();
    let report = execute(&case).expect("case is well-formed");
    assert!(!report.converged(), "a wedged watchdog can never converge");
    assert!(report
        .violations
        .iter()
        .all(|v| v.kind == ViolationKind::Convergence));
    assert!(report
        .violations
        .iter()
        .any(|v| v.context.contains("watchdog still tripped")));

    // Shrink with the real oracle: re-run each candidate and keep the
    // reduction only if it still fails to converge.
    let minimal = shrink_case(&case, &mut |c| match execute(c) {
        Ok(r) => !r.converged(),
        Err(_) => true,
    });
    assert_eq!(
        minimal.faults,
        vec![FaultSpec::Wedge {
            switch: 0,
            port: 1,
            class: DATA_PRIORITY,
            at_us: 2_000,
        }],
        "only the wedge survives shrinking"
    );
    assert_eq!(minimal.flows.len(), 1, "workload halves to one flow");
    // The acceptance bar: the minimal plan has at most two events.
    assert!(
        minimal.plan().actions().len() <= 2,
        "minimal case expands to ≤ 2 fault events"
    );

    // Round-trip through a repro file and replay: still fails, with the
    // same violation class.
    let dir = std::env::temp_dir().join("chaos_campaign_test_repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("CHAOS_REPRO_{:016x}.json", minimal.seed));
    std::fs::write(&path, minimal.to_json().render()).unwrap();
    let (replayed_case, replayed_report) = replay(&path).expect("repro file replays");
    assert_eq!(replayed_case, minimal, "the file round-trips exactly");
    assert!(!replayed_report.converged());
    assert!(replayed_report
        .violations
        .iter()
        .any(|v| v.context.contains("watchdog still tripped")));
}

#[test]
fn replay_reproduces_a_case_bit_for_bit() {
    // Executing the same generated case twice must agree on the full
    // trajectory fingerprint, which is what makes repro files useful.
    let case = generate_case(3, 1, true);
    let a = execute(&case).unwrap();
    let b = execute(&case).unwrap();
    assert_eq!(a.events, b.events);
    assert_eq!(a.describe(), b.describe());
}
