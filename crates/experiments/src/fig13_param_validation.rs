//! Figure 13: validating the fluid-model parameter choices on the packet
//! simulator (the paper's hardware microbenchmark, two flows through one
//! switch):
//!
//! * (a) strawman parameters + cut-off marking — unfair,
//! * (b) fast (55 µs) timer + cut-off marking — fair,
//! * (c) strawman timer + RED-like marking — fair on average, unstable,
//! * (d) fast timer + RED-like marking (the deployed combination) — fair
//!   and stable.

use crate::common::{banner, mean, stddev, CcChoice};
use crate::report;
use crate::runner::par_map;
use dcqcn::params::{red_cutoff_strawman, red_deployed, DcqcnParams};
use netsim::ecn::RedConfig;

use netsim::packet::{FlowId, DATA_PRIORITY};
use netsim::stats::SamplerConfig;
use netsim::topology::{star, LinkParams, Star};
use netsim::units::{Duration, Time};

struct Config {
    label: &'static str,
    params: DcqcnParams,
    red: RedConfig,
}

fn configs() -> Vec<Config> {
    vec![
        Config {
            label: "(a) strawman + cutoff",
            params: DcqcnParams::strawman(),
            red: red_cutoff_strawman(),
        },
        Config {
            label: "(b) fast timer + cutoff",
            params: DcqcnParams::strawman()
                .with_byte_counter(10_000_000)
                .with_timer(Duration::from_micros(55)),
            red: red_cutoff_strawman(),
        },
        Config {
            label: "(c) strawman + RED-ECN",
            params: DcqcnParams::strawman(),
            red: red_deployed(),
        },
        Config {
            label: "(d) fast timer + RED-ECN",
            params: DcqcnParams::paper(),
            red: red_deployed(),
        },
    ]
}

/// Builds and runs one two-flow staggered-join sim, returning the star
/// and the flows (flow 1 starts at 0, flow 2 joins at 50 ms).
fn sim_run(params: DcqcnParams, red: RedConfig, end: Duration, seed: u64) -> (Star, [FlowId; 2]) {
    let cc = CcChoice::Dcqcn(params);
    let mut sw = cc.switch_config(true, false);
    sw.red = red;
    let mut s = star(3, LinkParams::default(), cc.host_config(), sw, seed);
    let f = cc.factory();
    let f1 = s.net.add_flow(s.hosts[0], s.hosts[2], DATA_PRIORITY, &f);
    let f2 = s.net.add_flow(s.hosts[1], s.hosts[2], DATA_PRIORITY, &f);
    s.net.send_message(f1, u64::MAX, Time::ZERO);
    s.net.send_message(f2, u64::MAX, Time::from_millis(50));
    s.net.enable_sampling(
        Duration::from_millis(1),
        SamplerConfig {
            rate_flows: vec![f1, f2],
            ..SamplerConfig::default()
        },
    );
    s.net.run_until(Time::ZERO + end);
    (s, [f1, f2])
}

/// One run: returns per-flow tail-mean rate and rate stddev.
fn run_one(params: DcqcnParams, red: RedConfig, end: Duration, seed: u64) -> [(f64, f64); 2] {
    let (s, [f1, f2]) = sim_run(params, red, end, seed);
    let cutoff = end.as_secs_f64() / 2.0;
    [f1, f2].map(|fl| {
        let series = s.net.flow_rate_timeline(fl).expect("sampled").series();
        let tail: Vec<f64> = series
            .times
            .iter()
            .zip(&series.values)
            .filter(|(t, _)| t.as_secs_f64() >= cutoff)
            .map(|(_, v)| *v)
            .collect();
        (mean(&tail), stddev(&tail))
    })
}

/// Runs the experiment.
pub fn run(quick: bool) {
    banner(
        "fig13",
        "validating parameter values (2 flows, packet simulator)",
    );
    let end = Duration::from_millis(if quick { 300 } else { 600 });
    println!(
        "{:<26} | {:>8} {:>8} | {:>8} | {:>8}",
        "configuration", "f1 Gbps", "f2 Gbps", "|diff|", "f1 sd"
    );
    let configs = configs();
    let results = par_map(&configs, |c| run_one(c.params, c.red, end, 31));
    for (c, &[(m1, s1), (m2, _)]) in configs.iter().zip(&results) {
        println!(
            "{:<26} | {:>8.2} {:>8.2} | {:>8.2} | {:>8.2}",
            c.label,
            m1,
            m2,
            (m1 - m2).abs(),
            s1
        );
    }
    println!("paper: (a) unfair; (b) fair; (c) fair but unstable (randomness of");
    println!("marking); (d) deployed combination — fair and stable.");
    if report::dash_enabled() {
        // Serial representative rerun of the deployed configuration (d),
        // on the dispatch thread, so the dashboard bytes cannot depend on
        // REPRO_THREADS.
        let d = &configs[3];
        let (s, _) = sim_run(d.params, d.red, end, 31);
        report::put_dash(&s.net.dashboard("fig13 (d): fast timer + RED-ECN"));
    }
}
