//! `repro` — regenerate every table and figure of the DCQCN paper.
//!
//! ```text
//! repro all [--quick]     run every experiment
//! repro fig16 [--quick]   run one experiment
//! repro list              list experiment ids
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();

    match ids.first().copied() {
        None | Some("help") => {
            eprintln!("usage: repro <id>|all|list [--quick]");
            eprintln!("ids: {}", experiments::ALL.join(" "));
        }
        Some("list") => {
            for id in experiments::ALL {
                println!("{id}");
            }
        }
        Some("all") => {
            let t0 = Instant::now();
            for id in experiments::ALL {
                let t = Instant::now();
                experiments::dispatch(id, quick);
                eprintln!("[{id} took {:.1}s]", t.elapsed().as_secs_f64());
            }
            eprintln!("[total {:.1}s]", t0.elapsed().as_secs_f64());
        }
        Some(id) => {
            if !experiments::dispatch(id, quick) {
                eprintln!(
                    "unknown experiment '{id}'; try: {}",
                    experiments::ALL.join(" ")
                );
                std::process::exit(1);
            }
        }
    }
}
