//! `repro` — regenerate every table and figure of the DCQCN paper.
//!
//! ```text
//! repro <id>... [--quick] [--json <dir>] [--trace <dir>] [--dash <dir>]
//! repro all [--quick]                    run every experiment
//! repro list                             list experiment ids
//! repro bench-core [--quick] [--label <name>]   event-core speed snapshot
//! repro compare <a.json> <b.json> [..]   diff two telemetry reports
//! repro bench-trajectory <dir>           check BENCH_*.json for slowdowns
//! ```
//!
//! Several positional ids run in order: `repro fig3 fig4 fig9`. Unknown
//! ids and unknown `--flags` are rejected up front with exit status 2 —
//! nothing runs.
//!
//! `--json <dir>` additionally writes one machine-readable report per
//! experiment to `<dir>/<id>.json`; `--trace <dir>` writes a Chrome
//! trace-event file (`<dir>/<id>.trace.json`, loadable in Perfetto or
//! `about://tracing`) for the experiments that export a causal trace;
//! `--dash <dir>` writes a dependency-free single-file HTML dashboard
//! (`<dir>/<id>.html`) for the experiments that render one. All three
//! are deterministic byte-for-byte across `REPRO_THREADS` settings
//! (see DESIGN.md, "Telemetry" and "Causal tracing").

use std::path::Path;
use std::time::Instant;

fn usage() {
    eprintln!(
        "usage: repro <id>...|all|list [--quick] [--json <dir>] [--trace <dir>] [--dash <dir>]"
    );
    eprintln!("       repro bench-core [--quick] [--label <name>]");
    eprintln!(
        "       repro compare <a.json> <b.json> [--rel-pct <p>] [--abs <v>] [--ignore <key>]"
    );
    eprintln!("       repro bench-trajectory <dir> [--strict]");
    eprintln!("       repro chaos [--seed <n>] [--cases <n>] [--quick] [--out <dir>]");
    eprintln!("       repro chaos --replay <file>");
    eprintln!("ids: {}", experiments::ALL.join(" "));
    eprintln!("ext: ext {}", experiments::EXT.join(" "));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `chaos` owns its flag vocabulary (--seed, --cases, --replay, …),
    // so it parses its own arguments instead of the shared loop below.
    if args.first().map(String::as_str) == Some("chaos") {
        std::process::exit(experiments::chaos::cli(&args[1..]));
    }
    // `compare` and `bench-trajectory` likewise own their flags.
    if args.first().map(String::as_str) == Some("compare") {
        std::process::exit(experiments::compare::cli(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("bench-trajectory") {
        std::process::exit(experiments::compare::trajectory_cli(&args[1..]));
    }
    let mut quick = false;
    let mut ids: Vec<&str> = Vec::new();
    let mut json_dir: Option<&str> = None;
    let mut trace_dir: Option<&str> = None;
    let mut dash_dir: Option<&str> = None;
    let mut label: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--label" => match it.next() {
                Some(l) if experiments::bench_core::label_ok(l) => label = Some(l.as_str()),
                Some(l) => {
                    eprintln!("--label '{l}' must be [A-Za-z0-9._-]+ (it names a file)");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--label requires a name");
                    std::process::exit(2);
                }
            },
            "--json" => match it.next() {
                Some(d) => json_dir = Some(d.as_str()),
                None => {
                    eprintln!("--json requires an output directory");
                    std::process::exit(2);
                }
            },
            "--trace" => match it.next() {
                Some(d) => trace_dir = Some(d.as_str()),
                None => {
                    eprintln!("--trace requires an output directory");
                    std::process::exit(2);
                }
            },
            "--dash" => match it.next() {
                Some(d) => dash_dir = Some(d.as_str()),
                None => {
                    eprintln!("--dash requires an output directory");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                usage();
                std::process::exit(2);
            }
            id => ids.push(id),
        }
    }

    if ids.is_empty() || ids.contains(&"help") {
        usage();
        return;
    }
    if ids.contains(&"list") {
        for id in experiments::ALL.iter().chain(experiments::EXT) {
            println!("{id}");
        }
        return;
    }
    // Validate every id up front so a typo late in the list cannot waste
    // the runs before it.
    for id in &ids {
        let known = *id == "all"
            || *id == "ext"
            || *id == "bench-core"
            || experiments::ALL.contains(id)
            || experiments::EXT.contains(id);
        if !known {
            eprintln!("unknown experiment '{id}'");
            usage();
            std::process::exit(2);
        }
    }

    if let Some(dir) = json_dir {
        if let Err(e) = experiments::report::set_dir(Path::new(dir)) {
            eprintln!("cannot create report directory {dir}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(dir) = trace_dir {
        if let Err(e) = experiments::report::set_trace_dir(Path::new(dir)) {
            eprintln!("cannot create trace directory {dir}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(dir) = dash_dir {
        if let Err(e) = experiments::report::set_dash_dir(Path::new(dir)) {
            eprintln!("cannot create dashboard directory {dir}: {e}");
            std::process::exit(1);
        }
    }

    let t0 = Instant::now();
    let many = ids.len() > 1 || ids.contains(&"all") || ids.contains(&"ext");
    for id in &ids {
        match *id {
            "all" => {
                for id in experiments::ALL {
                    let t = Instant::now();
                    experiments::dispatch(id, quick);
                    eprintln!("[{id} took {:.1}s]", t.elapsed().as_secs_f64());
                }
            }
            "bench-core" => {
                let t = Instant::now();
                experiments::bench_core::run(quick, label.unwrap_or("local"));
                if many {
                    eprintln!("[bench-core took {:.1}s]", t.elapsed().as_secs_f64());
                }
            }
            id => {
                let t = Instant::now();
                experiments::dispatch(id, quick);
                if many {
                    eprintln!("[{id} took {:.1}s]", t.elapsed().as_secs_f64());
                }
            }
        }
    }
    if many {
        eprintln!("[total {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
