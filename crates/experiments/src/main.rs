//! `repro` — regenerate every table and figure of the DCQCN paper.
//!
//! ```text
//! repro all [--quick] [--json <dir>]     run every experiment
//! repro fig16 [--quick] [--json <dir>]   run one experiment
//! repro list                             list experiment ids
//! ```
//!
//! `--json <dir>` additionally writes one machine-readable report per
//! experiment to `<dir>/<id>.json` — deterministic byte-for-byte across
//! `REPRO_THREADS` settings (see DESIGN.md, "Telemetry").

use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut ids: Vec<&str> = Vec::new();
    let mut json_dir: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(d) => json_dir = Some(d.as_str()),
                None => {
                    eprintln!("--json requires an output directory");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {} // e.g. --quick, handled above
            id => ids.push(id),
        }
    }
    if let Some(dir) = json_dir {
        if let Err(e) = experiments::report::set_dir(Path::new(dir)) {
            eprintln!("cannot create report directory {dir}: {e}");
            std::process::exit(1);
        }
    }

    match ids.first().copied() {
        None | Some("help") => {
            eprintln!("usage: repro <id>|all|list [--quick] [--json <dir>]");
            eprintln!("ids: {}", experiments::ALL.join(" "));
        }
        Some("list") => {
            for id in experiments::ALL {
                println!("{id}");
            }
        }
        Some("all") => {
            let t0 = Instant::now();
            for id in experiments::ALL {
                let t = Instant::now();
                experiments::dispatch(id, quick);
                eprintln!("[{id} took {:.1}s]", t.elapsed().as_secs_f64());
            }
            eprintln!("[total {:.1}s]", t0.elapsed().as_secs_f64());
        }
        Some(id) => {
            if !experiments::dispatch(id, quick) {
                eprintln!(
                    "unknown experiment '{id}'; try: {}",
                    experiments::ALL.join(" ")
                );
                std::process::exit(1);
            }
        }
    }
}
