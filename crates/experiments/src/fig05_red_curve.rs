//! Figure 5: the switch packet-marking (RED) probability curve.

use crate::common::banner;
use dcqcn::params::{red_cutoff_strawman, red_deployed};

/// Runs the experiment.
pub fn run(_quick: bool) {
    banner("fig5", "switch marking probability vs egress queue");
    let dep = red_deployed();
    let cut = red_cutoff_strawman();
    println!(
        "{:>9} | {:>16} | {:>16}",
        "queue KB", "deployed RED", "DCTCP-like cutoff"
    );
    for q_kb in [0u64, 5, 10, 25, 50, 100, 150, 200, 201, 250] {
        let q = q_kb * 1000;
        println!(
            "{:>9} | {:>15.3}% | {:>15.1}%",
            q_kb,
            dep.mark_probability(q) * 100.0,
            cut.mark_probability(q) * 100.0
        );
    }
    println!("deployed: K_min=5KB K_max=200KB P_max=1% — linear ramp (Equation 5)");
}
